"""The raw-capture mitigation (§9.2): shoot DNG, convert consistently.

Compares two deployment strategies on the raw-capable phones:

* each phone's normal pipeline (vendor ISP + JPEG), vs.
* raw DNG capture converted off-device by ONE software ISP.

The consistent conversion removes the per-vendor ISP and codec from the
loop; the residual instability is sensor-level — which is why raw helps
but does not eliminate the problem.

Run:  python examples/raw_pipeline.py
"""

from repro.core import format_percent
from repro.lab import RawVsJpegExperiment
from repro.mitigation import ConsistentRawConverter
from repro.nn import load_pretrained


def main() -> None:
    model = load_pretrained()
    print("Running the raw-vs-JPEG experiment on the Galaxy S10 + iPhone XR...")
    out = RawVsJpegExperiment(model=model, seed=0).run(
        per_class=10, angles=(-15.0, 0.0, 15.0)
    )

    print(f"\nJPEG-pipeline instability: {format_percent(out.instability_jpeg())}")
    print(f"raw + consistent ISP:      {format_percent(out.instability_raw())}")
    print(f"relative improvement:      {format_percent(out.relative_improvement())}")

    print("\nper class (jpeg / raw):")
    for cls, (jpeg, raw) in out.per_class().items():
        print(f"  {cls}: {format_percent(jpeg)} / {format_percent(raw)}")

    print("\naccuracy per phone per path (raw should not cost accuracy):")
    for key, acc in out.accuracy_table().items():
        print(f"  {key}: {format_percent(acc)}")

    # The deployable artifact: one converter object for the whole fleet.
    converter = ConsistentRawConverter(isp="imagemagick")
    print(
        f"\ndeployment: route every phone's DNG through "
        f"{converter.pipeline.name!r} ({' -> '.join(converter.pipeline.stage_names())})"
    )


if __name__ == "__main__":
    main()
