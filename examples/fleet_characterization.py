"""Characterize a phone fleet: the paper's §4 study in miniature.

Runs the end-to-end experiment (every scene, every angle, every phone),
then prints the analyses behind Figure 3 and Figure 4: accuracy per
phone, instability overall / per class / per angle / within-phone, and
the confidence structure of stable vs. unstable images.

Run:  python examples/fleet_characterization.py [per_class]
"""

import sys

from repro.core import (
    confidence_analysis,
    format_percent,
    instability,
    per_angle_instability,
    per_class_instability,
    per_environment_accuracy,
    within_environment_instability,
)
from repro.lab import EndToEndExperiment
from repro.nn import load_pretrained


def main(per_class: int = 6) -> None:
    print(f"Running the end-to-end experiment (per_class={per_class})...")
    model = load_pretrained(verbose=True)
    result = EndToEndExperiment(model=model, seed=0).run(per_class=per_class)
    print(f"collected {len(result)} prediction records\n")

    print("accuracy by phone (paper Fig. 3a — flat, so accuracy hides the problem):")
    for phone, acc in per_environment_accuracy(result).items():
        print(f"  {phone}: {format_percent(acc)}")

    print(f"\ncross-phone instability (paper Fig. 3b): {format_percent(instability(result))}")
    print("by class:")
    for cls, inst in per_class_instability(result).items():
        print(f"  {cls}: {format_percent(inst)}")

    print("\nby angle (paper Fig. 3c):")
    for angle, inst in per_angle_instability(result).items():
        print(f"  {angle:+.0f} deg: {format_percent(inst)}")

    print("\nwithin-phone instability (paper Fig. 3d — lower than cross-phone):")
    for phone, inst in within_environment_instability(result).items():
        print(f"  {phone}: {format_percent(inst)}")

    print("\nconfidence by stability group (paper Fig. 4):")
    for group, (mean, std) in confidence_analysis(result).summary().items():
        print(f"  {group}: {mean:.3f} +/- {std:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
