"""Quickstart: photograph one object on two phones and compare predictions.

Demonstrates the library's core loop in ~30 lines:

1. build a scene (a synthetic "water bottle" staged for the rig),
2. display it on the simulated monitor,
3. photograph it with two different phone models,
4. run the shared classifier on both photos,
5. see whether the prediction survived the device change.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.codecs import decode_any
from repro.devices import DeviceRuntime, Phone, capture_fleet
from repro.nn import load_pretrained
from repro.scenes import Screen, sample_object, sample_scene
from repro.scenes.objects import ALL_CLASSES


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A scene: one sampled water-bottle instance, staged.
    spec = sample_object("water_bottle", object_id=0, rng=rng)
    scene = sample_scene(spec, rng)

    # 2. The monitor emits the radiance the cameras see.
    radiance = Screen(seed=0).display(scene.render(96, 96))

    # 3. Photograph it on a Galaxy S10 and an iPhone XR.
    fleet = {p.name: Phone(p) for p in capture_fleet()}
    runtime = DeviceRuntime(load_pretrained())

    print(f"true class: {spec.class_name}\n")
    predictions = {}
    for name in ("samsung_galaxy_s10", "iphone_xr"):
        phone = fleet[name]
        file_bytes = phone.photograph(radiance, rng)
        photo = decode_any(file_bytes)  # 4. decode + classify
        pred = runtime.predict_one(photo)
        predictions[name] = pred
        print(
            f"{name}: predicted {ALL_CLASSES[pred.top1]!r} "
            f"(confidence {pred.confidence:.2f}, file {len(file_bytes)} bytes)"
        )

    # 5. Did the prediction survive the device change?
    labels = {p.top1 for p in predictions.values()}
    if len(labels) == 1:
        print("\nStable: both phones agree.")
    else:
        print("\nUnstable: the same model flipped its answer across phones —")
        print("this is exactly what the paper's instability metric counts.")


if __name__ == "__main__":
    main()
