"""Stability training: tame cross-device instability by fine-tuning (§9.1).

Builds the Samsung/iPhone fine-tuning corpus, measures the base model's
cross-device instability, then fine-tunes three ways and compares:

* plain fine-tuning (the paper's "no noise" baseline),
* stability training with simulated distortion noise (no extra data),
* stability training with real paired photos (two-image scheme).

Run:  python examples/stability_training.py
"""

from repro.core import accuracy, format_percent, instability
from repro.mitigation import (
    DistortionNoise,
    NoNoise,
    StabilityTrainConfig,
    StabilityTrainer,
    TwoImageNoise,
    build_stability_corpus,
    evaluate_cross_device_instability,
)
from repro.nn import load_pretrained


def main() -> None:
    print("Capturing the fine-tuning corpus (Samsung primary, iPhone paired)...")
    corpus = build_stability_corpus(per_class=12, train_fraction=0.5, seed=0)
    print(
        f"train pairs: {len(corpus.y_train)}, held-out eval pairs: {len(corpus.y_test)}\n"
    )

    base = load_pretrained()
    base_result = evaluate_cross_device_instability(base, corpus)
    print(
        f"base model: instability {format_percent(instability(base_result))}, "
        f"accuracy {format_percent(accuracy(base_result))}\n"
    )

    schemes = [
        ("plain fine-tune (no noise)", NoNoise(), 0.0, "kl"),
        ("stability + distortion noise", DistortionNoise(), 1.0, "kl"),
        ("stability + paired iPhone photos", TwoImageNoise(corpus.x_train_secondary), 1.0, "embedding"),
    ]
    for name, noise, alpha, loss in schemes:
        model = base.copy()
        trainer = StabilityTrainer(
            model,
            noise,
            StabilityTrainConfig(alpha=alpha, stability_loss=loss, epochs=6, seed=0),
        )
        history = trainer.fit(corpus.x_train_primary, corpus.y_train)
        result = evaluate_cross_device_instability(model, corpus)
        print(
            f"{name}:\n"
            f"  final loss {history[-1]['total']:.3f} "
            f"(classification {history[-1]['l0']:.3f}, stability {history[-1]['ls']:.3f})\n"
            f"  instability {format_percent(instability(result))}, "
            f"accuracy {format_percent(accuracy(result))}"
        )


if __name__ == "__main__":
    main()
