"""Audit OS image decoders across a device farm (§7).

Pushes one fixed set of image files to the five Firebase-fleet phones,
hashes each device's decoded pixel buffers, and groups devices by hash —
the paper's diagnostic that traced its residual 0.64% instability to two
OS JPEG-decoder builds, and its remedy (PNG decodes identically
everywhere).

Run:  python examples/os_decoder_audit.py
"""

from repro.core import format_percent
from repro.lab import FirebaseTestLab
from repro.nn import load_pretrained


def main() -> None:
    lab = FirebaseTestLab(model=load_pretrained(), seed=0)

    for fmt in ("jpeg", "png"):
        out = lab.run(num_photos=100, image_format=fmt)
        print(f"--- format: {fmt} ---")
        print(f"instability across SoCs: {format_percent(out.instability())}")
        groups = out.hash_groups()
        print(f"decode-hash camps: {len(groups)}")
        for name, devices in groups.items():
            print(f"  {name}: {', '.join(devices)}")
        print()

    print(
        "Takeaway (paper §7): the processors and OS schedulers are not the\n"
        "problem — the OS's JPEG decoder build is, and it disappears with\n"
        "a deterministic format like PNG."
    )


if __name__ == "__main__":
    main()
