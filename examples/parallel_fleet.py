"""Scaling the fleet: parallel capture workers plus a persistent cache.

The §4 end-to-end study photographs every displayed image on every phone
at every angle — work that is embarrassingly parallel and, across
re-runs with the same seed, completely redundant. This example runs the
same experiment three ways and shows that the *numbers never change*:

1. serial (the baseline every other example uses),
2. fanned across 4 worker processes,
3. again with a warm on-disk cache (captures replayed, not recomputed).

Determinism is the point: each (phone, image, repeat) work unit derives
its RNG from its own identity, so worker count, scheduling order, and
cache hits cannot change a single output bit.

Run:  python examples/parallel_fleet.py
"""

import time

from repro.core import instability, per_environment_accuracy
from repro.lab import EndToEndExperiment
from repro.nn.model import micro_mobilenet
from repro.runner import CaptureCache


def run(label, **kwargs):
    start = time.perf_counter()
    result = EndToEndExperiment(
        model=micro_mobilenet(num_classes=8, seed=1),
        angles=(0.0, 15.0),
        seed=0,
        **kwargs,
    ).run(per_class=2)
    elapsed = time.perf_counter() - start
    print(f"{label:28s} {elapsed:6.2f}s  instability={instability(result):.4f}")
    return result


def main() -> None:
    print("same experiment, three execution strategies:\n")
    serial = run("serial")

    cache = CaptureCache(".cache/fleet-example")
    parallel = run("4 workers, cold cache", workers=4, cache=cache)
    warm = run("4 workers, warm cache", workers=4, cache=cache)

    assert serial.records == parallel.records == warm.records
    print(
        f"\nall three runs produced bit-identical records "
        f"({len(serial)} predictions)."
    )
    print(
        f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
        f"{cache.stats.stores} stores"
    )
    print("\naccuracy by phone (identical in every mode):")
    for phone, acc in per_environment_accuracy(serial).items():
        print(f"  {phone}: {acc:.3f}")


if __name__ == "__main__":
    main()
