"""repro.serve — streaming capture-ingestion service.

The long-running counterpart of the one-shot experiment runner: a
bounded-queue asyncio service that admits capture requests, coalesces
them into batches over the existing :class:`~repro.runner.executor`
fan-out, answers each with a prediction plus a pixel digest, and streams
windowed instability metrics through :mod:`repro.obs`. See ``SERVING.md``
for the operations runbook and :mod:`repro.serve.service` for the
stage-by-stage design.

Determinism contract: responses are a pure function of request
coordinates — a drained service run is bit-identical to
:meth:`IngestService.serial_reference` on the same request set.
"""

from .protocol import (
    CLIENT_OPS,
    SERVER_OPS,
    ProtocolError,
    capture_message,
    decode_message,
    encode_message,
    result_message,
)
from .server import ServeServer
from .service import (
    STATUSES,
    CaptureRequest,
    CaptureResponse,
    IngestService,
    ServeConfig,
    latency_summary,
    shard_of_key,
)

__all__ = [
    "CLIENT_OPS",
    "SERVER_OPS",
    "ProtocolError",
    "capture_message",
    "decode_message",
    "encode_message",
    "result_message",
    "ServeServer",
    "STATUSES",
    "CaptureRequest",
    "CaptureResponse",
    "IngestService",
    "ServeConfig",
    "latency_summary",
    "shard_of_key",
]
