"""The streaming ingestion service: bounded queue → batcher → executor.

:class:`IngestService` turns the one-shot capture pipeline into a
long-running asyncio service. Requests name coordinates into
server-owned state — device *d* of a seeded
:func:`~repro.fleet.population.generate_devices` population photographs
displayed scene *s*, repeat *r* — and flow through four stages:

1. **Admission** (:meth:`IngestService.submit`) — synchronous and
   non-blocking. A full queue *sheds* the request immediately with a
   counted ``serve.shed`` (explicit backpressure: the open-loop load
   generator never blocks, the service never buffers unboundedly); a
   draining service rejects with ``serve.rejected_draining``;
   out-of-range coordinates reject with ``serve.invalid``. Everything
   admitted increments ``serve.accepted`` and is *guaranteed a terminal
   response* — completed, timed out, or errored — which is the
   accounting invariant :meth:`accounting` checks.
2. **Batching** — a single batcher task collects up to
   ``batch_max`` requests per ``batch_window_s`` and coalesces
   duplicates: requests with equal ``(device, scene, repeat)``
   coordinates map to one :class:`~repro.runner.units.CaptureUnit`
   (equal coordinates ⇒ equal unit ⇒ equal cache key), executed once
   and fanned back to every requester (``serve.coalesced``). Requests
   whose ``request_timeout_s`` deadline passed while queued are answered
   ``timeout`` instead of executed.
3. **Execution** — the batch's unique units run through the same
   :class:`~repro.runner.executor.FleetExecutor` (and optional
   :class:`~repro.runner.cache.CaptureCache`) as every offline study,
   in a worker thread so the event loop keeps admitting and shedding
   while capture work is in flight. Inference runs **per capture**
   (``predict_one``), never over the coalesced batch, so a response is a
   pure function of its request coordinates alone — batch composition,
   arrival order, and worker count cannot change a bit. That is the
   drained-service == serial-runner invariant
   (:meth:`serial_reference`, pinned by ``tests/serve/``).
4. **Metrics** — every event is recorded into the *current window*
   :class:`~repro.obs.metrics.MetricsRegistry`; a window task rolls the
   window every ``window_s`` seconds by snapshotting it and folding the
   snapshot into the cumulative registry via
   :meth:`~repro.obs.metrics.MetricsRegistry.merge` — the windowed
   streaming aggregation that merge associativity exists for. Totals
   are therefore *derived from window merges*, not double-counted, and
   any grouping of windows merges to the same cumulative state.

Shutdown is a **graceful drain** (:meth:`drain`): admission closes,
everything already accepted is answered, background tasks stop, the
open window folds in, and the final accounting is returned.

This module is DET002-exempt (see ``repro.lint``): wall-clock here
steers scheduling and reported latencies only — payload bits all come
from the pure ``execute_unit`` path.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.runtime import DeviceRuntime
from ..fleet.population import FleetSpec, SyntheticDevice, generate_devices
from ..imaging.image import ImageBuffer
from ..lab.rig import CaptureRig, DisplayedImage
from ..nn.model import Model, micro_mobilenet
from ..obs.metrics import MetricsRegistry
from ..runner.cache import CaptureCache
from ..runner.executor import FleetExecutor
from ..runner.seeds import unit_entropy
from ..runner.units import CaptureUnit, execute_unit, unit_cache_key
from ..scenes.dataset import build_dataset
from ..scenes.objects import ALL_CLASSES
from ..scenes.screen import Screen

__all__ = [
    "STATUSES",
    "ServeConfig",
    "CaptureRequest",
    "CaptureResponse",
    "IngestService",
    "latency_summary",
    "shard_of_key",
]

#: Terminal request statuses. Exactly one is attached to every submit().
STATUSES = ("ok", "shed", "timeout", "draining", "invalid", "error")

#: Exact-latency samples kept for percentile reporting; beyond this the
#: run-level percentiles are computed over the first N samples (the
#: histogram metric keeps counting exactly). Bounds service memory.
LATENCY_KEEP = 1_000_000


def latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank percentile summary of a latency sample, in ms.

    Returns ``{"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
    "max_ms"}``; an empty sample returns ``{"count": 0}``.
    """
    if not latencies:
        return {"count": 0}
    data = sorted(latencies)

    def rank(p: float) -> float:
        idx = max(0, min(len(data) - 1, math.ceil(p / 100.0 * len(data)) - 1))
        return data[idx] * 1e3

    return {
        "count": len(data),
        "mean_ms": sum(data) / len(data) * 1e3,
        "p50_ms": rank(50),
        "p95_ms": rank(95),
        "p99_ms": rank(99),
        "max_ms": data[-1] * 1e3,
    }


def shard_of_key(key: str, shard_count: int) -> int:
    """Map a capture-cache key to a shard, aligned with the cache's own
    two-hex-character directory sharding (``<dir>/<key[:2]>/...``)."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    return int(key[:2], 16) % shard_count


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one :class:`IngestService`.

    Attributes
    ----------
    fleet_size, scenes, seed:
        The served population (``generate_devices(fleet_size, seed)``)
        and displayed-scene set (same construction as the population
        study: shared radiance, one angle). ``seed`` also seeds the
        per-unit capture entropy, so a service and a population study
        with equal seeds share capture-cache entries.
    queue_capacity:
        Bound on queued (admitted, not yet batched) requests. Admission
        beyond it sheds, never blocks.
    batch_max, batch_window_s:
        Coalescing knobs: a batch closes at ``batch_max`` requests or
        ``batch_window_s`` seconds after its first request, whichever
        comes first.
    request_timeout_s:
        Queue-time budget. A request older than this when its batch is
        assembled is answered ``timeout`` instead of executed.
    workers:
        :class:`FleetExecutor` process count for the capture fan-out
        (``0`` = serial in-thread — output-identical either way).
    batched:
        Opt-in: route each executor batch through the fused
        same-(phone, scene) group path
        (:func:`repro.runner.units.execute_unit_group`). Off by default
        for serving — the conservative per-unit path keeps per-request
        latency attribution trivial — and bit-identical when on, which
        ``tests/serve/test_batched.py`` pins against
        :meth:`serial_reference`.
    window_s:
        Streaming-metrics window length; ``0`` disables the periodic
        window task (windows then roll only at :meth:`drain`).
    model:
        ``"quick"`` — the fleet studies' quick-trained classifier
        (:func:`repro.fleet.studies.fleet_model`, disk-cached);
        ``"untrained"`` — a seed-1 untrained MicroMobileNet (instant
        start, for smoke tests and throughput benchmarks).
    """

    fleet_size: int = 16
    scenes: int = 4
    seed: int = 0
    queue_capacity: int = 256
    batch_max: int = 64
    batch_window_s: float = 0.05
    request_timeout_s: float = 30.0
    workers: int = 0
    batched: bool = False
    window_s: float = 5.0
    model: str = "quick"

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be >= 1")
        if self.scenes < 1:
            raise ValueError("scenes must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.request_timeout_s < 0:
            raise ValueError("request_timeout_s must be >= 0")
        if self.window_s < 0:
            raise ValueError("window_s must be >= 0")
        if self.model not in ("quick", "untrained"):
            raise ValueError(f"unknown model choice {self.model!r}")


@dataclass(frozen=True)
class CaptureRequest:
    """One ingestion request: coordinates into the served fleet."""

    request_id: int
    device: int
    scene: int
    repeat: int = 0


@dataclass(frozen=True)
class CaptureResponse:
    """The terminal answer to one :class:`CaptureRequest`.

    ``status == "ok"`` carries the prediction and a SHA-256 digest of
    the decoded pixel buffer; every other status carries ``detail``.
    ``latency_s`` is measurement side-band — excluded from
    :meth:`deterministic_fields`.
    """

    request_id: int
    status: str
    top1: int = -1
    confidence: float = 0.0
    ranking: Tuple[int, ...] = ()
    pixels_sha256: str = ""
    encoded_size: int = 0
    latency_s: float = 0.0
    detail: str = ""

    def deterministic_fields(self) -> Tuple:
        """Everything a response asserts about *results* (no timing)."""
        return (
            self.request_id,
            self.status,
            self.top1,
            self.confidence,
            self.ranking,
            self.pixels_sha256,
            self.encoded_size,
        )


@dataclass
class _Pending:
    """One admitted request waiting in the queue."""

    request: CaptureRequest
    arrival: float
    future: "asyncio.Future[CaptureResponse]"


@dataclass
class _UnitResult:
    """What the worker thread ships back per unique unit."""

    top1: int
    confidence: float
    ranking: Tuple[int, ...]
    pixels_sha256: str
    encoded_size: int


class IngestService:
    """Long-running capture ingestion over a fixed fleet + scene set.

    Parameters
    ----------
    config:
        The static :class:`ServeConfig`.
    model:
        Optional explicit classifier (overrides ``config.model``) —
        tests pass an untrained model; production uses the default.
    cache:
        Optional shared :class:`CaptureCache`; also used for
        :meth:`warm` and by the rig's radiance cache.
    spec:
        Optional :class:`FleetSpec` overriding the default vendor
        catalog.
    """

    def __init__(
        self,
        config: ServeConfig,
        model: Optional[Model] = None,
        cache: Optional[CaptureCache] = None,
        spec: Optional[FleetSpec] = None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.devices: List[SyntheticDevice] = generate_devices(
            config.fleet_size, seed=config.seed, spec=spec
        )
        dataset = build_dataset(
            per_class=max(1, math.ceil(config.scenes / 5)), seed=config.seed
        )
        rig = CaptureRig(screen=Screen(seed=config.seed), angles=(0.0,), cache=cache)
        displayed = rig.present(list(dataset))[: config.scenes]
        if len(displayed) < config.scenes:
            raise ValueError(
                f"dataset yielded only {len(displayed)} scenes; "
                f"asked for {config.scenes}"
            )
        self.displayed: List[DisplayedImage] = displayed
        if model is None:
            if config.model == "untrained":
                model = micro_mobilenet(num_classes=len(ALL_CLASSES), seed=1)
            else:
                from ..fleet.studies import fleet_model

                model = fleet_model()
        self.runtime = DeviceRuntime(model)
        self.executor = FleetExecutor(
            workers=config.workers, cache=cache, batched=config.batched
        )

        # Streaming metrics: events land in the current window; the
        # cumulative registry is built purely by merging window
        # snapshots (see _roll_window).
        self.metrics = MetricsRegistry()
        self._window = MetricsRegistry()
        self._window_latencies: List[float] = []
        self._latencies: List[float] = []
        self._windows_rolled = 0
        self._window_started = 0.0
        self._started_at: Optional[float] = None
        self._drained_at: Optional[float] = None

        self._queue: Optional[asyncio.Queue] = None
        self._accepting = False
        self._batcher_task: Optional[asyncio.Task] = None
        self._window_task: Optional[asyncio.Task] = None
        #: Called with each rolled window's summary dict (CLI/server
        #: wire this to a log line / JSONL sink). Side-band only.
        self.on_window: Optional[Callable[[Dict], None]] = None

    # ------------------------------------------------------------------
    # Request → unit (the deterministic core)
    # ------------------------------------------------------------------
    def unit_for(self, request: CaptureRequest) -> CaptureUnit:
        """The :class:`CaptureUnit` a request's coordinates name.

        Identical to the population study's unit construction — same
        entropy derivation, same profile, same radiance — so the service
        shares cache entries with offline studies at equal seeds.
        """
        device = self.devices[request.device]
        shown = self.displayed[request.scene]
        return CaptureUnit(
            kind="photograph",
            profile=device.profile,
            radiance=shown.radiance.pixels,
            entropy=unit_entropy(
                self.config.seed,
                device.profile.name,
                shown.image_id,
                request.repeat,
            ),
        )

    def _result_from_payload(self, payload: Dict[str, np.ndarray]) -> _UnitResult:
        pixels = payload["pixels"]
        prediction = self.runtime.predict_one(ImageBuffer(pixels))
        digest = hashlib.sha256(np.ascontiguousarray(pixels).tobytes()).hexdigest()
        return _UnitResult(
            top1=prediction.top1,
            confidence=prediction.confidence,
            ranking=prediction.ranking,
            pixels_sha256=digest,
            encoded_size=int(payload["encoded_size"]),
        )

    def serial_reference(
        self, requests: Sequence[CaptureRequest]
    ) -> List[CaptureResponse]:
        """The serial-runner answer to a request set.

        One request at a time, no queue, no batching, no coalescing, no
        pool: ``execute_unit`` then single-image inference. A drained
        service must agree with this bit for bit on every
        :meth:`CaptureResponse.deterministic_fields` — the serving
        analogue of the repo's parallel == serial invariant.
        """
        responses = []
        for request in requests:
            result = self._result_from_payload(execute_unit(self.unit_for(request)))
            responses.append(self._ok_response(request, result, latency=0.0))
        return responses

    @staticmethod
    def _ok_response(
        request: CaptureRequest, result: _UnitResult, latency: float
    ) -> CaptureResponse:
        return CaptureResponse(
            request_id=request.request_id,
            status="ok",
            top1=result.top1,
            confidence=result.confidence,
            ranking=result.ranking,
            pixels_sha256=result.pixels_sha256,
            encoded_size=result.encoded_size,
            latency_s=latency,
        )

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, n: float = 1) -> None:
        self._window.count(name, n)

    def _observe_latency(self, latency: float) -> None:
        self._window.observe("serve.latency_ms", latency * 1e3)
        self._window_latencies.append(latency)
        if len(self._latencies) < LATENCY_KEEP:
            self._latencies.append(latency)

    def _roll_window(self, now: float) -> Dict:
        """Close the current window: fold its snapshot into the
        cumulative registry (the ``merge`` streaming-aggregation step)
        and return the window's summary."""
        snapshot = self._window.snapshot()
        self._window = MetricsRegistry()
        window_latencies = self._window_latencies
        self._window_latencies = []
        self.metrics.merge(snapshot)
        duration = max(now - self._window_started, 1e-9)
        self._window_started = now
        self._windows_rolled += 1
        counters = snapshot.get("counters", {})
        completed = counters.get("serve.completed", 0)
        summary = {
            "window": self._windows_rolled,
            "duration_s": duration,
            "completed": completed,
            "accepted": counters.get("serve.accepted", 0),
            "shed": counters.get("serve.shed", 0),
            "timeout": counters.get("serve.timeout", 0),
            "captures_per_sec": completed / duration,
            "latency": latency_summary(window_latencies),
        }
        return summary

    def stats(self) -> Dict:
        """Cumulative metrics snapshot: rolled windows merged with the
        still-open window (a pure read — nothing rolls)."""
        combined = MetricsRegistry()
        combined.merge(self.metrics.snapshot())
        combined.merge(self._window.snapshot())
        return combined.snapshot()

    def accounting(self) -> Dict:
        """Request accounting, with the conservation check.

        ``balanced`` is the drain guarantee: every accepted request got
        exactly one terminal answer (completed, timed out, or errored);
        everything else was refused up front with a counted reason.
        """
        counters = self.stats().get("counters", {})

        def get(name: str) -> int:
            return int(counters.get(name, 0))

        accepted = get("serve.accepted")
        completed = get("serve.completed")
        timed_out = get("serve.timeout")
        errors = get("serve.errors")
        report = {
            "accepted": accepted,
            "completed": completed,
            "timed_out": timed_out,
            "errors": errors,
            "shed": get("serve.shed"),
            "rejected_draining": get("serve.rejected_draining"),
            "invalid": get("serve.invalid"),
            "coalesced": get("serve.coalesced"),
            "batches": get("serve.batches"),
            "pending": self._queue.qsize() if self._queue is not None else 0,
            "balanced": accepted == completed + timed_out + errors,
        }
        return report

    def run_summary(self) -> Dict:
        """Final run report: accounting + throughput + tail latency."""
        summary = {
            "accounting": self.accounting(),
            "latency": latency_summary(self._latencies),
            "config": {
                "fleet_size": self.config.fleet_size,
                "scenes": self.config.scenes,
                "seed": self.config.seed,
                "queue_capacity": self.config.queue_capacity,
                "batch_max": self.config.batch_max,
                "workers": self.config.workers,
                "batched": self.config.batched,
                "model": self.config.model,
            },
        }
        if self._started_at is not None and self._drained_at is not None:
            elapsed = max(self._drained_at - self._started_at, 1e-9)
            summary["elapsed_s"] = elapsed
            summary["captures_per_sec"] = (
                summary["accounting"]["completed"] / elapsed
            )
        return summary

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Begin accepting: spawn the batcher and (optionally) the
        window-roll task. Must run inside an event loop."""
        if self._batcher_task is not None:
            raise RuntimeError("service already started")
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._accepting = True
        self._started_at = loop.time()
        self._window_started = loop.time()
        self._drained_at = None
        self._batcher_task = loop.create_task(self._batch_loop())
        if self.config.window_s > 0:
            self._window_task = loop.create_task(self._window_loop())

    async def drain(self) -> Dict:
        """Graceful shutdown: refuse new work, answer all accepted work.

        Idempotent. Returns the final :meth:`accounting` (with
        ``balanced`` asserting the conservation invariant).
        """
        self._accepting = False
        if self._queue is not None:
            await self._queue.join()
        for task in (self._batcher_task, self._window_task):
            if task is not None:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
        self._batcher_task = None
        self._window_task = None
        loop = asyncio.get_running_loop()
        if self._drained_at is None:
            self._drained_at = loop.time()
        self._roll_window(loop.time())
        return self.accounting()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _validate(self, request: CaptureRequest) -> Optional[str]:
        if not 0 <= request.device < len(self.devices):
            return f"device {request.device} outside fleet of {len(self.devices)}"
        if not 0 <= request.scene < len(self.displayed):
            return f"scene {request.scene} outside {len(self.displayed)} scenes"
        if request.repeat < 0:
            return f"negative repeat {request.repeat}"
        return None

    def submit(self, request: CaptureRequest) -> "asyncio.Future[CaptureResponse]":
        """Admit (or immediately refuse) one request.

        Synchronous and non-blocking by design: the returned future is
        already resolved for refusals (``invalid`` / ``draining`` /
        ``shed``), and resolves with the terminal response otherwise.
        Never raises for a well-typed request.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[CaptureResponse]" = loop.create_future()
        problem = self._validate(request)
        if problem is not None:
            self._count("serve.invalid")
            future.set_result(
                CaptureResponse(request.request_id, "invalid", detail=problem)
            )
            return future
        if not self._accepting or self._queue is None:
            self._count("serve.rejected_draining")
            future.set_result(
                CaptureResponse(
                    request.request_id, "draining", detail="service is draining"
                )
            )
            return future
        if self._queue.qsize() >= self.config.queue_capacity:
            self._count("serve.shed")
            future.set_result(
                CaptureResponse(
                    request.request_id,
                    "shed",
                    detail=f"queue full ({self.config.queue_capacity})",
                )
            )
            return future
        self._count("serve.accepted")
        self._queue.put_nowait(_Pending(request, loop.time(), future))
        self._window.gauge("serve.queue_depth", self._queue.qsize())
        return future

    # ------------------------------------------------------------------
    # Batching + execution
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.batch_max:
                if self._queue.qsize() > 0:
                    batch.append(self._queue.get_nowait())
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            try:
                await self._process(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _process(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Pending] = []
        for pending in batch:
            if now - pending.arrival > self.config.request_timeout_s:
                self._count("serve.timeout")
                self._resolve(
                    pending,
                    CaptureResponse(
                        pending.request.request_id,
                        "timeout",
                        detail=(
                            f"queued {now - pending.arrival:.3f}s > "
                            f"{self.config.request_timeout_s}s budget"
                        ),
                        latency_s=now - pending.arrival,
                    ),
                )
            else:
                live.append(pending)
        if not live:
            return

        groups: Dict[Tuple[int, int, int], List[_Pending]] = {}
        for pending in live:
            request = pending.request
            key = (request.device, request.scene, request.repeat)
            groups.setdefault(key, []).append(pending)
        self._count("serve.coalesced", len(live) - len(groups))
        self._count("serve.batches")
        self._window.gauge("serve.batch_size", len(live))
        units = [
            self.unit_for(pendings[0].request) for pendings in groups.values()
        ]
        try:
            results = await loop.run_in_executor(None, self._execute, units)
        except Exception as exc:  # keep the batcher alive; answer everyone
            self._count("serve.errors", len(live))
            for pendings in groups.values():
                for pending in pendings:
                    self._resolve(
                        pending,
                        CaptureResponse(
                            pending.request.request_id,
                            "error",
                            detail=f"{type(exc).__name__}: {exc}",
                        ),
                    )
            return
        done = loop.time()
        for pendings, result in zip(groups.values(), results):
            for pending in pendings:
                latency = done - pending.arrival
                self._count("serve.completed")
                self._observe_latency(latency)
                self._resolve(
                    pending, self._ok_response(pending.request, result, latency)
                )

    def _execute(self, units: List[CaptureUnit]) -> List[_UnitResult]:
        """Worker-thread stage: capture fan-out, then per-unit inference.

        ``predict_one`` per payload — never a batched forward over the
        coalesced group — so each result depends only on its own unit.
        """
        payloads = self.executor.run(units)
        return [self._result_from_payload(payload) for payload in payloads]

    @staticmethod
    def _resolve(pending: _Pending, response: CaptureResponse) -> None:
        if not pending.future.done():
            pending.future.set_result(response)

    async def _window_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.window_s)
            summary = self._roll_window(loop.time())
            if self.on_window is not None:
                self.on_window(summary)

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    def warm(
        self, shard_index: int = 0, shard_count: int = 1, repeats: int = 1
    ) -> Dict[str, int]:
        """Pre-populate the capture cache for this service's shard.

        Enumerates every ``(device, scene, repeat < repeats)`` unit the
        service can be asked for, keeps the ones whose cache key falls in
        shard ``shard_index`` of ``shard_count`` (:func:`shard_of_key` —
        aligned with the cache's own directory sharding, so *N* serve
        replicas warming shards ``0..N-1`` of a shared ``--cache-dir``
        partition the keyspace without overlap), and executes the
        not-yet-cached ones through the executor, which writes them
        back. Synchronous; call before :meth:`start`.
        """
        if self.cache is None:
            raise ValueError("cache warming needs an attached CaptureCache")
        if not 0 <= shard_index < shard_count:
            raise ValueError("shard_index must be in [0, shard_count)")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        candidates = 0
        mine: List[CaptureUnit] = []
        already = 0
        for device_idx in range(len(self.devices)):
            for scene_idx in range(len(self.displayed)):
                for repeat in range(repeats):
                    candidates += 1
                    unit = self.unit_for(
                        CaptureRequest(-1, device_idx, scene_idx, repeat)
                    )
                    key = unit_cache_key(unit)
                    if shard_of_key(key, shard_count) != shard_index:
                        continue
                    if key in self.cache:
                        already += 1
                    else:
                        mine.append(unit)
        if mine:
            self.executor.run(mine)  # cache-attached: results written back
        return {
            "candidates": candidates,
            "shard_units": already + len(mine),
            "already_cached": already,
            "warmed": len(mine),
        }
