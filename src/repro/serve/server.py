"""TCP front-end for :class:`~repro.serve.service.IngestService`.

One asyncio stream server speaking the newline-delimited JSON protocol
(:mod:`repro.serve.protocol`). Each connection is independent: the
reader task decodes lines, feeds ``capture`` messages straight into the
service's synchronous :meth:`~repro.serve.service.IngestService.submit`
(so shedding happens inline, before any await), and attaches a done
callback that writes the ``result`` line back on the same connection.
``drain`` triggers the service-wide graceful drain and, with
``"stop": true``, shuts the whole server down afterwards — that is how
``python -m repro loadgen --drain`` ends a benchmark run cleanly.

Responses on one connection are written in completion order, not
submission order; the ``id`` echo token is the client's correlation key.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Set

from .protocol import ProtocolError, decode_message, encode_message, result_message
from .service import CaptureRequest, CaptureResponse, IngestService

__all__ = ["ServeServer"]


class ServeServer:
    """Serve one :class:`IngestService` over TCP.

    Parameters
    ----------
    service:
        A constructed (not yet started) service; the server owns its
        lifecycle from :meth:`run`.
    host, port:
        Bind address. ``port=0`` asks the OS for a free port —
        :attr:`port` reports the bound one (tests and the CLI print it).
    """

    def __init__(self, service: IngestService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set["asyncio.Task"] = set()
        self.drained: Optional[Dict] = None

    async def start(self) -> None:
        """Start the service and bind the listener."""
        self._stopping = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> Dict:
        """Start, serve until a ``drain stop=true`` arrives (or
        :meth:`request_stop`), then drain and close. Returns the final
        accounting."""
        if self._server is None:
            await self.start()
        assert self._server is not None and self._stopping is not None
        async with self._server:
            await self._stopping.wait()
        if self.drained is None:
            self.drained = await self.service.drain()
        for writer in list(self._writers):
            writer.close()
        # Give connection handlers a moment to observe the closed
        # transports and exit; anything still stuck is abandoned (its
        # requests were already answered by the drain above).
        handlers = [t for t in self._handlers if not t.done()]
        if handlers:
            await asyncio.wait(handlers, timeout=1.0)
        return self.drained

    def request_stop(self) -> None:
        """Ask :meth:`run` to drain and exit (signal handlers use this)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        write_lock = asyncio.Lock()
        send_tasks: Set["asyncio.Task"] = set()

        async def send(message: Dict) -> None:
            # The lock serializes whole frames onto the shared writer —
            # interleaved partial writes would corrupt the NDJSON stream.
            # The awaited drain inside it is flow control on this same
            # writer, so it cannot be hoisted out of the critical section.
            async with write_lock:  # lint: disable=ASY002
                if writer.is_closing():
                    return
                writer.write(encode_message(message))
                await writer.drain()

        def _send_finished(task: "asyncio.Task") -> None:
            send_tasks.discard(task)
            if not task.cancelled():
                # Retrieve the exception so the loop never warns about an
                # unconsumed failure; a send can only fail because the
                # client vanished mid-reply, which the read loop already
                # handles by closing the connection.
                task.exception()

        def on_done(task: "asyncio.Future[CaptureResponse]") -> None:
            if task.cancelled():
                return
            sender = asyncio.get_running_loop().create_task(
                send(result_message(task.result()))
            )
            # Hold a strong reference: the loop keeps only weak ones, so
            # an unreferenced send task could be garbage collected (and
            # its reply lost) before it runs.
            send_tasks.add(sender)
            sender.add_done_callback(_send_finished)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except asyncio.CancelledError:
                    # Loop shutdown mid-read: the drain already answered
                    # every accepted request, so a quiet exit is correct.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    await send({"op": "error", "detail": str(exc)})
                    continue
                op = message["op"]
                if op == "capture":
                    request = CaptureRequest(
                        request_id=int(message.get("id", -1)),
                        device=int(message.get("device", -1)),
                        scene=int(message.get("scene", -1)),
                        repeat=int(message.get("repeat", 0)),
                    )
                    self.service.submit(request).add_done_callback(on_done)
                elif op == "hello":
                    await send(
                        {
                            "op": "hello",
                            "devices": len(self.service.devices),
                            "scenes": len(self.service.displayed),
                            "seed": self.service.config.seed,
                            "queue_capacity": self.service.config.queue_capacity,
                        }
                    )
                elif op == "stats":
                    await send(
                        {
                            "op": "stats",
                            "metrics": self.service.stats(),
                            "accounting": self.service.accounting(),
                        }
                    )
                elif op == "drain":
                    self.drained = await self.service.drain()
                    await send({"op": "drained", "accounting": self.drained})
                    if message.get("stop"):
                        self.request_stop()
                else:
                    await send({"op": "error", "detail": f"unknown op {op!r}"})
        finally:
            self._writers.discard(writer)
            writer.close()
