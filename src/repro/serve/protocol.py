"""Newline-delimited JSON wire protocol between ``serve`` and ``loadgen``.

One message per line, UTF-8 JSON with sorted keys (byte-stable for a
given payload). Every message carries an ``"op"`` discriminator:

Client → server
    ``hello``   — ask for the service dimensions (device/scene counts);
    ``capture`` — one capture request: ``id`` (client-chosen echo token),
    ``device``/``scene``/``repeat`` coordinates into the server's fleet;
    ``stats``   — ask for the live metrics snapshot;
    ``drain``   — graceful drain: stop accepting, answer everything
    already accepted, reply ``drained`` with the accounting; with
    ``"stop": true`` the server also shuts down afterwards.

Server → client
    ``hello``, ``stats``, ``drained`` — replies to the above;
    ``result``  — one response per ``capture``, carrying the terminal
    ``status`` (see :mod:`repro.serve.service`) and, when ``ok``, the
    prediction plus a SHA-256 of the decoded pixels (bit-identity is
    checkable over the wire without shipping pixel buffers);
    ``error``   — protocol-level failure for an unparseable line.

The protocol is deliberately free of floats-as-identity: coordinates are
integers, and the only floats (confidence, latency) are reported values,
never inputs.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = [
    "ProtocolError",
    "CLIENT_OPS",
    "SERVER_OPS",
    "encode_message",
    "decode_message",
    "capture_message",
    "result_message",
]

CLIENT_OPS = ("hello", "capture", "stats", "drain")
SERVER_OPS = ("hello", "result", "stats", "drained", "error")


class ProtocolError(ValueError):
    """A line that does not decode into a well-formed message."""


def encode_message(message: Dict) -> bytes:
    """Serialize one message to a single JSON line (sorted keys)."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


def decode_message(line: bytes) -> Dict:
    """Parse one wire line into a message dict.

    Raises
    ------
    ProtocolError:
        If the line is not JSON, not an object, or lacks a string ``op``.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("message lacks a string 'op' field")
    return message


def capture_message(request_id: int, device: int, scene: int, repeat: int = 0) -> Dict:
    """Build a ``capture`` request message."""
    return {
        "op": "capture",
        "id": int(request_id),
        "device": int(device),
        "scene": int(scene),
        "repeat": int(repeat),
    }


def result_message(response) -> Dict:
    """Render a :class:`~repro.serve.service.CaptureResponse` as a message."""
    message = {
        "op": "result",
        "id": response.request_id,
        "status": response.status,
        "latency_ms": round(response.latency_s * 1e3, 3),
    }
    if response.status == "ok":
        message.update(
            top1=response.top1,
            confidence=response.confidence,
            ranking=list(response.ranking),
            pixels_sha256=response.pixels_sha256,
            encoded_size=response.encoded_size,
        )
    elif response.detail:
        message["detail"] = response.detail
    return message
