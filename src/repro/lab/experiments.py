"""The paper's experiments, §4-§6 and §9.2-§9.3.

Each experiment class mirrors one experimental design from the paper:

================================  =====================================
Paper section                     Class here
================================  =====================================
§4  end-to-end instability        :class:`EndToEndExperiment`
§5.1 JPEG quality (Table 2)       :class:`CompressionQualityExperiment`
§5.2 formats (Table 3)            :class:`CompressionFormatExperiment`
§6  ISPs (Table 4)                :class:`ISPComparisonExperiment`
§9.2 raw vs JPEG (Fig. 8)         :class:`RawVsJpegExperiment`
§9.3 top-3 (Fig. 9)               :func:`topk_comparison`
Fig. 1 repeat shots               :func:`repeat_shot_demo`
================================  =====================================

All experiments share one fixed-weight model (the paper's pretrained
MobileNetV2 analogue) through :func:`repro.lab.common.resolve_model`, and
are deterministic given their seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from zlib import crc32

from ..codecs.dng import decode_dng
from ..codecs.registry import decode_any, get_codec
from ..core.instability import accuracy, instability, per_class_instability
from ..core.records import ExperimentResult
from ..devices.phone import Phone
from ..devices.profiles import DeviceProfile, capture_fleet
from ..devices.runtime import DeviceRuntime
from ..imaging.image import ImageBuffer, RawImage
from ..imaging.metrics import PixelDiffStats, pixel_diff_map
from ..isp.profiles import build_isp
from ..nn.model import Model
from ..scenes.dataset import build_dataset
from ..scenes.screen import Screen
from .common import make_record, resolve_model, scaled_mb
from .rig import DEFAULT_ANGLES, CaptureRig, DisplayedImage

__all__ = [
    "EndToEndExperiment",
    "CompressionQualityExperiment",
    "CompressionFormatExperiment",
    "ISPComparisonExperiment",
    "RawVsJpegExperiment",
    "CompressionResult",
    "RawCaptureBank",
    "topk_comparison",
    "repeat_shot_demo",
    "RepeatShotOutcome",
]


# ======================================================================
# §4 — end-to-end
# ======================================================================
class EndToEndExperiment:
    """Photograph every dataset scene on every phone at every angle.

    The result feeds Fig. 3 (accuracy/instability by phone, class,
    angle), Fig. 4 (confidence), and the §9.3 top-k re-scoring.
    """

    def __init__(
        self,
        phones: Optional[Sequence[DeviceProfile]] = None,
        model: Optional[Model] = None,
        angles: Sequence[float] = DEFAULT_ANGLES,
        repeats: int = 1,
        seed: int = 0,
    ) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.profiles = list(phones) if phones is not None else capture_fleet()
        self.phones = [Phone(p) for p in self.profiles]
        self.runtime = DeviceRuntime(resolve_model(model))
        self.angles = tuple(angles)
        self.repeats = repeats
        self.seed = seed

    def run(self, per_class: int = 8, scenes_per_object: int = 1) -> ExperimentResult:
        dataset = build_dataset(
            per_class=per_class, scenes_per_object=scenes_per_object, seed=self.seed
        )
        rig = CaptureRig(screen=Screen(seed=self.seed), angles=self.angles)
        displayed = rig.present(list(dataset))
        result = ExperimentResult([], name="end_to_end")

        for phone in self.phones:
            rng = np.random.default_rng((self.seed, crc32(phone.name.encode())))
            images: List[ImageBuffer] = []
            meta: List[Tuple[DisplayedImage, int]] = []
            for shown in displayed:
                for repeat in range(self.repeats):
                    data = phone.photograph(shown.radiance, rng)
                    images.append(decode_any(data))
                    meta.append((shown, repeat))
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=phone.name, repeat=repeat)
                for pred, (shown, repeat) in zip(predictions, meta)
            )
        return result


# ======================================================================
# Raw capture bank shared by §5 / §6 / §9.2
# ======================================================================
@dataclass
class RawCaptureBank:
    """Raw captures from the raw-capable phones (Galaxy S10, iPhone XR).

    The paper's §5 and §6 experiments start from "the raw photos taken in
    the end-to-end experiment on the iPhone and Samsung phone"; this bank
    is that corpus. Each entry keeps the capture's provenance so records
    can compare the same displayed image across downstream treatments.
    """

    raws: List[RawImage]
    displayed: List[DisplayedImage]
    phone_names: List[str]

    @classmethod
    def collect(
        cls,
        per_class: int = 8,
        angles: Sequence[float] = (0.0,),
        seed: int = 0,
        phones: Optional[Sequence[DeviceProfile]] = None,
    ) -> "RawCaptureBank":
        profiles = list(phones) if phones is not None else [
            p for p in capture_fleet() if p.supports_raw
        ]
        if not profiles:
            raise ValueError("no raw-capable phones supplied")
        dataset = build_dataset(per_class=per_class, seed=seed)
        rig = CaptureRig(screen=Screen(seed=seed), angles=angles)
        displayed = rig.present(list(dataset))

        raws: List[RawImage] = []
        shown_out: List[DisplayedImage] = []
        names: List[str] = []
        for profile in profiles:
            phone = Phone(profile)
            rng = np.random.default_rng((seed, crc32(profile.name.encode())))
            for shown in displayed:
                raws.append(phone.capture_raw(shown.radiance, rng))
                shown_out.append(shown)
                names.append(profile.name)
        return cls(raws=raws, displayed=shown_out, phone_names=names)

    def __len__(self) -> int:
        return len(self.raws)


@dataclass
class CompressionResult:
    """Records plus the side-band size/accuracy stats of Tables 2 and 3."""

    result: ExperimentResult
    avg_size_bytes: Dict[str, float]
    #: Sizes extrapolated to 12 MP-equivalent MB (comparable to the paper).
    avg_size_mb_scaled: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.avg_size_mb_scaled:
            self.avg_size_mb_scaled = {
                env: scaled_mb(size) for env, size in self.avg_size_bytes.items()
            }

    def accuracy_by_environment(self) -> Dict[str, float]:
        return {
            env: accuracy(self.result.for_environment(env))
            for env in self.result.environments()
        }

    def instability(self) -> float:
        return instability(self.result)


class CompressionQualityExperiment:
    """§5.1 / Table 2: the same raw photo at JPEG quality 100, 85, 50.

    A consistent software ISP (ImageMagick) develops every raw capture so
    the *only* varying factor is the compression quality — the paper's
    isolation strategy.
    """

    QUALITIES = (100, 85, 50)

    def __init__(self, model: Optional[Model] = None, isp: str = "imagemagick") -> None:
        self.runtime = DeviceRuntime(resolve_model(model))
        self.isp = build_isp(isp)

    def run(self, bank: RawCaptureBank) -> CompressionResult:
        jpeg = get_codec("jpeg")
        developed = [self.isp.process(raw) for raw in bank.raws]
        result = ExperimentResult([], name="jpeg_quality")
        sizes: Dict[str, List[int]] = {f"jpeg-q{q}": [] for q in self.QUALITIES}
        for quality in self.QUALITIES:
            env = f"jpeg-q{quality}"
            encoded = [jpeg.encode(img, quality=quality) for img in developed]
            sizes[env] = [len(e) for e in encoded]
            images = [jpeg.decode(e) for e in encoded]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=env, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return CompressionResult(
            result=result,
            avg_size_bytes={env: float(np.mean(s)) for env, s in sizes.items()},
        )


class CompressionFormatExperiment:
    """§5.2 / Table 3: the same raw photo as JPEG, PNG, WebP, and HEIF.

    Each format uses its default parameters, as in the paper.
    """

    FORMATS = ("jpeg", "png", "webp", "heif")

    def __init__(self, model: Optional[Model] = None, isp: str = "imagemagick") -> None:
        self.runtime = DeviceRuntime(resolve_model(model))
        self.isp = build_isp(isp)

    def run(self, bank: RawCaptureBank) -> CompressionResult:
        developed = [self.isp.process(raw) for raw in bank.raws]
        result = ExperimentResult([], name="formats")
        avg_sizes: Dict[str, float] = {}
        for fmt in self.FORMATS:
            codec = get_codec(fmt)
            if codec.default_quality is None:
                encoded = [codec.encode(img) for img in developed]
            else:
                encoded = [
                    codec.encode(img, quality=codec.default_quality)
                    for img in developed
                ]
            avg_sizes[fmt] = float(np.mean([len(e) for e in encoded]))
            images = [codec.decode(e) for e in encoded]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=fmt, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return CompressionResult(result=result, avg_size_bytes=avg_sizes)


# ======================================================================
# §6 — ISP comparison
# ======================================================================
@dataclass
class ISPComparisonOutcome:
    result: ExperimentResult

    def accuracy_by_isp(self) -> Dict[str, float]:
        return {
            env: accuracy(self.result.for_environment(env))
            for env in self.result.environments()
        }

    def instability(self) -> float:
        return instability(self.result)


class ISPComparisonExperiment:
    """§6 / Table 4: develop the same raws with two software ISPs.

    The paper uses ImageMagick and Adobe Photoshop as black-box software
    ISPs (following Buckler et al. 2017) and evaluates the uncompressed
    (PNG) conversions, so no codec noise enters.
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        isps: Sequence[str] = ("imagemagick", "adobe"),
    ) -> None:
        if len(isps) < 2:
            raise ValueError("need at least two ISPs to compare")
        self.runtime = DeviceRuntime(resolve_model(model))
        self.isp_names = tuple(isps)

    def run(self, bank: RawCaptureBank) -> ISPComparisonOutcome:
        result = ExperimentResult([], name="isp_comparison")
        for name in self.isp_names:
            pipeline = build_isp(name)
            images = [pipeline.process(raw) for raw in bank.raws]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=name, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return ISPComparisonOutcome(result=result)


# ======================================================================
# §9.2 — raw vs JPEG
# ======================================================================
@dataclass
class RawVsJpegOutcome:
    """Instability/accuracy of the JPEG path vs. the consistent raw path."""

    jpeg_result: ExperimentResult
    raw_result: ExperimentResult

    def instability_jpeg(self) -> float:
        return instability(self.jpeg_result)

    def instability_raw(self) -> float:
        return instability(self.raw_result)

    def per_class(self) -> Dict[str, Tuple[float, float]]:
        """class -> (jpeg instability, raw instability), Fig. 8b."""
        jpeg = per_class_instability(self.jpeg_result)
        raw = per_class_instability(self.raw_result)
        return {cls: (jpeg[cls], raw.get(cls, 0.0)) for cls in jpeg}

    def accuracy_table(self) -> Dict[str, float]:
        """Fig. 8c: accuracy per phone per path."""
        out = {}
        for env in self.jpeg_result.environments():
            out[f"{env}/jpeg"] = accuracy(self.jpeg_result.for_environment(env))
        for env in self.raw_result.environments():
            out[f"{env}/raw"] = accuracy(self.raw_result.for_environment(env))
        return out

    def relative_improvement(self) -> float:
        """Fractional instability reduction from going raw (~11.5% in paper)."""
        jpeg = self.instability_jpeg()
        if jpeg == 0:
            return 0.0
        return (jpeg - self.instability_raw()) / jpeg


class RawVsJpegExperiment:
    """§9.2 / Fig. 8: each phone shoots both JPEG and raw DNG.

    The raw arm converts every DNG with the *same* software ISP on both
    phones, eliminating ISP and codec differences; the JPEG arm is each
    phone's own pipeline (forced to JPEG so both arms share a format
    count). Only the two raw-capable phones participate, as in the paper.
    """

    def __init__(self, model: Optional[Model] = None, seed: int = 0) -> None:
        self.runtime = DeviceRuntime(resolve_model(model))
        self.seed = seed
        self.conversion_isp = build_isp("imagemagick")

    def run(
        self, per_class: int = 8, angles: Sequence[float] = (0.0,)
    ) -> RawVsJpegOutcome:
        profiles = [p for p in capture_fleet() if p.supports_raw]
        dataset = build_dataset(per_class=per_class, seed=self.seed)
        rig = CaptureRig(screen=Screen(seed=self.seed), angles=angles)
        displayed = rig.present(list(dataset))

        jpeg_result = ExperimentResult([], name="raw_vs_jpeg/jpeg")
        raw_result = ExperimentResult([], name="raw_vs_jpeg/raw")
        for profile in profiles:
            phone = Phone(profile)
            rng = np.random.default_rng((self.seed, crc32(profile.name.encode())))
            jpeg_images: List[ImageBuffer] = []
            raw_images: List[ImageBuffer] = []
            for shown in displayed:
                raw = phone.capture_raw(shown.radiance, rng)
                # JPEG arm: vendor ISP + JPEG file, the phone's normal path.
                developed = phone.develop(raw)
                data = get_codec("jpeg").encode(
                    developed, quality=profile.save_quality
                )
                jpeg_images.append(decode_any(data))
                # Raw arm: the *same* exposure converted consistently.
                raw_images.append(self.conversion_isp.process(raw))
            for images, result in (
                (jpeg_images, jpeg_result),
                (raw_images, raw_result),
            ):
                predictions = self.runtime.predict(images)
                result.extend(
                    make_record(pred, shown, environment=profile.name)
                    for pred, shown in zip(predictions, displayed)
                )
        return RawVsJpegOutcome(jpeg_result=jpeg_result, raw_result=raw_result)


# ======================================================================
# §9.3 — top-k task simplification
# ======================================================================
def topk_comparison(result: ExperimentResult, k: int = 3) -> Dict[str, float]:
    """Fig. 9: accuracy and instability at top-1 vs top-k.

    Re-scores an existing experiment's records — no new captures, exactly
    like the paper reuses its end-to-end setup.
    """
    if k < 2:
        raise ValueError("k must be >= 2 to be a simplification")
    return {
        "accuracy_top1": accuracy(result, k=1),
        f"accuracy_top{k}": accuracy(result, k=k),
        "instability_top1": instability(result, k=1),
        f"instability_top{k}": instability(result, k=k),
    }


# ======================================================================
# Fig. 1 — repeat shots on one phone
# ======================================================================
@dataclass(frozen=True)
class RepeatShotOutcome:
    """Two back-to-back captures of the same displayed image."""

    first_label: int
    second_label: int
    first_confidence: float
    second_confidence: float
    true_label: int
    diff: PixelDiffStats

    @property
    def diverged(self) -> bool:
        return self.first_label != self.second_label


def repeat_shot_demo(
    profile: Optional[DeviceProfile] = None,
    model: Optional[Model] = None,
    seed: int = 0,
    max_scenes: int = 64,
    pairs_per_scene: int = 3,
) -> RepeatShotOutcome:
    """Reproduce Fig. 1: find a scene where two shots seconds apart diverge.

    Takes ``pairs_per_scene`` repeat-capture pairs per scene (identical
    display, fresh sensor noise) until a pair yields different top-1
    labels; returns the last pair examined if none diverges (the stats
    still show the sub-5% pixel difference the paper highlights).
    """
    profile = profile or capture_fleet()[0]  # Galaxy S10, as in the paper
    phone = Phone(profile)
    runtime = DeviceRuntime(resolve_model(model))
    dataset = build_dataset(per_class=max(1, max_scenes // 5), seed=seed)
    rig = CaptureRig(screen=Screen(seed=seed), angles=(0.0,))
    rng = np.random.default_rng(seed)

    outcome = None
    for shown in rig.present(list(dataset))[:max_scenes]:
        for _ in range(pairs_per_scene):
            img_a = decode_any(phone.photograph(shown.radiance, rng))
            img_b = decode_any(phone.photograph(shown.radiance, rng))
            pred_a, pred_b = runtime.predict([img_a, img_b])
            outcome = RepeatShotOutcome(
                first_label=pred_a.top1,
                second_label=pred_b.top1,
                first_confidence=pred_a.confidence,
                second_confidence=pred_b.confidence,
                true_label=shown.item.label,
                diff=pixel_diff_map(img_a.pixels, img_b.pixels, threshold=0.05),
            )
            if outcome.diverged:
                return outcome
    assert outcome is not None
    return outcome
