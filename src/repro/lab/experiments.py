"""The paper's experiments, §4-§6 and §9.2-§9.3.

Each experiment class mirrors one experimental design from the paper:

================================  =====================================
Paper section                     Class here
================================  =====================================
§4  end-to-end instability        :class:`EndToEndExperiment`
§5.1 JPEG quality (Table 2)       :class:`CompressionQualityExperiment`
§5.2 formats (Table 3)            :class:`CompressionFormatExperiment`
§6  ISPs (Table 4)                :class:`ISPComparisonExperiment`
§9.2 raw vs JPEG (Fig. 8)         :class:`RawVsJpegExperiment`
§9.3 top-3 (Fig. 9)               :func:`topk_comparison`
Fig. 1 repeat shots               :func:`repeat_shot_demo`
================================  =====================================

All experiments share one fixed-weight model (the paper's pretrained
MobileNetV2 analogue) through :func:`repro.lab.common.resolve_model`, and
are deterministic given their seed.

Every experiment class runs its capture work through the
:mod:`repro.runner` fleet executor: pass ``workers=N`` to fan the
(scene, angle, device) units across a process pool and/or ``cache=`` a
:class:`~repro.runner.cache.CaptureCache` to skip redundant
render/capture work across repeated runs and ablation sweeps. Per-unit
seed derivation (:func:`repro.runner.seeds.unit_entropy`) makes the
output bit-identical for every worker count — the invariant
``tests/runner/test_determinism.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codecs.registry import decode_any
from ..core.instability import accuracy, instability, per_class_instability
from ..core.records import ExperimentResult
from ..devices.phone import Phone
from ..devices.profiles import DeviceProfile, capture_fleet
from ..devices.runtime import DeviceRuntime
from ..imaging.image import ImageBuffer, RawImage
from ..imaging.metrics import PixelDiffStats, pixel_diff_map
from ..nn.model import Model
from ..runner.cache import CaptureCache
from ..runner.executor import FleetExecutor
from ..runner.seeds import derive_rng, unit_entropy
from ..runner.units import CaptureUnit, payload_to_raw, raw_to_payload
from ..scenes.dataset import build_dataset
from ..scenes.screen import Screen
from .common import make_record, resolve_model, scaled_mb
from .rig import DEFAULT_ANGLES, CaptureRig, DisplayedImage

#: Inference chunk size for experiment sweeps (see DeviceRuntime).
INFERENCE_BATCH = 64

__all__ = [
    "EndToEndExperiment",
    "CompressionQualityExperiment",
    "CompressionFormatExperiment",
    "ISPComparisonExperiment",
    "RawVsJpegExperiment",
    "CompressionResult",
    "RawCaptureBank",
    "topk_comparison",
    "repeat_shot_demo",
    "RepeatShotOutcome",
]


def _resolve_profiles(
    phones: Optional[Sequence[DeviceProfile]],
    fleet_size: Optional[int],
    seed: int,
    raw_capable_only: bool = False,
) -> List[DeviceProfile]:
    """Resolve an experiment's phone list.

    ``phones`` (explicit) and ``fleet_size`` (a seeded synthetic
    population via :func:`repro.fleet.population.generate_fleet`) are
    mutually exclusive; with neither, the paper's capture fleet is used.
    """
    if phones is not None and fleet_size is not None:
        raise ValueError("pass phones= or fleet_size=, not both")
    if phones is not None:
        profiles = list(phones)
    elif fleet_size is not None:
        from ..fleet.population import generate_fleet

        profiles = generate_fleet(fleet_size, seed=seed)
    else:
        profiles = capture_fleet()
    if raw_capable_only:
        profiles = [p for p in profiles if p.supports_raw]
    return profiles


# ======================================================================
# §4 — end-to-end
# ======================================================================
class EndToEndExperiment:
    """Photograph every dataset scene on every phone at every angle.

    The result feeds Fig. 3 (accuracy/instability by phone, class,
    angle), Fig. 4 (confidence), and the §9.3 top-k re-scoring.

    The fleet defaults to the paper's five phones; pass ``phones=`` for
    an explicit profile list or ``fleet_size=`` to photograph on a
    seeded synthetic population
    (:func:`repro.fleet.population.generate_fleet`) instead — the
    population-scale variant of the §4 study.
    """

    def __init__(
        self,
        phones: Optional[Sequence[DeviceProfile]] = None,
        model: Optional[Model] = None,
        angles: Sequence[float] = DEFAULT_ANGLES,
        repeats: int = 1,
        seed: int = 0,
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
        fleet_size: Optional[int] = None,
    ) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.profiles = _resolve_profiles(phones, fleet_size, seed)
        self.runtime = DeviceRuntime(resolve_model(model), batch_size=INFERENCE_BATCH)
        self.angles = tuple(angles)
        self.repeats = repeats
        self.seed = seed
        self.cache = cache
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def run(self, per_class: int = 8, scenes_per_object: int = 1) -> ExperimentResult:
        dataset = build_dataset(
            per_class=per_class, scenes_per_object=scenes_per_object, seed=self.seed
        )
        rig = CaptureRig(
            screen=Screen(seed=self.seed), angles=self.angles, cache=self.cache
        )
        displayed = rig.present(list(dataset))

        units: List[CaptureUnit] = []
        meta: List[Tuple[DisplayedImage, int]] = []
        for profile in self.profiles:
            for shown in displayed:
                for repeat in range(self.repeats):
                    units.append(
                        CaptureUnit(
                            kind="photograph",
                            profile=profile,
                            radiance=shown.radiance.pixels,
                            entropy=unit_entropy(
                                self.seed, profile.name, shown.image_id, repeat
                            ),
                        )
                    )
                    meta.append((shown, repeat))
        payloads = self.executor.run(units)

        result = ExperimentResult([], name="end_to_end")
        per_phone = len(displayed) * self.repeats
        for p, profile in enumerate(self.profiles):
            start = p * per_phone
            images = [
                ImageBuffer(payload["pixels"])
                for payload in payloads[start : start + per_phone]
            ]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=profile.name, repeat=repeat)
                for pred, (shown, repeat) in zip(
                    predictions, meta[start : start + per_phone]
                )
            )
        return result


# ======================================================================
# Raw capture bank shared by §5 / §6 / §9.2
# ======================================================================
@dataclass
class RawCaptureBank:
    """Raw captures from the raw-capable phones (Galaxy S10, iPhone XR).

    The paper's §5 and §6 experiments start from "the raw photos taken in
    the end-to-end experiment on the iPhone and Samsung phone"; this bank
    is that corpus. Each entry keeps the capture's provenance so records
    can compare the same displayed image across downstream treatments.
    """

    raws: List[RawImage]
    displayed: List[DisplayedImage]
    phone_names: List[str]

    @classmethod
    def collect(
        cls,
        per_class: int = 8,
        angles: Sequence[float] = (0.0,),
        seed: int = 0,
        phones: Optional[Sequence[DeviceProfile]] = None,
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
        fleet_size: Optional[int] = None,
    ) -> "RawCaptureBank":
        profiles = (
            list(phones)
            if phones is not None
            else _resolve_profiles(None, fleet_size, seed, raw_capable_only=True)
        )
        if not profiles:
            raise ValueError("no raw-capable phones supplied")
        dataset = build_dataset(per_class=per_class, seed=seed)
        rig = CaptureRig(screen=Screen(seed=seed), angles=angles, cache=cache)
        displayed = rig.present(list(dataset))

        units: List[CaptureUnit] = []
        shown_out: List[DisplayedImage] = []
        names: List[str] = []
        for profile in profiles:
            for shown in displayed:
                units.append(
                    CaptureUnit(
                        kind="raw",
                        profile=profile,
                        radiance=shown.radiance.pixels,
                        entropy=unit_entropy(seed, profile.name, shown.image_id),
                    )
                )
                shown_out.append(shown)
                names.append(profile.name)
        runner = executor or FleetExecutor(workers=workers, cache=cache)
        raws = [payload_to_raw(payload) for payload in runner.run(units)]
        return cls(raws=raws, displayed=shown_out, phone_names=names)

    def __len__(self) -> int:
        return len(self.raws)


@dataclass
class CompressionResult:
    """Records plus the side-band size/accuracy stats of Tables 2 and 3."""

    result: ExperimentResult
    avg_size_bytes: Dict[str, float]
    #: Sizes extrapolated to 12 MP-equivalent MB (comparable to the paper).
    avg_size_mb_scaled: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.avg_size_mb_scaled:
            self.avg_size_mb_scaled = {
                env: scaled_mb(size) for env, size in self.avg_size_bytes.items()
            }

    def accuracy_by_environment(self) -> Dict[str, float]:
        return {
            env: accuracy(self.result.for_environment(env))
            for env in self.result.environments()
        }

    def instability(self) -> float:
        return instability(self.result)


class CompressionQualityExperiment:
    """§5.1 / Table 2: the same raw photo at JPEG quality 100, 85, 50.

    A consistent software ISP (ImageMagick) develops every raw capture so
    the *only* varying factor is the compression quality — the paper's
    isolation strategy.
    """

    QUALITIES = (100, 85, 50)

    def __init__(
        self,
        model: Optional[Model] = None,
        isp: str = "imagemagick",
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
    ) -> None:
        self.runtime = DeviceRuntime(resolve_model(model), batch_size=INFERENCE_BATCH)
        self.isp_name = isp
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def run(self, bank: RawCaptureBank) -> CompressionResult:
        raw_payloads = [raw_to_payload(raw) for raw in bank.raws]
        units = [
            CaptureUnit(
                kind="develop",
                raw=payload,
                options={"isp": self.isp_name, "codec": "jpeg", "quality": quality},
            )
            for quality in self.QUALITIES
            for payload in raw_payloads
        ]
        outputs = self.executor.run(units)

        result = ExperimentResult([], name="jpeg_quality")
        sizes: Dict[str, List[int]] = {}
        per_quality = len(raw_payloads)
        for q, quality in enumerate(self.QUALITIES):
            env = f"jpeg-q{quality}"
            chunk = outputs[q * per_quality : (q + 1) * per_quality]
            sizes[env] = [int(payload["encoded_size"]) for payload in chunk]
            images = [ImageBuffer(payload["pixels"]) for payload in chunk]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=env, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return CompressionResult(
            result=result,
            avg_size_bytes={env: float(np.mean(s)) for env, s in sizes.items()},
        )


class CompressionFormatExperiment:
    """§5.2 / Table 3: the same raw photo as JPEG, PNG, WebP, and HEIF.

    Each format uses its default parameters, as in the paper.
    """

    FORMATS = ("jpeg", "png", "webp", "heif")

    def __init__(
        self,
        model: Optional[Model] = None,
        isp: str = "imagemagick",
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
    ) -> None:
        self.runtime = DeviceRuntime(resolve_model(model), batch_size=INFERENCE_BATCH)
        self.isp_name = isp
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def run(self, bank: RawCaptureBank) -> CompressionResult:
        raw_payloads = [raw_to_payload(raw) for raw in bank.raws]
        units = [
            CaptureUnit(
                kind="develop",
                raw=payload,
                options={"isp": self.isp_name, "codec": fmt},
            )
            for fmt in self.FORMATS
            for payload in raw_payloads
        ]
        outputs = self.executor.run(units)

        result = ExperimentResult([], name="formats")
        avg_sizes: Dict[str, float] = {}
        per_format = len(raw_payloads)
        for f, fmt in enumerate(self.FORMATS):
            chunk = outputs[f * per_format : (f + 1) * per_format]
            avg_sizes[fmt] = float(
                np.mean([int(payload["encoded_size"]) for payload in chunk])
            )
            images = [ImageBuffer(payload["pixels"]) for payload in chunk]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=fmt, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return CompressionResult(result=result, avg_size_bytes=avg_sizes)


# ======================================================================
# §6 — ISP comparison
# ======================================================================
@dataclass
class ISPComparisonOutcome:
    result: ExperimentResult

    def accuracy_by_isp(self) -> Dict[str, float]:
        return {
            env: accuracy(self.result.for_environment(env))
            for env in self.result.environments()
        }

    def instability(self) -> float:
        return instability(self.result)


class ISPComparisonExperiment:
    """§6 / Table 4: develop the same raws with two software ISPs.

    The paper uses ImageMagick and Adobe Photoshop as black-box software
    ISPs (following Buckler et al. 2017) and evaluates the uncompressed
    (PNG) conversions, so no codec noise enters.
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        isps: Sequence[str] = ("imagemagick", "adobe"),
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
    ) -> None:
        if len(isps) < 2:
            raise ValueError("need at least two ISPs to compare")
        self.runtime = DeviceRuntime(resolve_model(model), batch_size=INFERENCE_BATCH)
        self.isp_names = tuple(isps)
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def run(self, bank: RawCaptureBank) -> ISPComparisonOutcome:
        raw_payloads = [raw_to_payload(raw) for raw in bank.raws]
        units = [
            CaptureUnit(kind="develop", raw=payload, options={"isp": name})
            for name in self.isp_names
            for payload in raw_payloads
        ]
        outputs = self.executor.run(units)

        result = ExperimentResult([], name="isp_comparison")
        per_isp = len(raw_payloads)
        for n, name in enumerate(self.isp_names):
            chunk = outputs[n * per_isp : (n + 1) * per_isp]
            images = [ImageBuffer(payload["pixels"]) for payload in chunk]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=name, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, bank.displayed))
            )
        return ISPComparisonOutcome(result=result)


# ======================================================================
# §9.2 — raw vs JPEG
# ======================================================================
@dataclass
class RawVsJpegOutcome:
    """Instability/accuracy of the JPEG path vs. the consistent raw path."""

    jpeg_result: ExperimentResult
    raw_result: ExperimentResult

    def instability_jpeg(self) -> float:
        return instability(self.jpeg_result)

    def instability_raw(self) -> float:
        return instability(self.raw_result)

    def per_class(self) -> Dict[str, Tuple[float, float]]:
        """class -> (jpeg instability, raw instability), Fig. 8b."""
        jpeg = per_class_instability(self.jpeg_result)
        raw = per_class_instability(self.raw_result)
        return {cls: (jpeg[cls], raw.get(cls, 0.0)) for cls in jpeg}

    def accuracy_table(self) -> Dict[str, float]:
        """Fig. 8c: accuracy per phone per path."""
        out = {}
        for env in self.jpeg_result.environments():
            out[f"{env}/jpeg"] = accuracy(self.jpeg_result.for_environment(env))
        for env in self.raw_result.environments():
            out[f"{env}/raw"] = accuracy(self.raw_result.for_environment(env))
        return out

    def relative_improvement(self) -> float:
        """Fractional instability reduction from going raw (~11.5% in paper)."""
        jpeg = self.instability_jpeg()
        if jpeg == 0:
            return 0.0
        return (jpeg - self.instability_raw()) / jpeg


class RawVsJpegExperiment:
    """§9.2 / Fig. 8: each phone shoots both JPEG and raw DNG.

    The raw arm converts every DNG with the *same* software ISP on both
    phones, eliminating ISP and codec differences; the JPEG arm is each
    phone's own pipeline (forced to JPEG so both arms share a format
    count). Only the two raw-capable phones participate, as in the paper.
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        seed: int = 0,
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
        phones: Optional[Sequence[DeviceProfile]] = None,
        fleet_size: Optional[int] = None,
    ) -> None:
        self.runtime = DeviceRuntime(resolve_model(model), batch_size=INFERENCE_BATCH)
        self.seed = seed
        self.conversion_isp_name = "imagemagick"
        self.cache = cache
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)
        self.profiles = _resolve_profiles(
            phones, fleet_size, seed, raw_capable_only=True
        )
        if not self.profiles:
            raise ValueError("no raw-capable phones supplied")

    def run(
        self, per_class: int = 8, angles: Sequence[float] = (0.0,)
    ) -> RawVsJpegOutcome:
        profiles = self.profiles
        dataset = build_dataset(per_class=per_class, seed=self.seed)
        rig = CaptureRig(
            screen=Screen(seed=self.seed), angles=angles, cache=self.cache
        )
        displayed = rig.present(list(dataset))

        # One unit per exposure; each unit develops both arms from the
        # *same* raw frame, the §9.2 controlled comparison.
        units = [
            CaptureUnit(
                kind="raw_vs_jpeg",
                profile=profile,
                radiance=shown.radiance.pixels,
                entropy=unit_entropy(self.seed, profile.name, shown.image_id),
                options={
                    "conversion_isp": self.conversion_isp_name,
                    "quality": profile.save_quality,
                },
            )
            for profile in profiles
            for shown in displayed
        ]
        payloads = self.executor.run(units)

        jpeg_result = ExperimentResult([], name="raw_vs_jpeg/jpeg")
        raw_result = ExperimentResult([], name="raw_vs_jpeg/raw")
        per_phone = len(displayed)
        for p, profile in enumerate(profiles):
            chunk = payloads[p * per_phone : (p + 1) * per_phone]
            for arm, result in (
                ("jpeg_pixels", jpeg_result),
                ("raw_pixels", raw_result),
            ):
                images = [ImageBuffer(payload[arm]) for payload in chunk]
                predictions = self.runtime.predict(images)
                result.extend(
                    make_record(pred, shown, environment=profile.name)
                    for pred, shown in zip(predictions, displayed)
                )
        return RawVsJpegOutcome(jpeg_result=jpeg_result, raw_result=raw_result)


# ======================================================================
# §9.3 — top-k task simplification
# ======================================================================
def topk_comparison(result: ExperimentResult, k: int = 3) -> Dict[str, float]:
    """Fig. 9: accuracy and instability at top-1 vs top-k.

    Re-scores an existing experiment's records — no new captures, exactly
    like the paper reuses its end-to-end setup.
    """
    if k < 2:
        raise ValueError("k must be >= 2 to be a simplification")
    return {
        "accuracy_top1": accuracy(result, k=1),
        f"accuracy_top{k}": accuracy(result, k=k),
        "instability_top1": instability(result, k=1),
        f"instability_top{k}": instability(result, k=k),
    }


# ======================================================================
# Fig. 1 — repeat shots on one phone
# ======================================================================
@dataclass(frozen=True)
class RepeatShotOutcome:
    """Two back-to-back captures of the same displayed image."""

    first_label: int
    second_label: int
    first_confidence: float
    second_confidence: float
    true_label: int
    diff: PixelDiffStats

    @property
    def diverged(self) -> bool:
        return self.first_label != self.second_label


def repeat_shot_demo(
    profile: Optional[DeviceProfile] = None,
    model: Optional[Model] = None,
    seed: int = 0,
    max_scenes: int = 64,
    pairs_per_scene: int = 3,
) -> RepeatShotOutcome:
    """Reproduce Fig. 1: find a scene where two shots seconds apart diverge.

    Takes ``pairs_per_scene`` repeat-capture pairs per scene (identical
    display, fresh sensor noise) until a pair yields different top-1
    labels; returns the last pair examined if none diverges (the stats
    still show the sub-5% pixel difference the paper highlights).
    """
    profile = profile or capture_fleet()[0]  # Galaxy S10, as in the paper
    phone = Phone(profile)
    runtime = DeviceRuntime(resolve_model(model))
    dataset = build_dataset(per_class=max(1, max_scenes // 5), seed=seed)
    rig = CaptureRig(screen=Screen(seed=seed), angles=(0.0,))
    rng = derive_rng(seed, profile.name, "repeat_shot")

    outcome = None
    for shown in rig.present(list(dataset))[:max_scenes]:
        for _ in range(pairs_per_scene):
            img_a = decode_any(phone.photograph(shown.radiance, rng))
            img_b = decode_any(phone.photograph(shown.radiance, rng))
            pred_a, pred_b = runtime.predict([img_a, img_b])
            outcome = RepeatShotOutcome(
                first_label=pred_a.top1,
                second_label=pred_b.top1,
                first_confidence=pred_a.confidence,
                second_confidence=pred_b.confidence,
                true_label=shown.item.label,
                diff=pixel_diff_map(img_a.pixels, img_b.pixels, threshold=0.05),
            )
            if outcome.diverged:
                return outcome
    assert outcome is not None
    return outcome
