"""Experiment harness: the controlled rig and the paper's experiments."""

from .common import SIZE_SCALE_TO_12MP, scaled_mb
from .experiments import (
    CompressionFormatExperiment,
    CompressionQualityExperiment,
    CompressionResult,
    EndToEndExperiment,
    ISPComparisonExperiment,
    RawCaptureBank,
    RawVsJpegExperiment,
    RepeatShotOutcome,
    repeat_shot_demo,
    topk_comparison,
)
from .extensions import LensVariationExperiment, LightingVariationExperiment
from .firebase import FirebaseOutcome, FirebaseTestLab
from .rig import DEFAULT_ANGLES, CaptureRig, DisplayedImage

__all__ = [
    "CaptureRig",
    "CompressionFormatExperiment",
    "CompressionQualityExperiment",
    "CompressionResult",
    "DEFAULT_ANGLES",
    "DisplayedImage",
    "EndToEndExperiment",
    "FirebaseOutcome",
    "FirebaseTestLab",
    "ISPComparisonExperiment",
    "LensVariationExperiment",
    "LightingVariationExperiment",
    "RawCaptureBank",
    "RawVsJpegExperiment",
    "RepeatShotOutcome",
    "SIZE_SCALE_TO_12MP",
    "repeat_shot_demo",
    "scaled_mb",
    "topk_comparison",
]
