"""Extension experiments: the paper's future-work axes (§11).

The paper scopes out "variations in cameras and lenses, lighting and
visibility conditions" as future sources of instability. The simulator
makes them measurable today:

* :class:`LightingVariationExperiment` — the same objects re-staged under
  different studio brightness / color temperature, photographed by one
  phone; instability across lighting levels.
* :class:`LensVariationExperiment` — unit-to-unit optics variation: the
  *same phone model* with slightly different lens builds (blur /
  vignetting tolerances), as happens across manufacturing batches;
  instability across units.

Both reuse the §2.2 metric unchanged: an "environment" is just whatever
varies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from ..core.records import ExperimentResult
from ..devices.profiles import DeviceProfile, capture_fleet
from ..devices.runtime import DeviceRuntime
from ..imaging.image import ImageBuffer
from ..nn.model import Model
from ..runner.cache import CaptureCache
from ..runner.executor import FleetExecutor
from ..runner.seeds import unit_entropy
from ..runner.units import CaptureUnit
from ..scenes.dataset import build_dataset
from ..scenes.screen import Screen
from .common import make_record, resolve_model
from .rig import CaptureRig

__all__ = ["LightingVariationExperiment", "LensVariationExperiment"]


class LightingVariationExperiment:
    """Instability across lighting conditions, one phone (§11 future work)."""

    #: (label, brightness multiplier, warmth) staging conditions.
    CONDITIONS = (
        ("dim_warm", 0.75, 0.06),
        ("nominal", 1.0, 0.0),
        ("bright_cool", 1.15, -0.06),
    )

    def __init__(
        self,
        phone: Optional[DeviceProfile] = None,
        model: Optional[Model] = None,
        seed: int = 0,
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
    ) -> None:
        self.profile = phone or capture_fleet()[0]
        self.runtime = DeviceRuntime(resolve_model(model))
        self.seed = seed
        self.cache = cache
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def run(self, per_class: int = 8) -> ExperimentResult:
        dataset = build_dataset(per_class=per_class, seed=self.seed)
        screen = Screen(seed=self.seed)
        units: List[CaptureUnit] = []
        shown_by_condition = []
        for label, brightness, warmth in self.CONDITIONS:
            relit = [
                replace(item, scene=replace(item.scene, brightness=brightness, warmth=warmth))
                for item in dataset
            ]
            rig = CaptureRig(screen=screen, angles=(0.0,), cache=self.cache)
            displayed = rig.present(relit)
            shown_by_condition.append(displayed)
            units.extend(
                CaptureUnit(
                    kind="photograph",
                    profile=self.profile,
                    radiance=shown.radiance.pixels,
                    entropy=unit_entropy(self.seed, label, shown.image_id),
                )
                for shown in displayed
            )
        payloads = self.executor.run(units)

        result = ExperimentResult([], name="lighting_variation")
        start = 0
        for (label, _, _), displayed in zip(self.CONDITIONS, shown_by_condition):
            chunk = payloads[start : start + len(displayed)]
            start += len(displayed)
            images = [ImageBuffer(payload["pixels"]) for payload in chunk]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=label, image_id=i)
                for i, (pred, shown) in enumerate(zip(predictions, displayed))
            )
        return result


class LensVariationExperiment:
    """Instability across manufacturing units of one phone model.

    Models the paper's observation (§6, citing Rameshwar 2019) that units
    of the *same phone model* can differ in their imaging components: each
    simulated unit perturbs the nominal lens (blur, vignetting) within
    plausible assembly tolerances.
    """

    def __init__(
        self,
        phone: Optional[DeviceProfile] = None,
        model: Optional[Model] = None,
        units: int = 4,
        blur_tolerance: float = 0.15,
        vignette_tolerance: float = 0.03,
        seed: int = 0,
        workers: int = 0,
        cache: Optional[CaptureCache] = None,
        executor: Optional[FleetExecutor] = None,
    ) -> None:
        if units < 2:
            raise ValueError("need at least two units to compare")
        self.profile = phone or capture_fleet()[0]
        self.runtime = DeviceRuntime(resolve_model(model))
        self.units = units
        self.blur_tolerance = blur_tolerance
        self.vignette_tolerance = vignette_tolerance
        self.seed = seed
        self.cache = cache
        self.executor = executor or FleetExecutor(workers=workers, cache=cache)

    def _unit_profiles(self) -> Sequence[DeviceProfile]:
        rng = np.random.default_rng(self.seed + 77)
        base = self.profile
        units = []
        for i in range(self.units):
            lens = base.sensor.lens
            new_lens = replace(
                lens,
                blur_sigma=max(
                    0.1, lens.blur_sigma + float(rng.uniform(-1, 1)) * self.blur_tolerance
                ),
                vignetting=float(
                    np.clip(
                        lens.vignetting
                        + rng.uniform(-1, 1) * self.vignette_tolerance,
                        0.0,
                        0.9,
                    )
                ),
            )
            sensor = replace(
                base.sensor,
                lens=new_lens,
                noise=replace(base.sensor.noise, seed=base.sensor.noise.seed + i),
            )
            units.append(replace(base, name=f"{base.name}#unit{i}", sensor=sensor))
        return units

    def run(self, per_class: int = 8) -> ExperimentResult:
        dataset = build_dataset(per_class=per_class, seed=self.seed)
        rig = CaptureRig(
            screen=Screen(seed=self.seed), angles=(0.0,), cache=self.cache
        )
        displayed = rig.present(list(dataset))
        profiles = list(self._unit_profiles())
        work = [
            CaptureUnit(
                kind="photograph",
                profile=profile,
                radiance=shown.radiance.pixels,
                entropy=unit_entropy(self.seed, profile.name, shown.image_id),
            )
            for profile in profiles
            for shown in displayed
        ]
        payloads = self.executor.run(work)

        result = ExperimentResult([], name="lens_variation")
        per_unit = len(displayed)
        for p, profile in enumerate(profiles):
            chunk = payloads[p * per_unit : (p + 1) * per_unit]
            images = [ImageBuffer(payload["pixels"]) for payload in chunk]
            predictions = self.runtime.predict(images)
            result.extend(
                make_record(pred, shown, environment=profile.name)
                for pred, shown in zip(predictions, displayed)
            )
        return result
