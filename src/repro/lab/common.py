"""Shared plumbing for the lab experiments."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.records import PredictionRecord
from ..devices.runtime import DeviceRuntime, Prediction
from ..imaging.image import ImageBuffer
from ..nn.model import Model
from ..nn.pretrained import load_pretrained
from ..scenes.objects import ALL_CLASSES
from .rig import DisplayedImage

__all__ = ["make_record", "resolve_model", "SIZE_SCALE_TO_12MP", "scaled_mb"]

#: Our working resolution is 96x96; the paper's phones shoot ~12 MP.
#: File sizes reported next to the paper's tables are scaled by the pixel
#: count ratio so the magnitudes are comparable (documented in DESIGN.md).
SIZE_SCALE_TO_12MP = 12_000_000 / (96 * 96)


def scaled_mb(size_bytes: float) -> float:
    """Extrapolate a 96x96 file size to a 12 MP-equivalent megabyte count."""
    return size_bytes * SIZE_SCALE_TO_12MP / 1_000_000


def resolve_model(model: Optional[Model]) -> Model:
    """Use the supplied model or fall back to the shared pretrained base."""
    return model if model is not None else load_pretrained()


def make_record(
    prediction: Prediction,
    displayed: DisplayedImage,
    environment: str,
    image_id: Optional[int] = None,
    repeat: int = 0,
) -> PredictionRecord:
    """Build a :class:`PredictionRecord` from a runtime prediction."""
    item = displayed.item
    return PredictionRecord(
        environment=environment,
        image_id=displayed.image_id if image_id is None else image_id,
        true_label=item.label,
        predicted_label=prediction.top1,
        confidence=prediction.confidence,
        class_name=item.class_name,
        ranking=prediction.ranking,
        angle=displayed.angle,
        metadata={
            "object_key": item.object_id,
            "repeat": repeat,
            "probabilities": prediction.probabilities,
            "predicted_class": ALL_CLASSES[prediction.top1],
        },
    )


def predict_images(
    runtime: DeviceRuntime, images: Sequence[ImageBuffer]
) -> Sequence[Prediction]:
    return runtime.predict(list(images))
