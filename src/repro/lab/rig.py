"""The controlled capture rig (paper §3.2, Fig. 2a).

The rig holds a monitor and a camera mount in a light-controlled room.
For each displayed image it produces, per angle, the *radiance field*
arriving at the mounted phones — the synchronized-app machinery of the
paper collapses to deterministic function composition here. Every phone
pointed at the rig for the same (scene, angle) sees the exact same
radiance; divergence downstream is attributable to the devices, which is
the experimental-control property the paper's physical rig was built for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..imaging.image import ImageBuffer
from ..imaging.ops import perspective_shift
from ..runner.cache import CaptureCache, fingerprint
from ..scenes.dataset import LabeledScene
from ..scenes.screen import Screen

__all__ = ["CaptureRig", "DEFAULT_ANGLES", "DisplayedImage"]

#: The paper's five capture angles: left, center-left, center,
#: center-right, right (degrees of horizontal offset from the screen
#: normal).
DEFAULT_ANGLES: Tuple[float, ...] = (-30.0, -15.0, 0.0, 15.0, 30.0)


@dataclass(frozen=True)
class DisplayedImage:
    """One (scene, angle) presentation on the rig.

    ``image_id`` uniquely identifies the presentation: phones
    photographing the same ``DisplayedImage`` see nearly identical input,
    which is the unit the instability metric compares.
    """

    image_id: int
    radiance: ImageBuffer
    item: LabeledScene
    angle: float


class CaptureRig:
    """The monitor + mount assembly."""

    def __init__(
        self,
        screen: Screen | None = None,
        angles: Sequence[float] = DEFAULT_ANGLES,
        render_size: int = 96,
        cache: Optional[CaptureCache] = None,
    ) -> None:
        if not angles:
            raise ValueError("rig needs at least one angle")
        self.screen = screen or Screen()
        self.angles = tuple(float(a) for a in angles)
        self.render_size = render_size
        #: Shared content-addressed cache (persists radiance across runs
        #: and processes); the id-keyed dict below is the per-instance
        #: fast path for repeated presentations within one run.
        self.cache = cache
        self._radiance_cache: Dict[int, ImageBuffer] = {}

    def _render_base(self, item: LabeledScene) -> ImageBuffer:
        """Render + display one scene, through the shared cache if any."""
        if self.cache is None:
            with obs.span("rig.render"):
                rendered = item.scene.render(self.render_size, self.render_size)
                base = self.screen.display(rendered)
            obs.count("rig.render.miss")
            return base
        key = fingerprint(
            (
                "radiance-v1",
                item.scene,
                self.screen.profile,
                self.screen.seed,
                self.render_size,
            )
        )
        payload = self.cache.get(key)
        if payload is not None:
            obs.count("rig.render.hit")
            return ImageBuffer(payload["pixels"])
        with obs.span("rig.render"):
            rendered = item.scene.render(self.render_size, self.render_size)
            base = self.screen.display(rendered)
        obs.count("rig.render.miss")
        self.cache.put(key, {"pixels": base.pixels})
        return base

    def present(self, items: Sequence[LabeledScene]) -> List[DisplayedImage]:
        """Display every scene at every angle; returns all presentations.

        Rendering and screen simulation are deterministic, so calling
        ``present`` twice yields identical radiance — the rig's images do
        not change between phones (only capture noise does).
        """
        displayed: List[DisplayedImage] = []
        image_id = 0
        for item in items:
            key = id(item)
            base = self._radiance_cache.get(key)
            if base is None:
                base = self._render_base(item)
                self._radiance_cache[key] = base
            for angle in self.angles:
                if angle == 0.0:
                    radiance = base
                else:
                    radiance = ImageBuffer(perspective_shift(base.pixels, angle))
                displayed.append(
                    DisplayedImage(
                        image_id=image_id, radiance=radiance, item=item, angle=angle
                    )
                )
                image_id += 1
        return displayed
