"""The OS/processor experiment (paper §7, Table 5).

The paper side-steps cameras entirely for this axis: a fixed set of
image *files* is pushed to five phones with different SoCs via Firebase
Test Lab, an app decodes and classifies them on-device, and predictions
are compared. The only per-device code in the loop is the OS image
decoder and the inference hardware.

Our simulation mirrors that: :class:`FirebaseTestLab` builds a fixed
photo set once (the stand-in for the Caltech101 subset), then each
device profile decodes the same bytes with *its* OS decoder family and
runs the same model. The paper's findings emerge mechanistically —

* JPEG: the two vendor-decoder phones (Huawei, Xiaomi) produce pixel
  buffers with different content hashes than the mainline three, causing
  a small instability (paper: 0.64%);
* PNG: all five decode bit-identically, zero instability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..codecs.registry import get_codec
from ..core.instability import instability
from ..core.records import ExperimentResult, PredictionRecord
from ..devices.os_sim import content_hash
from ..devices.profiles import DeviceProfile, firebase_fleet
from ..devices.runtime import DeviceRuntime
from ..nn.model import Model
from ..scenes.dataset import build_dataset
from ..scenes.objects import ALL_CLASSES
from ..scenes.screen import Screen
from .common import resolve_model
from .rig import CaptureRig

__all__ = ["FirebaseTestLab", "FirebaseOutcome", "build_photo_set"]


def build_photo_set(
    num_photos: int = 40,
    image_format: str = "jpeg",
    quality: int = 85,
    seed: int = 0,
) -> List[dict]:
    """Encode the fixed photo corpus once, off-device.

    Photos are rendered scenes passed through the screen (so they have
    photographic texture) and encoded by the *experimenter* with the
    reference encoder — every device receives byte-identical files. The
    §7 experiment and the fleet drift study share this corpus builder.
    """
    per_class = max(1, -(-num_photos // 5))
    dataset = build_dataset(per_class=per_class, seed=seed)
    rig = CaptureRig(screen=Screen(seed=seed), angles=(0.0,))
    codec = get_codec(image_format)
    photos = []
    for shown in rig.present(list(dataset))[:num_photos]:
        img = shown.radiance
        if codec.default_quality is None:
            data = codec.encode(img)
        else:
            data = codec.encode(img, quality=quality)
        photos.append(
            {
                "bytes": data,
                "image_id": shown.image_id,
                "label": shown.item.label,
                "class_name": shown.item.class_name,
            }
        )
    return photos


@dataclass
class FirebaseOutcome:
    """Predictions plus the per-device decode hashes of §7."""

    result: ExperimentResult
    #: device -> list of content hashes, one per photo (decode diagnostics).
    hashes: Dict[str, List[str]]
    image_format: str

    def instability(self) -> float:
        return instability(self.result)

    def hash_groups(self) -> Dict[str, List[str]]:
        """Group devices whose decoded pixels are identical.

        Returns ``{representative_hash_signature: [device, ...]}`` — the
        paper found exactly two groups on JPEG and one on PNG.
        """
        groups: Dict[str, List[str]] = {}
        for device, hash_list in self.hashes.items():
            signature = "|".join(hash_list)
            groups.setdefault(signature, []).append(device)
        return {f"group{i}": sorted(devs) for i, devs in enumerate(groups.values())}


class FirebaseTestLab:
    """Run the fixed-photo-set experiment across a device fleet."""

    def __init__(
        self,
        devices: Optional[Sequence[DeviceProfile]] = None,
        model: Optional[Model] = None,
        seed: int = 0,
    ) -> None:
        self.devices = list(devices) if devices is not None else firebase_fleet()
        self.runtime = DeviceRuntime(resolve_model(model))
        self.seed = seed

    def build_photo_set(
        self, num_photos: int = 40, image_format: str = "jpeg", quality: int = 85
    ) -> List[dict]:
        """The module-level :func:`build_photo_set`, at this lab's seed."""
        return build_photo_set(num_photos, image_format, quality, seed=self.seed)

    def run(
        self, num_photos: int = 40, image_format: str = "jpeg", quality: int = 85
    ) -> FirebaseOutcome:
        photos = self.build_photo_set(num_photos, image_format, quality)
        result = ExperimentResult([], name=f"firebase/{image_format}")
        hashes: Dict[str, List[str]] = {}
        for profile in self.devices:
            decoded = [profile.os_decoder.load(p["bytes"]) for p in photos]
            hashes[profile.name] = [content_hash(img) for img in decoded]
            predictions = self.runtime.predict(decoded)
            records = []
            for pred, photo in zip(predictions, photos):
                records.append(
                    PredictionRecord(
                        environment=profile.name,
                        image_id=photo["image_id"],
                        true_label=photo["label"],
                        predicted_label=pred.top1,
                        confidence=pred.confidence,
                        class_name=photo["class_name"],
                        ranking=pred.ranking,
                        metadata={
                            "probabilities": pred.probabilities,
                            "predicted_class": ALL_CLASSES[pred.top1],
                            "soc": profile.soc,
                        },
                    )
                )
            result.extend(records)
        return FirebaseOutcome(result=result, hashes=hashes, image_format=image_format)
