"""repro — reproduction of *Characterizing and Taming Model Instability
Across Edge Devices* (Cidon et al., MLSys 2021).

The package simulates the paper's entire measurement substrate — synthetic
scenes, camera sensors, per-vendor ISPs, compression codecs, phone device
models, and a NumPy CNN — and implements the paper's contribution on top of
it: the *instability* metric, the end-to-end characterization experiments,
and the three mitigation strategies (stability training, raw-image
inference, top-k task simplification).

Quick start::

    from repro.lab import EndToEndExperiment
    from repro.devices import capture_fleet

    experiment = EndToEndExperiment(phones=capture_fleet(), seed=0)
    result = experiment.run(num_objects=40)
    print(result.summary())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
