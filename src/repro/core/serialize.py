"""JSON serialization for experiment results.

A measurement study's raw output is its prediction records; persisting
them lets the analyses (instability, confidence splits, PR curves) be
recomputed later or shared without re-running captures. The format is
plain JSON — one object with a ``records`` list — so results can be
diffed, versioned, and consumed outside Python.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .records import ExperimentResult, PredictionRecord

__all__ = ["result_to_json", "result_from_json", "save_result", "load_result"]

_FORMAT_VERSION = 1


def result_to_json(result: ExperimentResult) -> str:
    """Serialize a result to a JSON string."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": result.name,
        "records": [
            {
                "environment": r.environment,
                "image_id": r.image_id,
                "true_label": r.true_label,
                "predicted_label": r.predicted_label,
                "confidence": r.confidence,
                "class_name": r.class_name,
                "ranking": list(r.ranking),
                "angle": r.angle,
                "metadata": _jsonable(r.metadata),
                "acceptable_labels": list(r.acceptable_labels),
            }
            for r in result
        ],
    }
    return json.dumps(payload)


def _jsonable(value):
    """Coerce metadata values to JSON-representable types.

    Dict keys are stringified and sorted so serialized output is
    byte-identical no matter how (or in what order) the metadata dict
    was assembled.
    """
    if isinstance(value, dict):
        return {
            str(k): _jsonable(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    # NumPy scalars and anything else numeric-like.
    try:
        return value.item()  # type: ignore[union-attr]
    except AttributeError:
        return str(value)


def result_from_json(text: str) -> ExperimentResult:
    """Deserialize a result produced by :func:`result_to_json`."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    records = [
        PredictionRecord(
            environment=r["environment"],
            image_id=int(r["image_id"]),
            true_label=int(r["true_label"]),
            predicted_label=int(r["predicted_label"]),
            confidence=float(r["confidence"]),
            class_name=r["class_name"],
            ranking=tuple(int(c) for c in r["ranking"]),
            angle=r["angle"],
            metadata=r.get("metadata", {}),
            acceptable_labels=tuple(int(c) for c in r.get("acceptable_labels", [])),
        )
        for r in payload["records"]
    ]
    return ExperimentResult(records, name=payload.get("name", ""))


def save_result(result: ExperimentResult, path: Union[str, Path]) -> None:
    """Write a result to disk as JSON."""
    Path(path).write_text(result_to_json(result))


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    return result_from_json(Path(path).read_text())
