"""The instability metric (the paper's §2.2 definition) and companions.

A displayed image is *unstable* when, across the environments that saw
it, at least one environment classified it correctly and at least one
classified it clearly incorrectly. Images on which *every* environment
is wrong are not counted as unstable — the paper argues one wrong answer
cannot be called "more incorrect" than another — and images seen by only
one environment are excluded from the denominator entirely.

``instability(result)`` therefore returns::

    # unstable images / # images observed in >= 2 environments

with top-k generalization via ``k`` (used by the §9.3 task-simplification
mitigation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .records import ExperimentResult, PredictionRecord

__all__ = [
    "accuracy",
    "instability",
    "per_class_instability",
    "per_class_accuracy",
    "per_environment_accuracy",
    "unstable_image_ids",
    "image_stability_breakdown",
]


def accuracy(result: ExperimentResult, k: int = 1) -> float:
    """Fraction of records whose top-k contains the true label."""
    if not len(result):
        raise ValueError("empty result")
    return float(np.mean([r.is_correct(k) for r in result]))


def _image_flags(
    records: List[PredictionRecord], k: int
) -> Optional[Tuple[bool, bool]]:
    """(any_correct, any_incorrect) for one image, or None if < 2 envs."""
    envs = {r.environment for r in records}
    if len(envs) < 2:
        return None
    correct = [r.is_correct(k) for r in records]
    return any(correct), not all(correct)


def unstable_image_ids(result: ExperimentResult, k: int = 1) -> List[int]:
    """Ids of images with at least one correct and one incorrect prediction."""
    ids = []
    for image_id, records in result.by_image().items():
        flags = _image_flags(records, k)
        if flags is not None and flags[0] and flags[1]:
            ids.append(image_id)
    return sorted(ids)


def instability(result: ExperimentResult, k: int = 1) -> float:
    """The paper's headline metric; see module docstring."""
    n_unstable = 0
    n_eligible = 0
    for records in result.by_image().values():
        flags = _image_flags(records, k)
        if flags is None:
            continue
        n_eligible += 1
        if flags[0] and flags[1]:
            n_unstable += 1
    if n_eligible == 0:
        raise ValueError(
            "no image was observed in two or more environments; "
            "instability is undefined"
        )
    return n_unstable / n_eligible


def image_stability_breakdown(
    result: ExperimentResult, k: int = 1
) -> Dict[str, List[int]]:
    """Partition image ids into stable-correct / stable-incorrect / unstable.

    Backs the paper's Figure 4 confidence analysis.
    """
    out: Dict[str, List[int]] = {
        "stable_correct": [],
        "stable_incorrect": [],
        "unstable": [],
    }
    for image_id, records in result.by_image().items():
        flags = _image_flags(records, k)
        if flags is None:
            continue
        any_correct, any_incorrect = flags
        if any_correct and any_incorrect:
            out["unstable"].append(image_id)
        elif any_correct:
            out["stable_correct"].append(image_id)
        else:
            out["stable_incorrect"].append(image_id)
    for ids in out.values():
        ids.sort()
    return out


def per_class_instability(result: ExperimentResult, k: int = 1) -> Dict[str, float]:
    """Instability computed separately per ground-truth class (Fig. 3b)."""
    return {
        cls: instability(result.for_class(cls), k) for cls in result.classes()
    }


def per_class_accuracy(
    result: ExperimentResult, k: int = 1
) -> Dict[str, float]:
    return {cls: accuracy(result.for_class(cls), k) for cls in result.classes()}


def per_environment_accuracy(
    result: ExperimentResult, k: int = 1
) -> Dict[str, float]:
    """Accuracy per environment (Fig. 3a: accuracy by phone model)."""
    return {
        env: accuracy(result.for_environment(env), k)
        for env in result.environments()
    }
