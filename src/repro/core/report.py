"""Plain-text report formatting for experiment outputs.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_percent", "format_series"]


def format_percent(value: float, digits: int = 2) -> str:
    """Render a fraction as a percentage string, e.g. 0.0766 -> '7.66%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Dict[object, float], percent: bool = True) -> str:
    """Render a keyed series (e.g. per-class instability) as lines.

    Keys are emitted in sorted (stringified) order so the rendered
    report is independent of how the series dict was built.
    """
    lines: List[str] = []
    for key, value in sorted(series.items(), key=lambda kv: str(kv[0])):
        rendered = format_percent(value) if percent else f"{value:.4f}"
        lines.append(f"  {key}: {rendered}")
    return "\n".join(lines)
