"""Prediction records: the data model every experiment produces.

A :class:`PredictionRecord` is one inference outcome of one *displayed
image* (an object staged on the rig's screen, at one angle) in one
*environment* (a phone model, a compression setting, an ISP, an OS — the
paper's §2.2 notion of environment). Experiments return an
:class:`ExperimentResult`, a queryable collection of records, which the
metric layer (:mod:`repro.core.instability`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PredictionRecord", "ExperimentResult"]


@dataclass(frozen=True)
class PredictionRecord:
    """One model prediction in one environment.

    Attributes
    ----------
    environment:
        The environment label — phone name, codec setting, ISP name...
    image_id:
        Identifies the underlying displayed image; records sharing an
        ``image_id`` are predictions on *nearly identical input* and are
        what the instability metric compares across environments.
    true_label / predicted_label:
        Integer class ids; ``class_name`` carries the readable label.
    confidence:
        The model's probability for its top prediction.
    ranking:
        All class ids sorted by descending probability (for top-k).
    angle:
        The rig angle in degrees, when applicable.
    """

    environment: str
    image_id: int
    true_label: int
    predicted_label: int
    confidence: float
    class_name: str
    ranking: Tuple[int, ...] = ()
    angle: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Labels accepted as correct besides ``true_label``. The paper's §3.2
    #: uses this for overlapping ImageNet classes ("wine bottle" and
    #: "red wine" both count for a bottle of red).
    acceptable_labels: Tuple[int, ...] = ()

    def is_correct(self, k: int = 1) -> bool:
        """Is the true label (or an acceptable alias) within the top-k?"""
        if k <= 0:
            raise ValueError("k must be positive")
        accepted = {self.true_label, *self.acceptable_labels}
        if k == 1:
            return self.predicted_label in accepted
        if not self.ranking:
            raise ValueError("record has no ranking; cannot evaluate top-k")
        return bool(accepted & set(self.ranking[:k]))


class ExperimentResult:
    """An ordered, queryable collection of prediction records."""

    def __init__(self, records: Sequence[PredictionRecord], name: str = "") -> None:
        self.records: List[PredictionRecord] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def extend(self, records: Iterable[PredictionRecord]) -> None:
        self.records.extend(records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def environments(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.environment, None)
        return list(seen)

    def classes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.class_name, None)
        return list(seen)

    def for_environment(self, environment: str) -> "ExperimentResult":
        return ExperimentResult(
            [r for r in self.records if r.environment == environment],
            name=f"{self.name}/{environment}",
        )

    def for_class(self, class_name: str) -> "ExperimentResult":
        return ExperimentResult(
            [r for r in self.records if r.class_name == class_name],
            name=f"{self.name}/{class_name}",
        )

    def by_image(self) -> Dict[int, List[PredictionRecord]]:
        """Group records by displayed image."""
        groups: Dict[int, List[PredictionRecord]] = {}
        for r in self.records:
            groups.setdefault(r.image_id, []).append(r)
        return groups

    def confidences(self) -> np.ndarray:
        return np.array([r.confidence for r in self.records], dtype=np.float64)

    def filter(self, predicate) -> "ExperimentResult":
        return ExperimentResult(
            [r for r in self.records if predicate(r)], name=self.name
        )

    def merged_with(self, other: "ExperimentResult") -> "ExperimentResult":
        return ExperimentResult(
            self.records + other.records, name=self.name or other.name
        )
