"""Precision-recall curves (paper Fig. 7).

One-vs-rest curves per class from prediction confidences, plus a
micro-averaged curve used to compare the stability-training schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .records import ExperimentResult

__all__ = ["PRCurve", "precision_recall", "micro_average_pr", "average_precision"]


@dataclass(frozen=True)
class PRCurve:
    """A precision-recall curve as parallel arrays, high-threshold first."""

    precision: np.ndarray
    recall: np.ndarray
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.precision) == len(self.recall) == len(self.thresholds)):
            raise ValueError("PR arrays must be the same length")


def _pr_from_scores(scores: np.ndarray, positives: np.ndarray) -> PRCurve:
    """Build a PR curve from per-example scores and boolean relevance."""
    if scores.size == 0:
        raise ValueError("no scores")
    order = np.argsort(-scores, kind="stable")
    sorted_pos = positives[order].astype(np.float64)
    tp = np.cumsum(sorted_pos)
    fp = np.cumsum(1.0 - sorted_pos)
    total_pos = sorted_pos.sum()
    if total_pos == 0:
        raise ValueError("no positive examples")
    precision = tp / np.maximum(tp + fp, 1e-12)
    recall = tp / total_pos
    return PRCurve(
        precision=precision, recall=recall, thresholds=scores[order]
    )


def precision_recall(result: ExperimentResult, class_index: int) -> PRCurve:
    """One-vs-rest PR curve for one class (by integer label).

    Records that carry full class probabilities (``metadata["probabilities"]``,
    as every experiment in :mod:`repro.lab` stores) are scored with
    ``P(class | x)``. Records without them fall back to the top-1
    confidence when the class was predicted and 0 otherwise.
    """
    records = list(result)
    if not records:
        raise ValueError("empty result")
    scores = []
    positives = []
    for r in records:
        proba = r.metadata.get("probabilities")
        if proba is not None:
            scores.append(float(proba[class_index]))
        else:
            scores.append(r.confidence if r.predicted_label == class_index else 0.0)
        positives.append(r.true_label == class_index)
    return _pr_from_scores(np.array(scores), np.array(positives))


def micro_average_pr(
    results_proba: np.ndarray, labels: np.ndarray
) -> PRCurve:
    """Micro-averaged PR over all (example, class) decisions.

    ``results_proba`` is ``(N, C)`` class probabilities; ``labels`` the
    integer ground truth. Every (example, class) pair becomes one scored
    decision — the standard micro-averaging used for multi-class PR.
    """
    n, c = results_proba.shape
    if labels.shape != (n,):
        raise ValueError("labels shape mismatch")
    scores = results_proba.ravel()
    positives = np.zeros((n, c), dtype=bool)
    positives[np.arange(n), labels] = True
    return _pr_from_scores(scores, positives.ravel())


def average_precision(curve: PRCurve) -> float:
    """Area under the PR curve via the step-wise (rectangular) rule."""
    recall = np.concatenate([[0.0], curve.recall])
    return float(np.sum((recall[1:] - recall[:-1]) * curve.precision))
