"""Secondary analyses over experiment results.

These back the paper's figure panels that slice instability by angle
(Fig. 3c), by repeat shots within a phone (Fig. 3d), and by model
confidence (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .instability import image_stability_breakdown, instability
from .records import ExperimentResult, PredictionRecord

__all__ = [
    "per_angle_instability",
    "within_environment_instability",
    "ConfidenceSplit",
    "confidence_analysis",
]


def per_angle_instability(result: ExperimentResult, k: int = 1) -> Dict[float, float]:
    """Cross-environment instability computed separately per rig angle.

    Records must carry ``angle``; images are compared across environments
    *within* the same angle (Fig. 3c).
    """
    angles = sorted({r.angle for r in result if r.angle is not None})
    if not angles:
        raise ValueError("records carry no angle information")
    out: Dict[float, float] = {}
    for angle in angles:
        subset = result.filter(lambda r, a=angle: r.angle == a)
        out[float(angle)] = instability(subset, k)
    return out


def within_environment_instability(
    result: ExperimentResult, k: int = 1
) -> Dict[str, float]:
    """Instability across repeat observations *within* each environment.

    For one phone, the same object photographed at different angles (or
    repeat shots) counts as the set of nearly-identical inputs; divergence
    among them is the phone's self-instability (Fig. 3d). Implemented by
    relabeling each environment's records as pseudo-environments keyed by
    angle/repeat and reusing the cross-environment metric.
    """
    out: Dict[str, float] = {}
    for env in result.environments():
        subset = result.for_environment(env)
        relabeled = [
            PredictionRecord(
                environment=f"{r.angle}/{r.metadata.get('repeat', 0)}",
                image_id=r.metadata.get("object_key", r.image_id),
                true_label=r.true_label,
                predicted_label=r.predicted_label,
                confidence=r.confidence,
                class_name=r.class_name,
                ranking=r.ranking,
                angle=r.angle,
                metadata=r.metadata,
            )
            for r in subset
        ]
        out[env] = instability(ExperimentResult(relabeled), k)
    return out


@dataclass(frozen=True)
class ConfidenceSplit:
    """Confidence distributions split by stability and correctness (Fig. 4)."""

    stable_correct: np.ndarray
    stable_incorrect: np.ndarray
    unstable_correct: np.ndarray
    unstable_incorrect: np.ndarray

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """(mean, std) per group, empty groups reported as (nan, nan)."""
        def stats(arr: np.ndarray) -> Tuple[float, float]:
            if arr.size == 0:
                return (float("nan"), float("nan"))
            return (float(arr.mean()), float(arr.std()))

        return {
            "stable_correct": stats(self.stable_correct),
            "stable_incorrect": stats(self.stable_incorrect),
            "unstable_correct": stats(self.unstable_correct),
            "unstable_incorrect": stats(self.unstable_incorrect),
        }


def confidence_analysis(result: ExperimentResult, k: int = 1) -> ConfidenceSplit:
    """Split prediction confidences by image stability and correctness.

    For stable images all records share correctness, so the stable groups
    collect all their confidences. For unstable images the records are
    divided into the correct and the incorrect side — the paper's Fig. 4b
    compares exactly those two distributions.
    """
    breakdown = image_stability_breakdown(result, k)
    stable_correct_ids = set(breakdown["stable_correct"])
    stable_incorrect_ids = set(breakdown["stable_incorrect"])
    unstable_ids = set(breakdown["unstable"])

    sc: List[float] = []
    si: List[float] = []
    uc: List[float] = []
    ui: List[float] = []
    for r in result:
        if r.image_id in stable_correct_ids:
            sc.append(r.confidence)
        elif r.image_id in stable_incorrect_ids:
            si.append(r.confidence)
        elif r.image_id in unstable_ids:
            (uc if r.is_correct(k) else ui).append(r.confidence)
    return ConfidenceSplit(
        stable_correct=np.array(sc),
        stable_incorrect=np.array(si),
        unstable_correct=np.array(uc),
        unstable_incorrect=np.array(ui),
    )
