"""The paper's contribution: the instability metric and its analyses."""

from .analysis import (
    ConfidenceSplit,
    confidence_analysis,
    per_angle_instability,
    within_environment_instability,
)
from .instability import (
    accuracy,
    image_stability_breakdown,
    instability,
    per_class_accuracy,
    per_class_instability,
    per_environment_accuracy,
    unstable_image_ids,
)
from .pr_curves import PRCurve, average_precision, micro_average_pr, precision_recall
from .records import ExperimentResult, PredictionRecord
from .report import format_percent, format_series, format_table
from .serialize import load_result, result_from_json, result_to_json, save_result

__all__ = [
    "ConfidenceSplit",
    "ExperimentResult",
    "PRCurve",
    "PredictionRecord",
    "accuracy",
    "average_precision",
    "confidence_analysis",
    "format_percent",
    "format_series",
    "format_table",
    "image_stability_breakdown",
    "instability",
    "load_result",
    "micro_average_pr",
    "per_angle_instability",
    "per_class_accuracy",
    "per_class_instability",
    "per_environment_accuracy",
    "precision_recall",
    "result_from_json",
    "result_to_json",
    "save_result",
    "unstable_image_ids",
    "within_environment_instability",
]
