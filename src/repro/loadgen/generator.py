"""Seeded open-loop load schedule generation.

The schedule — who asks for what, when — is built *up front* from a
seed, before any network traffic: exponential inter-arrival gaps at the
target rate (a Poisson arrival process, the standard open-loop model)
and uniform device/scene/repeat coordinates, both from
:func:`~repro.runner.seeds.derive_rng` streams. Two runs with equal
``(seed, rate, count, devices, scenes, repeats)`` therefore issue the
byte-identical request sequence — which is what lets a drained service
run be replayed against :meth:`IngestService.serial_reference` and
compared bit for bit, and what makes ``BENCH_serve.json`` numbers
comparable across PRs.

Open-loop means offered load never adapts to service latency: requests
fire on schedule whether or not earlier ones have been answered. That is
deliberate — it is the only way to actually observe shedding, because a
closed-loop client slows down with the server and can never overload it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..runner.seeds import derive_rng

__all__ = ["ScheduledRequest", "build_schedule"]


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned request: fire at ``at_s`` (seconds from run start)."""

    request_id: int
    at_s: float
    device: int
    scene: int
    repeat: int


def build_schedule(
    count: int,
    rate: float,
    devices: int,
    scenes: int,
    seed: int = 0,
    repeats: int = 1,
) -> List[ScheduledRequest]:
    """Build a deterministic open-loop schedule of ``count`` requests.

    Parameters
    ----------
    count:
        Total requests to plan.
    rate:
        Mean offered rate in requests/second (Poisson arrivals: the
        inter-arrival gaps are exponential with mean ``1/rate``).
    devices, scenes:
        Coordinate ranges to draw from uniformly — normally the served
        fleet/scene dimensions reported by the server's ``hello``.
    seed:
        Master seed. Arrival times come from the
        ``derive_rng(seed, "loadgen.arrivals")`` stream and coordinates
        from ``derive_rng(seed, "loadgen.coords")`` — separate streams,
        so changing the rate re-times the *same* request mix.
    repeats:
        Each request's ``repeat`` is drawn from ``[0, repeats)``;
        ``repeats=1`` pins every repeat to 0 (maximally cache-friendly),
        larger values diversify capture entropy.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if devices < 1 or scenes < 1:
        raise ValueError("devices and scenes must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    arrivals = derive_rng(seed, "loadgen.arrivals")
    coords = derive_rng(seed, "loadgen.coords")
    schedule: List[ScheduledRequest] = []
    at = 0.0
    for request_id in range(count):
        at += float(arrivals.exponential(1.0 / rate))
        schedule.append(
            ScheduledRequest(
                request_id=request_id,
                at_s=at,
                device=int(coords.integers(0, devices)),
                scene=int(coords.integers(0, scenes)),
                repeat=int(coords.integers(0, repeats)),
            )
        )
    return schedule
