"""repro.loadgen — seeded open-loop load generation for repro.serve.

Builds deterministic Poisson-arrival request schedules over a served
fleet (:mod:`repro.loadgen.generator`) and drives them either over TCP
against ``python -m repro serve`` or in-process
(:mod:`repro.loadgen.client`). Open loop by design: offered load never
backs off, so queue shedding is actually observable. See ``SERVING.md``.
"""

from .client import drive_inproc, run_loadgen, summarize_results
from .generator import ScheduledRequest, build_schedule

__all__ = [
    "drive_inproc",
    "run_loadgen",
    "summarize_results",
    "ScheduledRequest",
    "build_schedule",
]
