"""Load-generator drivers: over TCP and in-process.

:func:`run_loadgen` is the network client behind ``python -m repro
loadgen``: connect (with retry, so CI can start server and client
concurrently), ``hello`` to learn the served dimensions, fire a seeded
open-loop schedule (:mod:`repro.loadgen.generator`), collect every
``result`` line, and optionally ``drain`` the server at the end.

:func:`drive_inproc` drives an :class:`~repro.serve.service.IngestService`
directly — same schedule, no sockets — for benchmarks and tests where
the wire would only add noise.

Both return a report with per-status counts and client-observed
p50/p95/p99 latency (:func:`~repro.serve.service.latency_summary`).
Wall-clock here paces arrivals and measures latency only; it never
touches response payloads (DET002-exempt, like the server side).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..serve.protocol import capture_message, decode_message, encode_message
from ..serve.service import CaptureRequest, IngestService, latency_summary
from .generator import ScheduledRequest, build_schedule

__all__ = ["run_loadgen", "drive_inproc", "summarize_results"]


def summarize_results(
    results: List[Dict], elapsed_s: float, planned: int
) -> Dict:
    """Aggregate raw result messages into the loadgen report."""
    by_status: Dict[str, int] = {}
    latencies: List[float] = []
    for message in results:
        status = message.get("status", "error")
        by_status[status] = by_status.get(status, 0) + 1
        if status == "ok":
            latencies.append(message.get("latency_ms", 0.0) / 1e3)
    completed = by_status.get("ok", 0)
    elapsed = max(elapsed_s, 1e-9)
    return {
        "planned": planned,
        "answered": len(results),
        "by_status": dict(sorted(by_status.items())),
        "elapsed_s": elapsed,
        "captures_per_sec": completed / elapsed,
        "latency": latency_summary(latencies),
    }


async def run_loadgen(
    host: str,
    port: int,
    count: int,
    rate: float,
    seed: int = 0,
    repeats: int = 1,
    drain: bool = False,
    connect_timeout_s: float = 30.0,
    settle_timeout_s: float = 60.0,
) -> Dict:
    """Drive a running serve endpoint with an open-loop schedule.

    Connects (retrying up to ``connect_timeout_s``), builds the schedule
    from the server-reported device/scene dimensions, fires each request
    at its planned time regardless of outstanding responses, then waits
    up to ``settle_timeout_s`` for every answer. With ``drain=True``
    the run ends by draining *and stopping* the server, and the report
    includes the server's final accounting.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + connect_timeout_s
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            break
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.1)

    async def ask(message: Dict) -> Dict:
        writer.write(encode_message(message))
        await writer.drain()
        return decode_message(await reader.readline())

    hello = await ask({"op": "hello"})
    schedule = build_schedule(
        count=count,
        rate=rate,
        devices=int(hello["devices"]),
        scenes=int(hello["scenes"]),
        seed=seed,
        repeats=repeats,
    )

    results: List[Dict] = []
    answered = asyncio.Event()

    async def read_results() -> None:
        while len(results) < len(schedule):
            line = await reader.readline()
            if not line:
                break
            message = decode_message(line)
            if message.get("op") == "result":
                results.append(message)
        answered.set()

    reader_task = loop.create_task(read_results())
    start = loop.time()
    for planned in schedule:
        delay = start + planned.at_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        writer.write(
            encode_message(
                capture_message(
                    planned.request_id, planned.device, planned.scene, planned.repeat
                )
            )
        )
        await writer.drain()
    if schedule:
        try:
            await asyncio.wait_for(answered.wait(), settle_timeout_s)
        except asyncio.TimeoutError:
            pass
    reader_task.cancel()
    await asyncio.gather(reader_task, return_exceptions=True)
    elapsed = loop.time() - start

    report = summarize_results(results, elapsed, planned=len(schedule))
    report["results"] = results
    report["server"] = {
        "devices": int(hello["devices"]),
        "scenes": int(hello["scenes"]),
        "seed": int(hello["seed"]),
    }
    if drain:
        drained = await ask({"op": "drain", "stop": True})
        report["server_accounting"] = drained.get("accounting", {})
    writer.close()
    return report


async def drive_inproc(
    service: IngestService,
    schedule: List[ScheduledRequest],
    paced: bool = True,
) -> Dict:
    """Drive an in-process service with a prebuilt schedule.

    ``paced=True`` honours each request's planned time (open loop);
    ``paced=False`` submits as fast as possible — the overload mode the
    shedding tests and the saturation benchmark use. The service must
    already be started; the caller drains it afterwards. The report maps
    ``request_id -> CaptureResponse`` under ``"responses"`` alongside
    the summary counts.
    """
    loop = asyncio.get_running_loop()
    futures = []
    start = loop.time()
    for planned in schedule:
        if paced:
            delay = start + planned.at_s - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        futures.append(
            service.submit(
                CaptureRequest(
                    request_id=planned.request_id,
                    device=planned.device,
                    scene=planned.scene,
                    repeat=planned.repeat,
                )
            )
        )
    responses = list(await asyncio.gather(*futures)) if futures else []
    elapsed = loop.time() - start
    by_status: Dict[str, int] = {}
    latencies: List[float] = []
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
        if response.status == "ok":
            latencies.append(response.latency_s)
    completed = by_status.get("ok", 0)
    return {
        "planned": len(schedule),
        "answered": len(responses),
        "by_status": dict(sorted(by_status.items())),
        "elapsed_s": max(elapsed, 1e-9),
        "captures_per_sec": completed / max(elapsed, 1e-9),
        "latency": latency_summary(latencies),
        "responses": {r.request_id: r for r in responses},
    }
