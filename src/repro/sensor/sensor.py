"""The Bayer image sensor: radiance in, raw mosaic out.

:class:`BayerSensor` composes the optics and noise models into the full
image-formation chain of one camera module:

1. resample the scene radiance to the sensor's resolution,
2. apply lens effects (blur, chromatic aberration, vignetting),
3. apply per-channel spectral sensitivity (the sensor's native color
   response — why raw images need white balance at all),
4. exposure scaling,
5. sample through the color filter array (Bayer mosaic),
6. add noise (shot/read/dark/PRNU/row),
7. add the black-level pedestal and quantize at the ADC's bit depth.

The output is a :class:`~repro.imaging.image.RawImage` carrying the
calibration metadata an ISP (or the raw-inference mitigation path) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .. import obs
from ..imaging.color import gray_world_gains
from ..imaging.image import BAYER_PATTERNS, ImageBuffer, RawImage
from ..imaging.ops import bilinear_resize
from .noise import SensorNoiseModel
from .optics import LensModel

__all__ = ["BayerSensor", "SensorConfig"]


@dataclass(frozen=True)
class SensorConfig:
    """Static description of a camera module."""

    #: Sensor resolution (rows, cols); must be even for the Bayer mosaic.
    resolution: tuple = (96, 96)
    pattern: str = "RGGB"
    #: Per-channel spectral sensitivity relative to green.
    channel_sensitivity: tuple = (0.55, 1.0, 0.62)
    #: Nominal exposure gain applied to the radiance.
    exposure: float = 0.85
    #: ADC bit depth (10-bit is typical for phone sensors).
    adc_bits: int = 10
    #: Black-level pedestal as a fraction of full scale.
    black_level: float = 0.0625
    lens: LensModel = field(default_factory=LensModel)
    noise: SensorNoiseModel = field(default_factory=SensorNoiseModel)

    def __post_init__(self) -> None:
        h, w = self.resolution
        if h % 2 or w % 2:
            raise ValueError("sensor resolution must be even")
        if self.pattern not in BAYER_PATTERNS:
            raise ValueError(f"unknown Bayer pattern {self.pattern!r}")
        if not 2 <= self.adc_bits <= 16:
            raise ValueError("adc_bits must be in 2..16")
        if self.exposure <= 0:
            raise ValueError("exposure must be positive")


class BayerSensor:
    """A camera module that captures linear radiance into raw mosaics."""

    def __init__(self, config: SensorConfig | None = None) -> None:
        self.config = config or SensorConfig()

    def capture(self, radiance: ImageBuffer, rng: np.random.Generator) -> RawImage:
        """Expose one frame of the given radiance field.

        ``rng`` drives the temporal noise; two calls with different RNG
        states model two consecutive shutter actuations (the paper's
        Fig. 1 repeat-shot scenario).
        """
        cfg = self.config
        h, w = cfg.resolution

        with obs.span("sensor.capture"):
            with obs.span("sensor.optics"):
                linear = bilinear_resize(radiance.pixels, h, w)
                linear = cfg.lens.apply(linear)

            sens = np.asarray(cfg.channel_sensitivity, dtype=np.float32)
            exposed = linear * sens * np.float32(cfg.exposure)

            # Sample through the CFA: each photosite sees one channel.
            cell = BAYER_PATTERNS[cfg.pattern]
            channel_map = np.tile(cell, (h // 2, w // 2))
            mosaic = np.take_along_axis(
                exposed.reshape(h, w, 3), channel_map[..., None], axis=2
            )[..., 0]

            with obs.span("sensor.noise"):
                mosaic = cfg.noise.apply(mosaic, rng)

            # Pedestal, saturation, and ADC quantization.
            span = 1.0 - cfg.black_level
            mosaic = cfg.black_level + np.clip(mosaic, 0.0, 1.0) * span
            levels = (1 << cfg.adc_bits) - 1
            mosaic = np.round(np.clip(mosaic, 0.0, 1.0) * levels) / levels

            # As-shot white balance estimate (gray world over the exposed
            # RGB, before mosaicing — phones estimate this from the full
            # AWB stats).
            wb = gray_world_gains(exposed)

        return RawImage(
            mosaic=mosaic.astype(np.float32),
            pattern=cfg.pattern,
            black_level=cfg.black_level,
            white_level=1.0,
            wb_gains=(float(wb[0]), float(wb[1]), float(wb[2])),
            metadata={"exposure": cfg.exposure, "adc_bits": cfg.adc_bits},
        )

    def capture_batch(
        self, radiance: ImageBuffer, rngs: Sequence[np.random.Generator]
    ) -> List[RawImage]:
        """Expose ``len(rngs)`` repeat frames of one radiance field.

        Everything upstream of the temporal noise — optics, exposure, CFA
        sampling, and the as-shot AWB estimate — depends only on the
        radiance, so it is computed once and shared; the noise model then
        fans the shared mosaic out over the per-repeat generators. Frame
        ``i`` is bit-identical to ``capture(radiance, rngs[i])``.
        """
        cfg = self.config
        h, w = cfg.resolution
        if not rngs:
            return []

        with obs.span("sensor.capture_batch", frames=len(rngs)):
            with obs.span("sensor.optics"):
                linear = bilinear_resize(radiance.pixels, h, w)
                linear = cfg.lens.apply(linear)

            sens = np.asarray(cfg.channel_sensitivity, dtype=np.float32)
            exposed = linear * sens * np.float32(cfg.exposure)

            cell = BAYER_PATTERNS[cfg.pattern]
            channel_map = np.tile(cell, (h // 2, w // 2))
            mosaic = np.take_along_axis(
                exposed.reshape(h, w, 3), channel_map[..., None], axis=2
            )[..., 0]

            with obs.span("sensor.noise"):
                mosaics = cfg.noise.apply_batch(mosaic, rngs)

            span = 1.0 - cfg.black_level
            mosaics = cfg.black_level + np.clip(mosaics, 0.0, 1.0) * span
            levels = (1 << cfg.adc_bits) - 1
            mosaics = np.round(np.clip(mosaics, 0.0, 1.0) * levels) / levels

            wb = gray_world_gains(exposed)

        wb_gains = (float(wb[0]), float(wb[1]), float(wb[2]))
        return [
            RawImage(
                mosaic=mosaics[i].astype(np.float32),
                pattern=cfg.pattern,
                black_level=cfg.black_level,
                white_level=1.0,
                wb_gains=wb_gains,
                metadata={"exposure": cfg.exposure, "adc_bits": cfg.adc_bits},
            )
            for i in range(len(rngs))
        ]
