"""Sensor noise models.

Image acquisition always adds noise (Boncelet 2009, cited by the paper in
§2.2): photon shot noise, read noise, dark current, fixed-pattern
photo-response non-uniformity (PRNU), and correlated row noise. This is
the stochastic floor that makes two back-to-back photos from the *same*
phone differ (paper Fig. 1), and the per-device parameters are one of the
axes along which phones diverge.

All noise operates on linear-light signal normalized to [0, 1] where 1.0
is sensor saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..lint.contracts import tensor_contract

__all__ = ["SensorNoiseModel"]


@dataclass(frozen=True)
class SensorNoiseModel:
    """Parameters of a sensor's noise behaviour.

    Attributes
    ----------
    full_well_electrons:
        Effective full-well capacity; shot noise scales as
        ``sqrt(signal * full_well) / full_well``, so bigger photosites
        (flagship phones) are cleaner.
    read_noise:
        RMS read noise as a fraction of full scale.
    dark_current:
        Mean dark signal as a fraction of full scale (adds both offset and
        its own shot noise).
    prnu:
        RMS of the fixed per-pixel gain error (typically under 1%).
    row_noise:
        RMS of per-row offset noise (banding).
    seed:
        Seeds the *fixed-pattern* component only; the temporal components
        draw from the per-capture RNG.
    """

    full_well_electrons: float = 25000.0
    read_noise: float = 0.002
    dark_current: float = 0.0005
    prnu: float = 0.005
    row_noise: float = 0.0005
    seed: int = 0

    def __post_init__(self) -> None:
        if self.full_well_electrons <= 0:
            raise ValueError("full_well_electrons must be positive")
        for name in ("read_noise", "dark_current", "prnu", "row_noise"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @tensor_contract("_, _ -> (H, W) float32")
    def prnu_map(self, height: int, width: int) -> np.ndarray:
        """The sensor's fixed per-pixel gain field (deterministic)."""
        rng = np.random.default_rng(self.seed)
        return (1.0 + rng.normal(0.0, self.prnu, (height, width))).astype(np.float32)

    @tensor_contract("(H, W) float32, _ -> (H, W) float32")
    def apply(self, signal: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add all noise components to a linear [0, 1] mosaic signal.

        Fixed-pattern noise (PRNU) is deterministic per sensor; temporal
        noise (shot, read, dark, row) is drawn from ``rng`` so repeat
        captures differ.
        """
        signal = np.asarray(signal, dtype=np.float32)
        h, w = signal.shape

        # Fixed-pattern gain.
        noisy = signal * self.prnu_map(h, w)

        # Photon shot noise: Gaussian approximation to Poisson statistics.
        electrons = np.clip(noisy, 0.0, 1.0) * self.full_well_electrons
        shot_sigma = np.sqrt(np.maximum(electrons, 0.0)) / self.full_well_electrons
        noisy = noisy + rng.normal(0.0, 1.0, (h, w)).astype(np.float32) * shot_sigma

        # Dark current: offset plus its own shot noise.
        if self.dark_current > 0:
            dark_electrons = self.dark_current * self.full_well_electrons
            dark_sigma = np.sqrt(dark_electrons) / self.full_well_electrons
            noisy = (
                noisy
                + self.dark_current
                + rng.normal(0.0, dark_sigma, (h, w)).astype(np.float32)
            )

        # Read noise.
        if self.read_noise > 0:
            noisy = noisy + rng.normal(0.0, self.read_noise, (h, w)).astype(np.float32)

        # Row banding: one offset per row.
        if self.row_noise > 0:
            rows = rng.normal(0.0, self.row_noise, (h, 1)).astype(np.float32)
            noisy = noisy + rows

        return noisy.astype(np.float32)

    @tensor_contract("(H, W) float32, _ -> (N, ?, ?) float32")
    def apply_batch(
        self, signal: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Vectorized :meth:`apply` for repeat captures of one exposure.

        One shared pre-noise ``signal`` is observed through ``len(rngs)``
        independent temporal-noise draws. The fixed-pattern gain and the
        shot-noise sigma depend only on ``signal``, so they are computed
        once and broadcast; each generator then draws its components in
        exactly the order :meth:`apply` would (shot, dark, read, row),
        keeping item ``i`` bit-identical to ``apply(signal, rngs[i])``.
        """
        signal = np.asarray(signal, dtype=np.float32)
        h, w = signal.shape
        n = len(rngs)
        if n == 0:
            return np.empty((0, h, w), dtype=np.float32)

        # Shared (rng-independent) terms, identical to the serial path.
        noisy0 = signal * self.prnu_map(h, w)
        electrons = np.clip(noisy0, 0.0, 1.0) * self.full_well_electrons
        shot_sigma = np.sqrt(np.maximum(electrons, 0.0)) / self.full_well_electrons

        # Per-generator draws, in the serial per-capture order so each
        # item consumes its rng stream exactly as ``apply`` would.
        shot_draws = np.empty((n, h, w), dtype=np.float32)
        dark_draws = np.empty((n, h, w), dtype=np.float32) if self.dark_current > 0 else None
        read_draws = np.empty((n, h, w), dtype=np.float32) if self.read_noise > 0 else None
        row_draws = np.empty((n, h, 1), dtype=np.float32) if self.row_noise > 0 else None
        dark_sigma = (
            np.sqrt(self.dark_current * self.full_well_electrons) / self.full_well_electrons
        )
        for i, rng in enumerate(rngs):
            shot_draws[i] = rng.normal(0.0, 1.0, (h, w)).astype(np.float32)
            if dark_draws is not None:
                dark_draws[i] = rng.normal(0.0, dark_sigma, (h, w)).astype(np.float32)
            if read_draws is not None:
                read_draws[i] = rng.normal(0.0, self.read_noise, (h, w)).astype(np.float32)
            if row_draws is not None:
                row_draws[i] = rng.normal(0.0, self.row_noise, (h, 1)).astype(np.float32)

        # Batched arithmetic with the serial path's operand association.
        noisy = noisy0[None, :, :] + shot_draws * shot_sigma[None, :, :]
        if dark_draws is not None:
            noisy = noisy + self.dark_current + dark_draws
        if read_draws is not None:
            noisy = noisy + read_draws
        if row_draws is not None:
            noisy = noisy + row_draws
        return noisy.astype(np.float32)
