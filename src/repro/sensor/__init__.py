"""Camera image formation: optics, noise, and the Bayer sensor."""

from .noise import SensorNoiseModel
from .optics import LensModel
from .sensor import BayerSensor, SensorConfig

__all__ = ["BayerSensor", "LensModel", "SensorConfig", "SensorNoiseModel"]
