"""Lens and optics models.

Per-device optics are one of the paper's instability axes ("differences
in the device sensors ... camera lenses", §1/§11). We model the three
dominant, device-characteristic effects:

* vignetting — radial brightness falloff (cos^4 law scaled by strength),
* lateral chromatic aberration — per-channel radial magnification error,
* defocus / diffraction blur — a Gaussian PSF.

All operate on linear-light RGB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imaging.ops import affine_warp, gaussian_blur
from ..lint.contracts import tensor_contract

__all__ = ["LensModel"]


@dataclass(frozen=True)
class LensModel:
    """Optical characteristics of one camera module.

    Attributes
    ----------
    vignetting:
        Brightness loss at the image corner relative to center (0 = none,
        0.3 = corners 30% darker).
    chromatic_aberration:
        Relative radial magnification difference between the red and blue
        channels (e.g. 0.002 -> red is magnified 0.2% more than green and
        blue 0.2% less).
    blur_sigma:
        Gaussian PSF sigma in pixels at the working resolution.
    """

    vignetting: float = 0.1
    chromatic_aberration: float = 0.0
    blur_sigma: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.vignetting < 1.0:
            raise ValueError("vignetting must be in [0, 1)")
        if self.blur_sigma < 0:
            raise ValueError("blur_sigma must be non-negative")

    @tensor_contract("_, _ -> (H, W) float32")
    def _vignette_field(self, height: int, width: int) -> np.ndarray:
        ys = np.linspace(-1.0, 1.0, height, dtype=np.float32)
        xs = np.linspace(-1.0, 1.0, width, dtype=np.float32)
        yy, xx = np.meshgrid(ys, xs, indexing="ij")
        r2 = (yy**2 + xx**2) / 2.0  # 1.0 at the corners
        return 1.0 - np.float32(self.vignetting) * r2**2

    @tensor_contract("(H, W, 3) float32 -> (H, W, 3) float32")
    def apply(self, image: np.ndarray) -> np.ndarray:
        """Apply blur, chromatic aberration, then vignetting."""
        out = np.asarray(image, dtype=np.float32)
        if out.ndim != 3 or out.shape[2] != 3:
            raise ValueError("LensModel expects (H, W, 3) input")
        h, w = out.shape[:2]

        if self.blur_sigma > 0:
            out = gaussian_blur(out, self.blur_sigma)

        if self.chromatic_aberration != 0.0:
            cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
            center = np.array([cy, cx])
            channels = []
            for channel, scale in ((0, 1.0 + self.chromatic_aberration), (1, 1.0), (2, 1.0 - self.chromatic_aberration)):
                matrix = np.eye(2) / scale
                offset = center - matrix @ center
                channels.append(
                    affine_warp(out[..., channel], matrix, offset=offset, order=1)
                )
            out = np.stack(channels, axis=-1)

        out = out * self._vignette_field(h, w)[..., None]
        return out.astype(np.float32)
