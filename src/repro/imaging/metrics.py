"""Image-difference metrics.

These back the paper's Figure 1 (the pixel-difference map between two
repeat shots) and are used throughout tests to bound codec / ISP error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ops import gaussian_blur

__all__ = ["mse", "psnr", "pixel_diff_map", "PixelDiffStats", "ssim"]


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images."""
    a, b = _pair(a, b)
    return float(np.mean((a - b) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


@dataclass(frozen=True)
class PixelDiffStats:
    """Summary of a pixel-difference map (paper Fig. 1, right panel)."""

    #: Fraction of pixels whose max-channel difference exceeds the threshold.
    divergent_fraction: float
    #: Threshold used, in [0, 1] intensity units.
    threshold: float
    #: Mean absolute difference over all pixels and channels.
    mean_abs_diff: float
    #: Largest per-pixel difference observed.
    max_abs_diff: float
    #: Boolean (H, W) mask of divergent pixels.
    mask: np.ndarray


def pixel_diff_map(a: np.ndarray, b: np.ndarray, threshold: float = 0.05) -> PixelDiffStats:
    """Locate pixels that differ by more than ``threshold`` (default 5%).

    This reproduces the paper's Figure 1 analysis: two repeat shots look
    identical to the naked eye but a small set of pixels differ by more than
    5%, and that is enough to flip a borderline classification.
    """
    a, b = _pair(a, b)
    diff = np.abs(a - b)
    per_pixel = diff if diff.ndim == 2 else diff.max(axis=-1)
    mask = per_pixel > threshold
    return PixelDiffStats(
        divergent_fraction=float(mask.mean()),
        threshold=float(threshold),
        mean_abs_diff=float(diff.mean()),
        max_abs_diff=float(diff.max()) if diff.size else 0.0,
        mask=mask,
    )


def ssim(a: np.ndarray, b: np.ndarray, sigma: float = 1.5) -> float:
    """Single-scale SSIM on the luma of two images.

    A Gaussian-weighted implementation of Wang et al.'s structural
    similarity. Color images are converted to luma first.
    """
    a, b = _pair(a, b)
    if a.ndim == 3:
        weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
        a = a @ weights
        b = b @ weights

    c1 = (0.01) ** 2
    c2 = (0.03) ** 2
    mu_a = gaussian_blur(a, sigma)
    mu_b = gaussian_blur(b, sigma)
    var_a = gaussian_blur(a * a, sigma) - mu_a * mu_a
    var_b = gaussian_blur(b * b, sigma) - mu_b * mu_b
    cov = gaussian_blur(a * b, sigma) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))
