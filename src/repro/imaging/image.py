"""Core image containers used throughout the library.

Two containers cover every stage of the capture pipeline:

``ImageBuffer``
    A processed image: float32, height x width x 3, RGB, values nominally in
    ``[0, 1]``. This is the currency of the scene renderer, the ISP output,
    the codecs, and the model input path.

``RawImage``
    A single-channel Bayer mosaic straight off the (simulated) sensor,
    together with the CFA layout and sensor calibration metadata (black
    level / white level). This is what the ISP consumes and what the
    "shoot raw" mitigation path (paper §9.2) serializes.

Both containers are deliberately thin: they validate shape/dtype once at the
boundary so downstream numeric code can operate on bare ``numpy`` arrays
without re-checking invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..lint.contracts import tensor_contract

__all__ = ["ImageBuffer", "RawImage", "BAYER_PATTERNS"]

#: Supported color-filter-array layouts, mapping pattern name to the 2x2 cell
#: of channel indices (0=R, 1=G, 2=B), row-major.  ``RGGB`` means the top-left
#: pixel of the sensor sees red, its right neighbour green, etc.
BAYER_PATTERNS = {
    "RGGB": np.array([[0, 1], [1, 2]], dtype=np.int64),
    "BGGR": np.array([[2, 1], [1, 0]], dtype=np.int64),
    "GRBG": np.array([[1, 0], [2, 1]], dtype=np.int64),
    "GBRG": np.array([[1, 2], [0, 1]], dtype=np.int64),
}


@tensor_contract("* any -> * float32")
def _as_float32(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array)
    if array.dtype != np.float32:
        array = array.astype(np.float32)
    return array


@dataclass
class ImageBuffer:
    """A float32 RGB image with values nominally in ``[0, 1]``.

    Parameters
    ----------
    pixels:
        Array of shape ``(height, width, 3)``. Any float dtype is accepted
        and converted to float32. Values may transiently exceed ``[0, 1]``
        (e.g. mid-ISP); call :meth:`clipped` before handing the image to a
        codec or the model.

    Examples
    --------
    >>> buf = ImageBuffer(np.zeros((4, 4, 3)))
    >>> buf.shape
    (4, 4, 3)
    """

    pixels: np.ndarray

    def __post_init__(self) -> None:
        self.pixels = _as_float32(self.pixels)
        if self.pixels.ndim != 3 or self.pixels.shape[2] != 3:
            raise ValueError(
                f"ImageBuffer expects (H, W, 3), got shape {self.pixels.shape}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_uint8(cls, array: np.ndarray) -> "ImageBuffer":
        """Build from an 8-bit image (values ``0..255``)."""
        array = np.asarray(array)
        if array.dtype != np.uint8:
            raise TypeError(f"expected uint8 array, got {array.dtype}")
        return cls(array.astype(np.float32) / 255.0)

    @classmethod
    def full(cls, height: int, width: int, value: float = 0.0) -> "ImageBuffer":
        """A constant-colored image (used for backgrounds and tests)."""
        return cls(np.full((height, width, 3), value, dtype=np.float32))

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(self.pixels.shape)  # type: ignore[return-value]

    @tensor_contract("-> (H, W, 3) intN")
    def to_uint8(self) -> np.ndarray:
        """Quantize to 8-bit with round-half-away rounding, clipping first."""
        clipped = np.clip(self.pixels, 0.0, 1.0)
        return (clipped * 255.0 + 0.5).astype(np.uint8)

    def clipped(self) -> "ImageBuffer":
        """Return a copy with values clipped into ``[0, 1]``."""
        return ImageBuffer(np.clip(self.pixels, 0.0, 1.0))

    def copy(self) -> "ImageBuffer":
        return ImageBuffer(self.pixels.copy())

    # ------------------------------------------------------------------
    # Arithmetic conveniences (return new buffers; never mutate)
    # ------------------------------------------------------------------
    def scaled(self, gain: float) -> "ImageBuffer":
        return ImageBuffer(self.pixels * np.float32(gain))

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, ImageBuffer):
            return NotImplemented
        return bool(np.array_equal(self.pixels, other.pixels))


@dataclass
class RawImage:
    """A Bayer-mosaiced sensor readout plus calibration metadata.

    Parameters
    ----------
    mosaic:
        ``(H, W)`` float32 array of normalized sensor values. Values are in
        ADC-normalized units: ``black_level`` maps to the sensor's dark
        response and ``white_level`` to saturation.
    pattern:
        One of ``"RGGB"``, ``"BGGR"``, ``"GRBG"``, ``"GBRG"``.
    black_level / white_level:
        Calibration points in the same normalized units as ``mosaic``.
    wb_gains:
        Per-channel (R, G, B) white-balance gains measured by the camera at
        capture time. The ISP may use or ignore these.
    """

    mosaic: np.ndarray
    pattern: str = "RGGB"
    black_level: float = 0.0625  # 64/1024, a common 10-bit sensor pedestal
    white_level: float = 1.0
    wb_gains: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.mosaic = _as_float32(self.mosaic)
        if self.mosaic.ndim != 2:
            raise ValueError(f"RawImage expects (H, W), got {self.mosaic.shape}")
        if self.pattern not in BAYER_PATTERNS:
            raise ValueError(
                f"unknown Bayer pattern {self.pattern!r}; "
                f"expected one of {sorted(BAYER_PATTERNS)}"
            )
        if self.mosaic.shape[0] % 2 or self.mosaic.shape[1] % 2:
            raise ValueError("Bayer mosaic dimensions must be even")
        if not self.black_level < self.white_level:
            raise ValueError("black_level must be below white_level")

    @property
    def height(self) -> int:
        return int(self.mosaic.shape[0])

    @property
    def width(self) -> int:
        return int(self.mosaic.shape[1])

    def channel_mask(self, channel: int) -> np.ndarray:
        """Boolean ``(H, W)`` mask of photosites that sample ``channel``."""
        cell = BAYER_PATTERNS[self.pattern]
        tiled = np.tile(cell, (self.height // 2, self.width // 2))
        return tiled == channel

    def copy(self) -> "RawImage":
        return RawImage(
            mosaic=self.mosaic.copy(),
            pattern=self.pattern,
            black_level=self.black_level,
            white_level=self.white_level,
            wb_gains=self.wb_gains,
            metadata=dict(self.metadata),
        )
