"""Image containers, color math, spatial ops, and difference metrics."""

from .image import BAYER_PATTERNS, ImageBuffer, RawImage
from .metrics import PixelDiffStats, mse, pixel_diff_map, psnr, ssim
from .ops import (
    affine_warp,
    bilinear_resize,
    box_blur,
    center_crop,
    gaussian_blur,
    pad_to_multiple,
    perspective_shift,
    unsharp_mask,
)
from . import color

__all__ = [
    "BAYER_PATTERNS",
    "ImageBuffer",
    "RawImage",
    "PixelDiffStats",
    "mse",
    "pixel_diff_map",
    "psnr",
    "ssim",
    "affine_warp",
    "bilinear_resize",
    "box_blur",
    "center_crop",
    "gaussian_blur",
    "pad_to_multiple",
    "perspective_shift",
    "unsharp_mask",
    "color",
]
