"""Low-level spatial image operations shared by scenes, ISP, and devices.

Everything here works on bare float32 arrays — either ``(H, W)`` planes or
``(H, W, 3)`` RGB stacks — and is vectorized with NumPy / SciPy.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..lint.contracts import tensor_contract

__all__ = [
    "bilinear_resize",
    "bilinear_resize_batch",
    "center_crop",
    "pad_to_multiple",
    "gaussian_kernel1d",
    "gaussian_blur",
    "gaussian_blur_batch",
    "gaussian_blur_planes_batch",
    "box_blur",
    "unsharp_mask",
    "unsharp_mask_batch",
    "affine_warp",
    "perspective_shift",
]


@tensor_contract("* float32, _, _ -> * float32")
def bilinear_resize(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize an ``(H, W)`` or ``(H, W, C)`` image with bilinear sampling.

    Uses the half-pixel-center convention (align_corners=False), matching
    common image libraries.
    """
    image = np.asarray(image, dtype=np.float32)
    if height <= 0 or width <= 0:
        raise ValueError("target size must be positive")
    src_h, src_w = image.shape[:2]
    if (src_h, src_w) == (height, width):
        return image.copy()

    ys = (np.arange(height, dtype=np.float32) + 0.5) * (src_h / height) - 0.5
    xs = (np.arange(width, dtype=np.float32) + 0.5) * (src_w / width) - 0.5
    ys = np.clip(ys, 0.0, src_h - 1.0)
    xs = np.clip(xs, 0.0, src_w - 1.0)

    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)

    if image.ndim == 2:
        flat = image
        gather = lambda yy, xx: flat[yy[:, None], xx[None, :]]  # noqa: E731
        wy_b = wy[:, None]
        wx_b = wx[None, :]
    else:
        flat = image
        gather = lambda yy, xx: flat[yy[:, None], xx[None, :], :]  # noqa: E731
        wy_b = wy[:, None, None]
        wx_b = wx[None, :, None]

    top = gather(y0, x0) * (1 - wx_b) + gather(y0, x1) * wx_b
    bot = gather(y1, x0) * (1 - wx_b) + gather(y1, x1) * wx_b
    return (top * (1 - wy_b) + bot * wy_b).astype(np.float32)


@tensor_contract("(N, ?, ?, ?) float32, _, _ -> (N, ?, ?, ?) float32")
def bilinear_resize_batch(images: np.ndarray, height: int, width: int) -> np.ndarray:
    """Batched :func:`bilinear_resize` over an ``(N, H, W, C)`` stack.

    Item ``i`` of the result is bit-identical to
    ``bilinear_resize(images[i], height, width)``: the sample grid and
    interpolation weights depend only on the geometry, so they are shared,
    and the gather + lerp arithmetic is elementwise per item.
    """
    images = np.asarray(images, dtype=np.float32)
    if images.ndim != 4:
        raise ValueError(f"expected (N, H, W, C), got shape {images.shape}")
    if height <= 0 or width <= 0:
        raise ValueError("target size must be positive")
    src_h, src_w = images.shape[1:3]
    if (src_h, src_w) == (height, width):
        return images.copy()

    ys = (np.arange(height, dtype=np.float32) + 0.5) * (src_h / height) - 0.5
    xs = (np.arange(width, dtype=np.float32) + 0.5) * (src_w / width) - 0.5
    ys = np.clip(ys, 0.0, src_h - 1.0)
    xs = np.clip(xs, 0.0, src_w - 1.0)

    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)

    wy_b = wy[None, :, None, None]
    wx_b = wx[None, None, :, None]

    def gather(yy: np.ndarray, xx: np.ndarray) -> np.ndarray:
        return images[:, yy[:, None], xx[None, :], :]

    top = gather(y0, x0) * (1 - wx_b) + gather(y0, x1) * wx_b
    bot = gather(y1, x0) * (1 - wx_b) + gather(y1, x1) * wx_b
    return (top * (1 - wy_b) + bot * wy_b).astype(np.float32)


def center_crop(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Crop the central ``height x width`` window."""
    src_h, src_w = image.shape[:2]
    if height > src_h or width > src_w:
        raise ValueError(
            f"crop {height}x{width} larger than image {src_h}x{src_w}"
        )
    y0 = (src_h - height) // 2
    x0 = (src_w - width) // 2
    return np.ascontiguousarray(image[y0 : y0 + height, x0 : x0 + width])


def pad_to_multiple(image: np.ndarray, multiple: int, mode: str = "edge") -> np.ndarray:
    """Pad bottom/right so both spatial dims are multiples of ``multiple``."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    h, w = image.shape[:2]
    pad_h = (-h) % multiple
    pad_w = (-w) % multiple
    if pad_h == 0 and pad_w == 0:
        return image
    pads = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (image.ndim - 2)
    return np.pad(image, pads, mode=mode)


@tensor_contract("_, _ -> (K,) float32")
def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """A normalized 1-D Gaussian kernel."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius is None:
        radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float32)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    return (kernel / kernel.sum()).astype(np.float32)


@tensor_contract("* float32, _ -> * float32")
def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur on an ``(H, W)`` or ``(H, W, C)`` image."""
    if sigma <= 0:
        return np.asarray(image, dtype=np.float32).copy()
    image = np.asarray(image, dtype=np.float32)
    axes = (0, 1)
    out = image
    for axis in axes:
        out = ndimage.gaussian_filter1d(out, sigma=sigma, axis=axis, mode="nearest")
    return out.astype(np.float32)


@tensor_contract("(N, ?, ?, ?) float32, _ -> (N, ?, ?, ?) float32")
def gaussian_blur_batch(images: np.ndarray, sigma: float) -> np.ndarray:
    """Batched :func:`gaussian_blur` over an ``(N, H, W, C)`` stack.

    ``gaussian_filter1d`` runs the same 1-D correlation along each
    spatial line regardless of how many leading batch dims surround it,
    so filtering axes ``(1, 2)`` here is bit-identical to filtering axes
    ``(0, 1)`` of each item separately.
    """
    if sigma <= 0:
        return np.asarray(images, dtype=np.float32).copy()
    out = np.asarray(images, dtype=np.float32)
    for axis in (1, 2):
        out = ndimage.gaussian_filter1d(out, sigma=sigma, axis=axis, mode="nearest")
    return out.astype(np.float32)


@tensor_contract("(N, ?, ?) float32, _ -> (N, ?, ?) float32")
def gaussian_blur_planes_batch(planes: np.ndarray, sigma: float) -> np.ndarray:
    """Batched :func:`gaussian_blur` over an ``(N, H, W)`` plane stack."""
    if sigma <= 0:
        return np.asarray(planes, dtype=np.float32).copy()
    out = np.asarray(planes, dtype=np.float32)
    for axis in (1, 2):
        out = ndimage.gaussian_filter1d(out, sigma=sigma, axis=axis, mode="nearest")
    return out.astype(np.float32)


def box_blur(image: np.ndarray, size: int) -> np.ndarray:
    """Uniform (box) blur with an odd window ``size``."""
    if size < 1 or size % 2 == 0:
        raise ValueError("box size must be odd and >= 1")
    if size == 1:
        return np.asarray(image, dtype=np.float32).copy()
    image = np.asarray(image, dtype=np.float32)
    out = ndimage.uniform_filter1d(image, size=size, axis=0, mode="nearest")
    out = ndimage.uniform_filter1d(out, size=size, axis=1, mode="nearest")
    return out.astype(np.float32)


def unsharp_mask(image: np.ndarray, sigma: float, amount: float) -> np.ndarray:
    """Classic unsharp masking: ``img + amount * (img - blur(img))``."""
    image = np.asarray(image, dtype=np.float32)
    blurred = gaussian_blur(image, sigma)
    return image + np.float32(amount) * (image - blurred)


@tensor_contract("(N, ?, ?, ?) float32, _, _ -> (N, ?, ?, ?) float32")
def unsharp_mask_batch(images: np.ndarray, sigma: float, amount: float) -> np.ndarray:
    """Batched :func:`unsharp_mask` over an ``(N, H, W, C)`` stack."""
    images = np.asarray(images, dtype=np.float32)
    blurred = gaussian_blur_batch(images, sigma)
    return images + np.float32(amount) * (images - blurred)


def affine_warp(
    image: np.ndarray,
    matrix: np.ndarray,
    offset: np.ndarray | tuple = (0.0, 0.0),
    order: int = 1,
    cval: float = 0.0,
    mode: str = "constant",
) -> np.ndarray:
    """Apply an inverse affine map ``(row, col) -> matrix @ (row, col) + offset``.

    Thin wrapper over :func:`scipy.ndimage.affine_transform` that handles the
    channel axis of RGB stacks.
    """
    image = np.asarray(image, dtype=np.float32)
    matrix = np.asarray(matrix, dtype=np.float64)
    if image.ndim == 2:
        return ndimage.affine_transform(
            image, matrix, offset=offset, order=order, cval=cval, mode=mode
        ).astype(np.float32)
    channels = [
        ndimage.affine_transform(
            image[..., c], matrix, offset=offset, order=order, cval=cval, mode=mode
        )
        for c in range(image.shape[2])
    ]
    return np.stack(channels, axis=-1).astype(np.float32)


def perspective_shift(image: np.ndarray, angle_deg: float, cval: float = 0.0) -> np.ndarray:
    """Simulate photographing a flat screen from a horizontal viewing angle.

    A positive ``angle_deg`` corresponds to standing to the right of the
    screen: the image is horizontally foreshortened and sheared. This is the
    geometric model behind the paper's five capture angles (left,
    center-left, center, center-right, right).
    """
    image = np.asarray(image, dtype=np.float32)
    theta = np.deg2rad(angle_deg)
    # Half-strength foreshortening: the rig's mount keeps the phones close
    # to the screen normal, so a nominal 30-degree position produces only a
    # mild geometric change (the paper's Fig. 3d finds within-phone,
    # across-angle instability well below the cross-phone level).
    squeeze = 1.0 - (1.0 - float(np.cos(theta))) * 0.5
    shear = float(np.sin(theta)) * 0.05
    h, w = image.shape[:2]
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    # Inverse map: output (r, c) samples input at (r', c').
    matrix = np.array([[1.0, shear], [0.0, 1.0 / max(squeeze, 1e-3)]])
    center = np.array([cy, cx])
    offset = center - matrix @ center
    # Edge replication: a camera aimed at a screen sees the screen bezel /
    # wall continue past the frame, not black void.
    return affine_warp(image, matrix, offset=offset, order=1, cval=cval, mode="nearest")
