"""Color-space conversions and color math used by the ISP and codecs.

All conversions operate on float32 arrays shaped ``(..., 3)`` and are fully
vectorized. The JPEG path uses full-range BT.601 YCbCr (the convention of
libjpeg); the ISP uses linear-light sRGB primaries with a standard encoding
gamma.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..lint.contracts import tensor_contract

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "apply_color_matrix",
    "srgb_encode",
    "srgb_decode",
    "gray_world_gains",
    "gray_world_gains_batch",
    "apply_wb_gains",
    "apply_wb_gains_batch",
    "luminance",
]

# Full-range BT.601, as used by JFIF/libjpeg.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168735892, -0.331264108, 0.5],
        [0.5, -0.418687589, -0.081312411],
    ],
    dtype=np.float32,
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR.astype(np.float64)).astype(np.float32)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert ``(..., 3)`` RGB in [0,1] to full-range YCbCr.

    Y lands in ``[0, 1]``; Cb and Cr are centered, in ``[-0.5, 0.5]``.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    return rgb @ _RGB_TO_YCBCR.T


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr` (no clipping applied)."""
    ycc = np.asarray(ycc, dtype=np.float32)
    return ycc @ _YCBCR_TO_RGB.T


def rgb_to_hsv(rgb: np.ndarray) -> np.ndarray:
    """Vectorized RGB -> HSV. Hue in ``[0, 1)``, S and V in ``[0, 1]``."""
    rgb = np.clip(np.asarray(rgb, dtype=np.float32), 0.0, 1.0)
    maxc = rgb.max(axis=-1)
    minc = rgb.min(axis=-1)
    v = maxc
    delta = maxc - minc
    s = np.where(maxc > 0, delta / np.maximum(maxc, 1e-12), 0.0)

    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    safe_delta = np.maximum(delta, 1e-12)
    rc = (maxc - r) / safe_delta
    gc = (maxc - g) / safe_delta
    bc = (maxc - b) / safe_delta

    h = np.where(r == maxc, bc - gc, np.where(g == maxc, 2.0 + rc - bc, 4.0 + gc - rc))
    h = (h / 6.0) % 1.0
    h = np.where(delta == 0, 0.0, h)
    return np.stack([h, s, v], axis=-1).astype(np.float32)


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Vectorized HSV -> RGB, inverse of :func:`rgb_to_hsv`."""
    hsv = np.asarray(hsv, dtype=np.float32)
    h, s, v = hsv[..., 0] % 1.0, np.clip(hsv[..., 1], 0, 1), hsv[..., 2]
    i = np.floor(h * 6.0)
    f = h * 6.0 - i
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))
    i = i.astype(np.int64) % 6

    # Select the (r, g, b) permutation per sextant.
    choices = np.stack(
        [
            np.stack([v, t, p], axis=-1),
            np.stack([q, v, p], axis=-1),
            np.stack([p, v, t], axis=-1),
            np.stack([p, q, v], axis=-1),
            np.stack([t, p, v], axis=-1),
            np.stack([v, p, q], axis=-1),
        ],
        axis=0,
    )
    idx = i[None, ..., None]
    rgb = np.take_along_axis(choices, np.broadcast_to(idx, (1,) + i.shape + (3,)), axis=0)[0]
    return rgb.astype(np.float32)


@tensor_contract("* float32, _ -> * float32")
def apply_color_matrix(rgb: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a 3x3 color-correction matrix to ``(..., 3)`` pixels."""
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.shape != (3, 3):
        raise ValueError(f"color matrix must be 3x3, got {matrix.shape}")
    return np.asarray(rgb, dtype=np.float32) @ matrix.T


@tensor_contract("* float32 -> * float32")
def srgb_encode(linear: np.ndarray) -> np.ndarray:
    """Linear light -> sRGB-encoded, the standard piecewise curve."""
    linear = np.clip(np.asarray(linear, dtype=np.float32), 0.0, 1.0)
    low = linear * 12.92
    high = 1.055 * np.power(linear, 1.0 / 2.4, dtype=np.float32) - 0.055
    return np.where(linear <= 0.0031308, low, high).astype(np.float32)


@tensor_contract("* float32 -> * float32")
def srgb_decode(encoded: np.ndarray) -> np.ndarray:
    """sRGB-encoded -> linear light, inverse of :func:`srgb_encode`."""
    encoded = np.clip(np.asarray(encoded, dtype=np.float32), 0.0, 1.0)
    low = encoded / 12.92
    high = np.power((encoded + 0.055) / 1.055, 2.4, dtype=np.float32)
    return np.where(encoded <= 0.04045, low, high).astype(np.float32)


@tensor_contract("* float32 -> (3,) float32")
def gray_world_gains(rgb: np.ndarray) -> np.ndarray:
    """Estimate white-balance gains with the gray-world assumption.

    Returns gains ``(gr, gg, gb)`` normalized so the green gain is 1, the
    convention camera ISPs use.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    means = rgb.reshape(-1, 3).mean(axis=0)
    means = np.maximum(means, 1e-6)
    gains = means[1] / means
    return gains.astype(np.float32)


@tensor_contract("* float32, _ -> * float32")
def apply_wb_gains(rgb: np.ndarray, gains: Sequence[float]) -> np.ndarray:
    """Multiply each channel by its white-balance gain."""
    gains_arr = np.asarray(gains, dtype=np.float32)
    if gains_arr.shape != (3,):
        raise ValueError(f"expected 3 gains, got shape {gains_arr.shape}")
    return np.asarray(rgb, dtype=np.float32) * gains_arr


def gray_world_gains_batch(rgb: np.ndarray) -> np.ndarray:
    """Per-item :func:`gray_world_gains` over an ``(N, H, W, 3)`` stack.

    The gray-world estimate reduces each item over its own pixels, so a
    fused batch-axis reduction would change the pairwise-summation
    blocking; the loop keeps each item's mean bit-identical to the serial
    path. Returns ``(N, 3)`` gains.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    if rgb.ndim != 4 or rgb.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3), got shape {rgb.shape}")
    return np.stack([gray_world_gains(item) for item in rgb])


@tensor_contract("(N, ?, ?, ?) float32, (N, 3) float32 -> (N, ?, ?, ?) float32")
def apply_wb_gains_batch(rgb: np.ndarray, gains: np.ndarray) -> np.ndarray:
    """Per-item white-balance gains over an ``(N, H, W, 3)`` stack."""
    gains = np.asarray(gains, dtype=np.float32)
    rgb = np.asarray(rgb, dtype=np.float32)
    if gains.ndim != 2 or gains.shape != (rgb.shape[0], 3):
        raise ValueError(f"expected ({rgb.shape[0]}, 3) gains, got {gains.shape}")
    return rgb * gains[:, None, None, :]


def luminance(rgb: np.ndarray) -> np.ndarray:
    """BT.601 luma of ``(..., 3)`` RGB pixels."""
    rgb = np.asarray(rgb, dtype=np.float32)
    return rgb @ _RGB_TO_YCBCR[0]
