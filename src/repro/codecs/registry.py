"""Uniform codec interface and registry.

Everything downstream (device models, experiments, mitigation) talks to
codecs through :class:`Codec` so that "compress the same raw image into
JPEG / PNG / WebP / HEIF" — the paper's Table 3 experiment — is a loop
over registry entries, and new codecs can be registered by extensions.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Callable, Dict, List

from .. import obs
from ..imaging.image import ImageBuffer
from .heif import decode_heif, encode_heif
from .jpeg import JpegDecodeOptions, decode_jpeg, encode_jpeg
from .png import decode_png, encode_png
from .webp import decode_webp, encode_webp

__all__ = ["Codec", "get_codec", "available_codecs", "register_codec", "sniff_format", "decode_any"]


@dataclass(frozen=True)
class Codec:
    """A named image codec with symmetric encode/decode callables.

    ``lossless`` is advertised so experiments can assert invariants (e.g.
    the §7 result that PNG shows zero cross-OS instability relies on it).
    """

    name: str
    encode: Callable[..., bytes]
    decode: Callable[[bytes], ImageBuffer]
    lossless: bool
    default_quality: int | None = None

    def roundtrip(self, image: ImageBuffer, **params) -> ImageBuffer:
        """Encode then decode, returning the reconstructed image."""
        return self.decode(self.encode(image, **params))


# Populated only by the register_codec calls at the bottom of this module
# (import time), so every process — parent or spawned worker — sees the
# identical read-only mapping.
_REGISTRY: Dict[str, Codec] = {}  # lint: disable=PROC001


def _instrumented(codec: Codec) -> Codec:
    """Wrap a codec's callables with tracing spans and byte counters.

    The wrappers are transparent when no observer is active (one global
    read each), preserve ``__qualname__``/``__module__`` via
    ``functools.wraps`` (so content fingerprints of callables are
    unchanged), and never alter the bytes or pixels flowing through.
    """
    if getattr(codec.encode, "_obs_instrumented", False):
        return codec  # already wrapped (e.g. re-registered with overwrite)
    encode_fn, decode_fn = codec.encode, codec.decode

    @functools.wraps(encode_fn)
    def encode(image: ImageBuffer, **params) -> bytes:
        ob = obs.active()
        if ob is None:
            return encode_fn(image, **params)
        with ob.tracer.span("codec.encode", codec=codec.name):
            data = encode_fn(image, **params)
        ob.metrics.count("codec.bytes_encoded", len(data))
        ob.metrics.count(f"codec.encoded.{codec.name}")
        ob.metrics.observe("codec.encoded_size", len(data))
        return data

    @functools.wraps(decode_fn)
    def decode(data: bytes) -> ImageBuffer:
        ob = obs.active()
        if ob is None:
            return decode_fn(data)
        with ob.tracer.span("codec.decode", codec=codec.name):
            image = decode_fn(data)
        ob.metrics.count("codec.bytes_decoded", len(data))
        return image

    encode._obs_instrumented = True
    decode._obs_instrumented = True
    return dataclasses.replace(codec, encode=encode, decode=decode)


def register_codec(codec: Codec, overwrite: bool = False) -> None:
    """Add a codec to the global registry (instrumented; see above)."""
    if codec.name in _REGISTRY and not overwrite:
        raise ValueError(f"codec {codec.name!r} already registered")
    _REGISTRY[codec.name] = _instrumented(codec)


def get_codec(name: str) -> Codec:
    """Look up a codec by name (``jpeg``, ``png``, ``webp``, ``heif``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> List[str]:
    return sorted(_REGISTRY)


def decode_any(data: bytes) -> ImageBuffer:
    """Decode a byte stream with the reference decoder for its format.

    This is the *experimenter's* loader — the consistent decode path used
    when evaluating photos off-device — as opposed to
    :class:`repro.devices.os_sim.OSDecoderProfile`, which models how a
    particular phone OS decodes.
    """
    return get_codec(sniff_format(data)).decode(data)


def sniff_format(data: bytes) -> str:
    """Identify a byte stream's format from its magic bytes."""
    if data[:2] == b"\xff\xd8":
        return "jpeg"
    if data[:8] == b"\x89PNG\r\n\x1a\n":
        return "png"
    if data[:4] == b"RPWB":
        return "webp"
    if data[:4] == b"RPHF":
        return "heif"
    if data[:4] == b"RPDN":
        return "dng"
    raise ValueError("unrecognized image format")


register_codec(
    Codec(
        name="jpeg",
        encode=encode_jpeg,
        decode=lambda data: decode_jpeg(data, JpegDecodeOptions()),
        lossless=False,
        default_quality=85,
    )
)
register_codec(
    Codec(name="png", encode=encode_png, decode=decode_png, lossless=True)
)
register_codec(
    Codec(
        name="webp",
        encode=encode_webp,
        decode=decode_webp,
        lossless=False,
        default_quality=40,
    )
)
register_codec(
    Codec(
        name="heif",
        encode=encode_heif,
        decode=decode_heif,
        lossless=False,
        default_quality=80,
    )
)
