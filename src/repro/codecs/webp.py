"""A WebP-style lossy codec: intra block prediction + transform residuals.

This is not bit-compatible VP8 (that would be thousands of lines of
arithmetic-coder tables), but it follows VP8's *architecture*, which is
what matters for reproducing the paper: prediction from reconstructed
neighbours, a transform over the *residual*, a flat quantizer, and a
shared entropy backend. The artefacts it produces — prediction-edge
discontinuities, flat-quant ringing — are characteristically different
from JPEG's, so images round-tripped through "webp" and "jpeg" genuinely
diverge, which is the mechanism behind the paper's Table 3 cross-format
instability (9.66%).

Bitstream layout (magic ``RPWB``)::

    RPWB | u16 width | u16 height | u8 quality |
    zlib( mode bytes per block-plane ++ int16 coefficient stream )
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

import numpy as np

from ..imaging.color import rgb_to_ycbcr, ycbcr_to_rgb
from ..imaging.image import ImageBuffer
from .dct import block_dct, block_idct
from .jpeg import _pad_plane, _subsample_420, _upsample_2x_bilinear

# Coefficient serialization and DEFLATE dispatch through repro.kernels.
from .. import kernels

__all__ = ["encode_webp", "decode_webp"]

MAGIC = b"RPWB"
_BLOCK = 8

# Prediction modes.
_MODE_DC = 0
_MODE_HORIZONTAL = 1
_MODE_VERTICAL = 2


def _quality_to_step(quality: int, chroma: bool) -> float:
    """Map quality 1..100 to a flat quantizer step.

    Roughly exponential, like VP8's quantizer index table; chroma is
    quantized ~40% more coarsely.
    """
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    step = 60.0 * np.exp(-0.045 * quality) + 0.8
    return step * (1.4 if chroma else 1.0)


def _predict(recon: np.ndarray, by: int, bx: int, mode: int) -> np.ndarray:
    """Predict one block from already-reconstructed neighbours."""
    b = _BLOCK
    top = recon[by - 1, bx * b : (bx + 1) * b] if by > 0 else None
    left = recon[by * b : (by + 1) * b, bx * b - 1] if bx > 0 else None
    if mode == _MODE_DC:
        vals = []
        if top is not None:
            vals.append(top.mean())
        if left is not None:
            vals.append(left.mean())
        fill = np.mean(vals) if vals else 128.0
        return np.full((b, b), fill)
    if mode == _MODE_HORIZONTAL:
        if left is None:
            return np.full((b, b), 128.0)
        return np.tile(left.reshape(-1, 1), (1, b))
    if mode == _MODE_VERTICAL:
        if top is None:
            return np.full((b, b), 128.0)
        return np.tile(top.reshape(1, -1), (b, 1))
    raise ValueError(f"unknown prediction mode {mode}")


def _encode_plane(plane: np.ndarray, step: float) -> Tuple[bytes, np.ndarray]:
    """Encode one plane; returns (mode_bytes + coeff int16 LE bytes, recon)."""
    h, w = plane.shape
    rows, cols = h // _BLOCK, w // _BLOCK
    recon = np.zeros_like(plane)
    modes = bytearray()
    coeffs_out: List[np.ndarray] = []
    for by in range(rows):
        for bx in range(cols):
            block = plane[
                by * _BLOCK : (by + 1) * _BLOCK, bx * _BLOCK : (bx + 1) * _BLOCK
            ]
            # Pick the mode minimizing residual energy against the
            # *reconstructed* neighbours (the decoder sees the same data).
            best_mode, best_pred, best_cost = 0, None, None
            for mode in (_MODE_DC, _MODE_HORIZONTAL, _MODE_VERTICAL):
                pred = _predict(recon, by, bx, mode)
                cost = float(np.abs(block - pred).sum())
                if best_cost is None or cost < best_cost:
                    best_mode, best_pred, best_cost = mode, pred, cost
            residual = block - best_pred
            coefs = block_dct(residual[None])[0]
            quantized = np.round(coefs / step).astype(np.int16)
            coeffs_out.append(quantized.reshape(-1))
            dequant = quantized.astype(np.float64) * step
            rec_block = best_pred + block_idct(dequant[None])[0]
            recon[
                by * _BLOCK : (by + 1) * _BLOCK, bx * _BLOCK : (bx + 1) * _BLOCK
            ] = np.clip(rec_block, 0.0, 255.0)
            modes.append(best_mode)
    coeff_bytes = kernels.pack_coefficients(np.concatenate(coeffs_out))
    return bytes(modes) + coeff_bytes, recon


def _decode_plane(
    modes: bytes, coeffs: np.ndarray, h: int, w: int, step: float
) -> np.ndarray:
    rows, cols = h // _BLOCK, w // _BLOCK
    recon = np.zeros((h, w), dtype=np.float64)
    per_block = _BLOCK * _BLOCK
    for i, (by, bx) in enumerate(
        (by, bx) for by in range(rows) for bx in range(cols)
    ):
        pred = _predict(recon, by, bx, modes[i])
        block_coefs = coeffs[i * per_block : (i + 1) * per_block].astype(np.float64)
        residual = block_idct((block_coefs * step).reshape(1, _BLOCK, _BLOCK))[0]
        recon[
            by * _BLOCK : (by + 1) * _BLOCK, bx * _BLOCK : (bx + 1) * _BLOCK
        ] = np.clip(pred + residual, 0.0, 255.0)
    return recon


def encode_webp(image: ImageBuffer, quality: int = 75) -> bytes:
    """Encode with the WebP-like predictive codec (4:2:0, 8x8 transform)."""
    rgb255 = image.to_uint8().astype(np.float64)
    ycc = rgb_to_ycbcr(rgb255 / 255.0)
    y_plane = _pad_plane(ycc[..., 0] * 255.0, 16)
    cb = _pad_plane(_subsample_420(_pad_plane(ycc[..., 1] * 255.0 + 128.0, 2)), 8)
    cr = _pad_plane(_subsample_420(_pad_plane(ycc[..., 2] * 255.0 + 128.0, 2)), 8)

    y_step = _quality_to_step(quality, chroma=False)
    c_step = _quality_to_step(quality, chroma=True)
    payload = bytearray()
    for plane, step in ((y_plane, y_step), (cb, c_step), (cr, c_step)):
        encoded, _ = _encode_plane(plane, step)
        payload += struct.pack("<HHI", plane.shape[0], plane.shape[1], len(encoded))
        payload += encoded

    header = MAGIC + struct.pack("<HHB", image.width, image.height, quality)
    return header + kernels.entropy_deflate(bytes(payload), 6)


def decode_webp(data: bytes) -> ImageBuffer:
    """Decode a stream produced by :func:`encode_webp`."""
    if data[:4] != MAGIC:
        raise ValueError("not an RPWB (webp-like) stream")
    width, height, quality = struct.unpack("<HHB", data[4:9])
    payload = kernels.entropy_inflate(data[9:])

    y_step = _quality_to_step(quality, chroma=False)
    c_step = _quality_to_step(quality, chroma=True)
    planes = []
    pos = 0
    for step in (y_step, c_step, c_step):
        ph, pw, length = struct.unpack("<HHI", payload[pos : pos + 8])
        pos += 8
        chunk = payload[pos : pos + length]
        pos += length
        n_blocks = (ph // _BLOCK) * (pw // _BLOCK)
        modes = chunk[:n_blocks]
        coeffs = kernels.unpack_coefficients(chunk[n_blocks:])
        planes.append(_decode_plane(modes, coeffs, ph, pw, step))

    y_plane, cb, cr = planes
    cb = _upsample_2x_bilinear(cb)
    cr = _upsample_2x_bilinear(cr)
    y_plane = y_plane[:height, :width]
    cb = cb[:height, :width]
    cr = cr[:height, :width]
    ycc = np.stack(
        [y_plane / 255.0, (cb - 128.0) / 255.0, (cr - 128.0) / 255.0], axis=-1
    )
    rgb = np.clip(ycbcr_to_rgb(ycc), 0.0, 1.0)
    rgb8 = np.floor(rgb * 255.0 + 0.5).astype(np.uint8)
    return ImageBuffer.from_uint8(rgb8)
