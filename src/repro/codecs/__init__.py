"""Image compression codecs implemented from scratch.

``jpeg`` is a real baseline JFIF codec (DCT + Annex K tables + Huffman);
``png`` is a real lossless PNG (filters + DEFLATE + CRC); ``webp`` and
``heif`` are architecture-faithful stand-ins for VP8-intra and HEVC-intra
respectively; ``dng`` losslessly containers raw Bayer mosaics for the raw
inference mitigation path.
"""

from .dng import decode_dng, encode_dng
from .heif import decode_heif, encode_heif
from .jpeg import (
    JpegDecodeOptions,
    decode_jpeg,
    encode_jpeg,
    quality_scaled_tables,
)
from .png import decode_png, encode_png
from .registry import (
    Codec,
    available_codecs,
    decode_any,
    get_codec,
    register_codec,
    sniff_format,
)
from .webp import decode_webp, encode_webp

__all__ = [
    "Codec",
    "JpegDecodeOptions",
    "available_codecs",
    "decode_any",
    "decode_dng",
    "decode_heif",
    "decode_jpeg",
    "decode_png",
    "decode_webp",
    "encode_dng",
    "encode_heif",
    "encode_jpeg",
    "encode_png",
    "encode_webp",
    "get_codec",
    "quality_scaled_tables",
    "register_codec",
    "sniff_format",
]
