"""A from-scratch baseline JPEG (JFIF) encoder and decoder.

Implements the real ITU T.81 baseline path:

* full-range BT.601 RGB -> YCbCr,
* optional 4:2:0 chroma subsampling with interleaved MCUs,
* 8x8 orthonormal DCT, quality-scaled Annex K quantization tables,
* zig-zag scan, DC prediction, run/size AC coding,
* canonical Huffman entropy coding with the Annex K.3 tables,
* a proper marker stream (SOI, APP0/JFIF, DQT, SOF0, DHT, SOS, EOI)
  with 0xFF byte stuffing inside the entropy-coded segment.

The decoder is parameterized by :class:`JpegDecodeOptions` — the IDCT
implementation (float vs. fixed-point), final rounding mode, and chroma
upsampling filter. Those are exactly the degrees of freedom along which
real OS/vendor JPEG decoders differ, and they power the paper's §7
experiment (two phones in the Firebase fleet decode the same bytes to
different pixels, yielding 0.64% instability; PNG shows none).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..imaging.color import rgb_to_ycbcr, ycbcr_to_rgb
from ..imaging.image import ImageBuffer
from ..lint.contracts import tensor_contract
from .bitio import BitReader
from .dct import (
    block_dct,
    block_idct,
    block_idct_fixed_point,
    blockify,
    unblockify,
    zigzag_order,
)
from .huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    HuffmanTable,
)

# Entropy coding is dispatched through repro.kernels (reference or fast
# backend, bit-identical). Imported as the package object and accessed by
# attribute at call time so the codecs <-> kernels import cycle resolves
# in either order.
from .. import kernels

__all__ = [
    "encode_jpeg",
    "decode_jpeg",
    "jpeg_roundtrip_batch",
    "JpegDecodeOptions",
    "quality_scaled_tables",
    "BASE_LUMA_QUANT",
    "BASE_CHROMA_QUANT",
]

# ITU T.81 Annex K.1 / K.2 base quantization tables.
BASE_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)

BASE_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int64,
)


@lru_cache(maxsize=None)
def quality_scaled_tables(quality: int) -> Tuple[np.ndarray, np.ndarray]:
    """Scale the Annex K tables by the libjpeg/IJG quality convention.

    ``quality`` 1..100; 50 leaves the base tables unchanged, 100 gives
    near-lossless (all ones at exactly 100). Results are cached per
    quality and returned read-only so the shared arrays cannot be
    mutated through the cache.
    """
    if not 1 <= quality <= 100:
        raise ValueError("JPEG quality must be in 1..100")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    luma = np.clip((BASE_LUMA_QUANT * scale + 50) // 100, 1, 255).astype(np.int64)
    chroma = np.clip((BASE_CHROMA_QUANT * scale + 50) // 100, 1, 255).astype(np.int64)
    luma.setflags(write=False)
    chroma.setflags(write=False)
    return luma, chroma


# ----------------------------------------------------------------------
# Plane <-> quantized blocks
# ----------------------------------------------------------------------
def _plane_to_quantized_blocks(plane: np.ndarray, quant: np.ndarray) -> np.ndarray:
    """Level-shift, DCT, and quantize a padded plane into zig-zag blocks."""
    blocks = blockify(np.asarray(plane, dtype=np.float64) - 128.0, 8)
    coeffs = block_dct(blocks)
    quantized = np.round(coeffs / quant[None]).astype(np.int64)
    zz = zigzag_order(8)
    return quantized.reshape(-1, 64)[:, zz]


def _quantized_blocks_to_plane(
    blocks_zz: np.ndarray,
    quant: np.ndarray,
    height: int,
    width: int,
    idct: str,
) -> np.ndarray:
    """Dequantize, inverse-DCT, and reassemble a plane (values 0..255)."""
    zz = zigzag_order(8)
    raster = np.empty_like(blocks_zz)
    raster[:, zz] = blocks_zz
    coeffs = raster.reshape(-1, 8, 8).astype(np.float64) * quant[None]
    if idct == "float":
        spatial = block_idct(coeffs)
    elif idct == "fixed11":
        spatial = block_idct_fixed_point(coeffs, fraction_bits=11)
    elif idct == "fixed8":
        spatial = block_idct_fixed_point(coeffs, fraction_bits=8)
    else:
        raise ValueError(f"unknown IDCT variant {idct!r}")
    plane = unblockify(spatial, height, width) + 128.0
    return plane


def _pad_plane(plane: np.ndarray, multiple: int) -> np.ndarray:
    h, w = plane.shape
    pad_h = (-h) % multiple
    pad_w = (-w) % multiple
    if pad_h or pad_w:
        plane = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    return plane


def _subsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average chroma downsampling (even dims required).

    The explicit sum reproduces ``.mean(axis=(1, 3))`` bit-for-bit
    (same reduce order, and ``* 0.25`` is exact) at half the cost.
    """
    a = plane[0::2, 0::2]
    b = plane[0::2, 1::2]
    c = plane[1::2, 0::2]
    d = plane[1::2, 1::2]
    return ((a + b) + (c + d)) * 0.25


def _planes_to_quantized_blocks_batch(planes: np.ndarray, quant: np.ndarray) -> np.ndarray:
    """Batched :func:`_plane_to_quantized_blocks` over ``(N, H, W)`` planes.

    Deliberately not ``@tensor_contract``-annotated: the batch axis is
    folded into the block axis before the DCT (each 8x8 block transforms
    independently, so any leading-dim grouping is bit-identical — the
    property the codec batch tests pin), which SHAPE001's conservative
    reshape rule cannot prove.
    """
    n, h, w = planes.shape
    shifted = np.asarray(planes, dtype=np.float64) - 128.0
    blocks = (
        shifted.reshape(n, h // 8, 8, w // 8, 8)
        .transpose(0, 1, 3, 2, 4)
        .reshape(n * (h // 8) * (w // 8), 8, 8)
    )
    coeffs = block_dct(blocks)
    quantized = np.round(coeffs / quant[None]).astype(np.int64)
    zz = zigzag_order(8)
    return quantized.reshape(n, -1, 64)[:, :, zz]


def _quantized_blocks_to_planes_batch(
    blocks_zz: np.ndarray,
    quant: np.ndarray,
    height: int,
    width: int,
    idct: str,
) -> np.ndarray:
    """Batched :func:`_quantized_blocks_to_plane` over ``(N, nb, 64)`` blocks.

    Not contract-annotated for the same reason as the encoder-side helper:
    the block axis absorbs the batch axis around the (per-block
    independent) IDCT.
    """
    n = blocks_zz.shape[0]
    zz = zigzag_order(8)
    raster = np.empty_like(blocks_zz)
    raster[:, :, zz] = blocks_zz
    coeffs = raster.reshape(-1, 8, 8).astype(np.float64) * quant[None]
    if idct == "float":
        spatial = block_idct(coeffs)
    elif idct == "fixed11":
        spatial = block_idct_fixed_point(coeffs, fraction_bits=11)
    elif idct == "fixed8":
        spatial = block_idct_fixed_point(coeffs, fraction_bits=8)
    else:
        raise ValueError(f"unknown IDCT variant {idct!r}")
    rows, cols = height // 8, width // 8
    planes = (
        spatial.reshape(n, rows, cols, 8, 8)
        .transpose(0, 1, 3, 2, 4)
        .reshape(n, height, width)
    )
    return planes + 128.0


@tensor_contract("(N, ?, ?) float64, _ -> (N, ?, ?) float64")
def _pad_planes_batch(planes: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-pad each plane of an ``(N, H, W)`` stack to a dim multiple."""
    _n, h, w = planes.shape
    pad_h = (-h) % multiple
    pad_w = (-w) % multiple
    if pad_h or pad_w:
        planes = np.pad(planes, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge")
    return planes


@tensor_contract("(N, ?, ?) float64 -> (N, ?, ?) float64")
def _subsample_420_batch(planes: np.ndarray) -> np.ndarray:
    """Batched :func:`_subsample_420` over ``(N, H, W)`` chroma planes."""
    a = planes[:, 0::2, 0::2]
    b = planes[:, 0::2, 1::2]
    c = planes[:, 1::2, 0::2]
    d = planes[:, 1::2, 1::2]
    return ((a + b) + (c + d)) * 0.25


def _upsample_2x_nearest(plane: np.ndarray) -> np.ndarray:
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)


def _upsample_2x_bilinear(plane: np.ndarray) -> np.ndarray:
    """Triangle-filter ("fancy") chroma upsampling a la libjpeg."""
    h, w = plane.shape
    padded = np.pad(plane, 1, mode="edge")
    out = np.empty((2 * h, 2 * w), dtype=plane.dtype)
    # Each output sample mixes the nearest chroma sample (weight 3) with the
    # neighbour on each axis (weight 1) -> weights 9/3/3/1 over 16.
    c = padded[1:-1, 1:-1]
    up = padded[:-2, 1:-1]
    down = padded[2:, 1:-1]
    left = padded[1:-1, :-2]
    right = padded[1:-1, 2:]
    ul = padded[:-2, :-2]
    ur = padded[:-2, 2:]
    dl = padded[2:, :-2]
    dr = padded[2:, 2:]
    out[0::2, 0::2] = (9 * c + 3 * up + 3 * left + ul) / 16.0
    out[0::2, 1::2] = (9 * c + 3 * up + 3 * right + ur) / 16.0
    out[1::2, 0::2] = (9 * c + 3 * down + 3 * left + dl) / 16.0
    out[1::2, 1::2] = (9 * c + 3 * down + 3 * right + dr) / 16.0
    return out


@tensor_contract("(N, ?, ?) float64 -> (N, ?, ?) float64")
def _upsample_2x_nearest_batch(planes: np.ndarray) -> np.ndarray:
    return np.repeat(np.repeat(planes, 2, axis=1), 2, axis=2)


@tensor_contract("(N, ?, ?) float64 -> (N, ?, ?) float64")
def _upsample_2x_bilinear_batch(planes: np.ndarray) -> np.ndarray:
    """Batched :func:`_upsample_2x_bilinear` over ``(N, H, W)`` planes."""
    n, h, w = planes.shape
    padded = np.pad(planes, ((0, 0), (1, 1), (1, 1)), mode="edge")
    out = np.empty((n, 2 * h, 2 * w), dtype=planes.dtype)
    c = padded[:, 1:-1, 1:-1]
    up = padded[:, :-2, 1:-1]
    down = padded[:, 2:, 1:-1]
    left = padded[:, 1:-1, :-2]
    right = padded[:, 1:-1, 2:]
    ul = padded[:, :-2, :-2]
    ur = padded[:, :-2, 2:]
    dl = padded[:, 2:, :-2]
    dr = padded[:, 2:, 2:]
    out[:, 0::2, 0::2] = (9 * c + 3 * up + 3 * left + ul) / 16.0
    out[:, 0::2, 1::2] = (9 * c + 3 * up + 3 * right + ur) / 16.0
    out[:, 1::2, 0::2] = (9 * c + 3 * down + 3 * left + dl) / 16.0
    out[:, 1::2, 1::2] = (9 * c + 3 * down + 3 * right + dr) / 16.0
    return out


# ----------------------------------------------------------------------
# Marker segment writers
# ----------------------------------------------------------------------
def _segment(marker: int, payload: bytes) -> bytes:
    return struct.pack(">BBH", 0xFF, marker, len(payload) + 2) + payload


def _dqt_segment(table_id: int, quant: np.ndarray) -> bytes:
    zz = zigzag_order(8)
    body = bytes([table_id]) + bytes(int(v) for v in quant.reshape(64)[zz])
    return _segment(0xDB, body)


def _dht_segment(table_class: int, table_id: int, table: HuffmanTable) -> bytes:
    body = bytes([(table_class << 4) | table_id])
    body += bytes(table.bits)
    body += bytes(table.values)
    return _segment(0xC4, body)


_APP0_JFIF = _segment(0xE0, b"JFIF\x00\x01\x01\x00\x00\x01\x00\x01\x00\x00")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode_jpeg(
    image: ImageBuffer,
    quality: int = 85,
    subsampling: str = "4:2:0",
) -> bytes:
    """Encode an :class:`ImageBuffer` as a baseline JFIF byte stream.

    Parameters
    ----------
    image:
        RGB image; values are clipped to [0, 1] then quantized to 8 bits.
    quality:
        IJG-convention quality factor in 1..100.
    subsampling:
        ``"4:2:0"`` (default, what phone camera pipelines emit) or
        ``"4:4:4"``.
    """
    if subsampling not in ("4:2:0", "4:4:4"):
        raise ValueError(f"unsupported subsampling {subsampling!r}")
    luma_q, chroma_q = quality_scaled_tables(quality)

    rgb255 = image.to_uint8().astype(np.float64)
    ycc = np.asarray(rgb_to_ycbcr(rgb255 / 255.0), dtype=np.float64)
    y_plane = ycc[..., 0] * 255.0
    cb_plane = ycc[..., 1] * 255.0 + 128.0
    cr_plane = ycc[..., 2] * 255.0 + 128.0

    height, width = y_plane.shape
    if subsampling == "4:2:0":
        mcu = 16
        y_pad = _pad_plane(y_plane, mcu)
        cb_small = _subsample_420(_pad_plane(cb_plane, 2))
        cr_small = _subsample_420(_pad_plane(cr_plane, 2))
        cb_pad = _pad_plane(cb_small, 8)
        cr_pad = _pad_plane(cr_small, 8)
        h_samp, v_samp = 2, 2
    else:
        mcu = 8
        y_pad = _pad_plane(y_plane, mcu)
        cb_pad = _pad_plane(cb_plane, 8)
        cr_pad = _pad_plane(cr_plane, 8)
        h_samp, v_samp = 1, 1

    y_blocks = _plane_to_quantized_blocks(y_pad, luma_q)
    cb_blocks = _plane_to_quantized_blocks(cb_pad, chroma_q)
    cr_blocks = _plane_to_quantized_blocks(cr_pad, chroma_q)

    mcu_rows = y_pad.shape[0] // mcu
    mcu_cols = y_pad.shape[1] // mcu
    samplings = ((h_samp, v_samp), (1, 1), (1, 1))
    comp_of_unit, block_of_unit = kernels.scan_layout(mcu_rows, mcu_cols, samplings)
    entropy = kernels.encode_jpeg_scan(
        (y_blocks, cb_blocks, cr_blocks),
        comp_of_unit,
        block_of_unit,
        (STD_DC_LUMA, STD_DC_CHROMA, STD_DC_CHROMA),
        (STD_AC_LUMA, STD_AC_CHROMA, STD_AC_CHROMA),
    )

    sof = struct.pack(
        ">BHHB", 8, height, width, 3
    ) + bytes(
        [
            1, (h_samp << 4) | v_samp, 0,  # Y
            2, 0x11, 1,  # Cb
            3, 0x11, 1,  # Cr
        ]
    )
    sos = bytes([3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0])

    out = bytearray()
    out += b"\xff\xd8"  # SOI
    out += _APP0_JFIF
    out += _dqt_segment(0, luma_q)
    out += _dqt_segment(1, chroma_q)
    out += _segment(0xC0, sof)
    out += _dht_segment(0, 0, STD_DC_LUMA)
    out += _dht_segment(1, 0, STD_AC_LUMA)
    out += _dht_segment(0, 1, STD_DC_CHROMA)
    out += _dht_segment(1, 1, STD_AC_CHROMA)
    out += _segment(0xDA, sos)
    out += entropy
    out += b"\xff\xd9"  # EOI
    return bytes(out)


@dataclass(frozen=True)
class JpegDecodeOptions:
    """Decoder-implementation knobs along which real OS decoders differ.

    Attributes
    ----------
    idct:
        ``"float"`` (reference), ``"fixed11"`` or ``"fixed8"``
        (fixed-point approximations with 11 / 8 fractional bits).
    rounding:
        ``"round"`` (round-half-away, libjpeg-style) or ``"truncate"``
        when converting reconstructed samples to 8-bit.
    chroma_upsample:
        ``"bilinear"`` ("fancy" triangle filter) or ``"nearest"``
        (replication).
    """

    idct: str = "float"
    rounding: str = "round"
    chroma_upsample: str = "bilinear"


def decode_jpeg(data: bytes, options: JpegDecodeOptions | None = None) -> ImageBuffer:
    """Decode a baseline JFIF stream produced by :func:`encode_jpeg`.

    The decoder is a real marker-stream parser: it reads DQT/DHT tables and
    frame geometry from the file rather than assuming the encoder's
    defaults.
    """
    options = options or JpegDecodeOptions()
    if options.rounding not in ("round", "truncate"):
        raise ValueError(f"unknown rounding mode {options.rounding!r}")
    if options.chroma_upsample not in ("bilinear", "nearest"):
        raise ValueError(f"unknown upsampling {options.chroma_upsample!r}")

    if data[:2] != b"\xff\xd8":
        raise ValueError("not a JPEG stream (missing SOI)")

    pos = 2
    quant_tables: Dict[int, np.ndarray] = {}
    huff_tables: Dict[Tuple[int, int], HuffmanTable] = {}
    frame = None
    scan_components: List[Tuple[int, int, int]] = []
    entropy_start = None
    zz = zigzag_order(8)

    while pos < len(data):
        if data[pos] != 0xFF:
            raise ValueError(f"expected marker at offset {pos}")
        marker = data[pos + 1]
        pos += 2
        if marker == 0xD9:  # EOI
            break
        if marker in (0x01,) or 0xD0 <= marker <= 0xD7:
            continue  # parameterless markers
        length = struct.unpack(">H", data[pos : pos + 2])[0]
        payload = data[pos + 2 : pos + length]
        pos += length

        if marker == 0xDB:  # DQT
            offset = 0
            while offset < len(payload):
                pq_tq = payload[offset]
                precision, table_id = pq_tq >> 4, pq_tq & 0x0F
                if precision != 0:
                    raise ValueError("only 8-bit quant tables supported")
                table_zz = np.frombuffer(
                    payload[offset + 1 : offset + 65], dtype=np.uint8
                ).astype(np.int64)
                raster = np.empty(64, dtype=np.int64)
                raster[zz] = table_zz
                quant_tables[table_id] = raster.reshape(8, 8)
                offset += 65
        elif marker == 0xC4:  # DHT
            offset = 0
            while offset < len(payload):
                tc_th = payload[offset]
                table_class, table_id = tc_th >> 4, tc_th & 0x0F
                bits = list(payload[offset + 1 : offset + 17])
                count = sum(bits)
                values = list(payload[offset + 17 : offset + 17 + count])
                huff_tables[(table_class, table_id)] = HuffmanTable(bits, values)
                offset += 17 + count
        elif marker == 0xC0:  # SOF0 baseline
            precision, height, width, ncomp = struct.unpack(">BHHB", payload[:6])
            if precision != 8 or ncomp != 3:
                raise ValueError("only 8-bit 3-component baseline supported")
            comps = []
            for i in range(ncomp):
                cid, samp, tq = payload[6 + 3 * i : 9 + 3 * i]
                comps.append((cid, samp >> 4, samp & 0x0F, tq))
            frame = (height, width, comps)
        elif marker in (0xC1, 0xC2, 0xC3):
            raise ValueError("only baseline (SOF0) JPEG is supported")
        elif marker == 0xDA:  # SOS
            ns = payload[0]
            for i in range(ns):
                cid, tables = payload[1 + 2 * i : 3 + 2 * i]
                scan_components.append((cid, tables >> 4, tables & 0x0F))
            entropy_start = pos
            break
        # APPn / COM and anything else: skipped.

    if frame is None or entropy_start is None:
        raise ValueError("missing SOF/SOS segment")

    # Locate the end of the entropy-coded segment (EOI marker).
    end = data.rfind(b"\xff\xd9")
    if end < 0:
        raise ValueError("missing EOI")
    reader = BitReader(data[entropy_start:end], unstuff_ff=True)

    height, width, comps = frame
    h_max = max(c[1] for c in comps)
    v_max = max(c[2] for c in comps)
    mcu_w, mcu_h = 8 * h_max, 8 * v_max
    mcu_cols = -(-width // mcu_w)
    mcu_rows = -(-height // mcu_h)

    comp_info = {}
    for cid, h_s, v_s, tq in comps:
        dc_id, ac_id = next(
            (dc, ac) for scid, dc, ac in scan_components if scid == cid
        )
        blocks_w = mcu_cols * h_s
        blocks_h = mcu_rows * v_s
        comp_info[cid] = {
            "h": h_s,
            "v": v_s,
            "quant": quant_tables[tq],
            "dc_table": huff_tables[(0, dc_id)],
            "ac_table": huff_tables[(1, ac_id)],
            "n_blocks": blocks_h * blocks_w,
            "blocks_w": blocks_w,
        }

    order = [cid for cid, _h, _v, _tq in comps]
    samplings = tuple((h_s, v_s) for _cid, h_s, v_s, _tq in comps)
    comp_of_unit, block_of_unit = kernels.scan_layout(mcu_rows, mcu_cols, samplings)
    decoded = kernels.decode_jpeg_scan(
        reader,
        comp_of_unit,
        block_of_unit,
        [comp_info[cid]["dc_table"] for cid in order],
        [comp_info[cid]["ac_table"] for cid in order],
        [comp_info[cid]["n_blocks"] for cid in order],
    )
    for ci, cid in enumerate(order):
        comp_info[cid]["blocks"] = decoded[ci]

    planes = {}
    for cid, info in comp_info.items():
        plane_h = (info["blocks"].shape[0] // info["blocks_w"]) * 8
        plane_w = info["blocks_w"] * 8
        planes[cid] = _quantized_blocks_to_plane(
            info["blocks"], info["quant"], plane_h, plane_w, options.idct
        )

    y_plane = planes[1]
    cb_plane = planes[2]
    cr_plane = planes[3]
    y_info = comp_info[1]
    if y_info["h"] == 2 and y_info["v"] == 2:
        upsample = (
            _upsample_2x_bilinear
            if options.chroma_upsample == "bilinear"
            else _upsample_2x_nearest
        )
        cb_plane = upsample(cb_plane)
        cr_plane = upsample(cr_plane)

    y_plane = y_plane[:height, :width]
    cb_plane = cb_plane[:height, :width]
    cr_plane = cr_plane[:height, :width]

    ycc = np.stack(
        [y_plane / 255.0, (cb_plane - 128.0) / 255.0, (cr_plane - 128.0) / 255.0],
        axis=-1,
    )
    rgb = ycbcr_to_rgb(ycc) * 255.0
    rgb = np.clip(rgb, 0.0, 255.0)
    if options.rounding == "round":
        rgb8 = np.floor(rgb + 0.5).astype(np.uint8)
    else:
        rgb8 = rgb.astype(np.uint8)  # truncation
    return ImageBuffer.from_uint8(rgb8)


def jpeg_roundtrip_batch(
    images: Sequence[ImageBuffer],
    quality: int = 85,
    subsampling: str = "4:2:0",
    options: JpegDecodeOptions | None = None,
) -> List[Tuple[bytes, ImageBuffer]]:
    """Encode a batch and reconstruct each file's decoded pixels, fused.

    Returns ``[(data, decoded), ...]`` where item ``i`` is bit-identical
    to ``data = encode_jpeg(images[i], quality, subsampling)`` followed by
    ``decoded = decode_jpeg(data, options)`` — without re-parsing the
    bytes just produced. Two fusions make this fast:

    * the whole batch moves through the color/subsample/DCT front end as
      ``(N, H, W)`` plane stacks (every step is either elementwise or an
      independent per-block transform, so batching cannot change a bit);
      only the entropy coder runs per item, because each file's bit
      stream is its own;
    * the decode side starts from the encoder's own quantized zig-zag
      blocks. Entropy coding is lossless (``decode_scan(encode_scan(b))
      == b`` exactly — the kernels equivalence suite pins it) and the
      decoder's SOF-derived plane geometry and parsed DQT tables equal
      the encoder's by construction, so dequantize -> IDCT -> upsample ->
      color conversion over the same blocks reproduces ``decode_jpeg``'s
      output exactly while skipping the marker parse and the per-symbol
      Huffman walk.
    """
    options = options or JpegDecodeOptions()
    if options.rounding not in ("round", "truncate"):
        raise ValueError(f"unknown rounding mode {options.rounding!r}")
    if options.chroma_upsample not in ("bilinear", "nearest"):
        raise ValueError(f"unknown upsampling {options.chroma_upsample!r}")
    if subsampling not in ("4:2:0", "4:4:4"):
        raise ValueError(f"unsupported subsampling {subsampling!r}")
    images = list(images)
    if not images:
        return []
    if len({img.shape for img in images}) != 1:
        # Mixed geometry: no stack to fuse over; fall back per item.
        out = []
        for img in images:
            data = encode_jpeg(img, quality=quality, subsampling=subsampling)
            out.append((data, decode_jpeg(data, options)))
        return out

    luma_q, chroma_q = quality_scaled_tables(quality)

    rgb255 = np.stack([img.to_uint8() for img in images]).astype(np.float64)
    ycc = np.asarray(rgb_to_ycbcr(rgb255 / 255.0), dtype=np.float64)
    y_planes = ycc[..., 0] * 255.0
    cb_planes = ycc[..., 1] * 255.0 + 128.0
    cr_planes = ycc[..., 2] * 255.0 + 128.0

    n = len(images)
    height, width = y_planes.shape[1], y_planes.shape[2]
    if subsampling == "4:2:0":
        mcu = 16
        y_pad = _pad_planes_batch(y_planes, mcu)
        cb_small = _subsample_420_batch(_pad_planes_batch(cb_planes, 2))
        cr_small = _subsample_420_batch(_pad_planes_batch(cr_planes, 2))
        cb_pad = _pad_planes_batch(cb_small, 8)
        cr_pad = _pad_planes_batch(cr_small, 8)
        h_samp, v_samp = 2, 2
    else:
        mcu = 8
        y_pad = _pad_planes_batch(y_planes, mcu)
        cb_pad = _pad_planes_batch(cb_planes, 8)
        cr_pad = _pad_planes_batch(cr_planes, 8)
        h_samp, v_samp = 1, 1

    y_blocks = _planes_to_quantized_blocks_batch(y_pad, luma_q)
    cb_blocks = _planes_to_quantized_blocks_batch(cb_pad, chroma_q)
    cr_blocks = _planes_to_quantized_blocks_batch(cr_pad, chroma_q)

    mcu_rows = y_pad.shape[1] // mcu
    mcu_cols = y_pad.shape[2] // mcu
    samplings = ((h_samp, v_samp), (1, 1), (1, 1))
    comp_of_unit, block_of_unit = kernels.scan_layout(mcu_rows, mcu_cols, samplings)

    sof = struct.pack(
        ">BHHB", 8, height, width, 3
    ) + bytes(
        [
            1, (h_samp << 4) | v_samp, 0,  # Y
            2, 0x11, 1,  # Cb
            3, 0x11, 1,  # Cr
        ]
    )
    sos = bytes([3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0])
    header = bytearray()
    header += b"\xff\xd8"  # SOI
    header += _APP0_JFIF
    header += _dqt_segment(0, luma_q)
    header += _dqt_segment(1, chroma_q)
    header += _segment(0xC0, sof)
    header += _dht_segment(0, 0, STD_DC_LUMA)
    header += _dht_segment(1, 0, STD_AC_LUMA)
    header += _dht_segment(0, 1, STD_DC_CHROMA)
    header += _dht_segment(1, 1, STD_AC_CHROMA)
    header += _segment(0xDA, sos)
    header = bytes(header)

    datas: List[bytes] = []
    for i in range(n):
        entropy = kernels.encode_jpeg_scan(
            (y_blocks[i], cb_blocks[i], cr_blocks[i]),
            comp_of_unit,
            block_of_unit,
            (STD_DC_LUMA, STD_DC_CHROMA, STD_DC_CHROMA),
            (STD_AC_LUMA, STD_AC_CHROMA, STD_AC_CHROMA),
        )
        datas.append(header + entropy + b"\xff\xd9")

    # Reconstruct from the encoder's own quantized blocks: the decoder's
    # SOF-derived padded dims equal the encoder's padded dims, and its
    # parsed DQT tables roundtrip exactly (values <= 255).
    y_rec = _quantized_blocks_to_planes_batch(
        y_blocks, luma_q, y_pad.shape[1], y_pad.shape[2], options.idct
    )
    cb_rec = _quantized_blocks_to_planes_batch(
        cb_blocks, chroma_q, cb_pad.shape[1], cb_pad.shape[2], options.idct
    )
    cr_rec = _quantized_blocks_to_planes_batch(
        cr_blocks, chroma_q, cr_pad.shape[1], cr_pad.shape[2], options.idct
    )
    if subsampling == "4:2:0":
        upsample = (
            _upsample_2x_bilinear_batch
            if options.chroma_upsample == "bilinear"
            else _upsample_2x_nearest_batch
        )
        cb_rec = upsample(cb_rec)
        cr_rec = upsample(cr_rec)

    y_rec = y_rec[:, :height, :width]
    cb_rec = cb_rec[:, :height, :width]
    cr_rec = cr_rec[:, :height, :width]

    ycc_rec = np.stack(
        [y_rec / 255.0, (cb_rec - 128.0) / 255.0, (cr_rec - 128.0) / 255.0],
        axis=-1,
    )
    rgb = ycbcr_to_rgb(ycc_rec) * 255.0
    rgb = np.clip(rgb, 0.0, 255.0)
    if options.rounding == "round":
        rgb8 = np.floor(rgb + 0.5).astype(np.uint8)
    else:
        rgb8 = rgb.astype(np.uint8)  # truncation
    return [(datas[i], ImageBuffer.from_uint8(rgb8[i])) for i in range(n)]
