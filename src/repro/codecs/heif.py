"""A HEIF/HEVC-intra-style codec: large transform blocks + deadzone quantizer.

Like the WebP stand-in, this is architecture-faithful rather than
bit-compatible: HEVC intra coding's distinguishing features relative to
JPEG are its larger transform units (we use 16x16), a frequency-ramp
quantization matrix, and a deadzone quantizer that zeroes small
coefficients more aggressively than round-to-nearest. Those choices give
it HEIF's signature behaviour — better rate/distortion than JPEG at the
same perceptual quality, with smoother large-area reconstruction and
different edge artefacts — so heif-vs-jpeg round trips diverge the way
the paper's Table 3 measures.

Bitstream layout (magic ``RPHF``)::

    RPHF | u16 width | u16 height | u8 quality |
    zlib( per-plane: u16 h | u16 w | int16 coefficient stream )
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..imaging.color import rgb_to_ycbcr, ycbcr_to_rgb
from ..imaging.image import ImageBuffer
from .dct import block_dct, block_idct, blockify, unblockify
from .jpeg import _pad_plane, _subsample_420, _upsample_2x_bilinear

# Coefficient serialization and DEFLATE dispatch through repro.kernels.
from .. import kernels

__all__ = ["encode_heif", "decode_heif"]

MAGIC = b"RPHF"
_BLOCK = 16
_DEADZONE = 0.35  # quantizer rounding offset; < 0.5 biases toward zero


def _quant_matrix(quality: int, chroma: bool) -> np.ndarray:
    """A frequency-ramp quantization matrix for 16x16 blocks.

    Low frequencies are finely quantized, high frequencies coarsely, with
    the overall scale driven by quality (1..100) in the same exponential
    spirit as HEVC's QP -> step mapping (step doubles every 6 QP).
    """
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    base = 2.0 ** ((60.0 - 0.55 * quality) / 6.0)
    freq = np.add.outer(np.arange(_BLOCK), np.arange(_BLOCK)) / (2 * (_BLOCK - 1))
    ramp = 1.0 + 3.0 * freq**1.5
    matrix = base * ramp
    if chroma:
        matrix = matrix * 1.6
    return np.maximum(matrix, 0.4)


def _deadzone_quantize(coeffs: np.ndarray, quant: np.ndarray) -> np.ndarray:
    scaled = coeffs / quant[None]
    return (np.sign(scaled) * np.floor(np.abs(scaled) + _DEADZONE)).astype(np.int16)


def _encode_plane(plane: np.ndarray, quant: np.ndarray) -> bytes:
    blocks = blockify(plane - 128.0, _BLOCK)
    coeffs = block_dct(blocks)
    quantized = _deadzone_quantize(coeffs, quant)
    return struct.pack("<HH", *plane.shape) + kernels.pack_coefficients(quantized)


def _decode_plane(data: bytes, quant: np.ndarray) -> tuple[np.ndarray, int]:
    h, w = struct.unpack("<HH", data[:4])
    count = (h // _BLOCK) * (w // _BLOCK) * _BLOCK * _BLOCK
    quantized = kernels.unpack_coefficients(data[4 : 4 + 2 * count]).astype(np.float64)
    coeffs = quantized.reshape(-1, _BLOCK, _BLOCK) * quant[None]
    spatial = block_idct(coeffs) + 128.0
    return np.clip(unblockify(spatial, h, w), 0.0, 255.0), 4 + 2 * count


def encode_heif(image: ImageBuffer, quality: int = 80) -> bytes:
    """Encode with the HEIF-like codec (4:2:0, 16x16 transform units)."""
    rgb255 = image.to_uint8().astype(np.float64)
    ycc = rgb_to_ycbcr(rgb255 / 255.0)
    y_plane = _pad_plane(ycc[..., 0] * 255.0, _BLOCK)
    cb = _pad_plane(_subsample_420(_pad_plane(ycc[..., 1] * 255.0 + 128.0, 2)), _BLOCK)
    cr = _pad_plane(_subsample_420(_pad_plane(ycc[..., 2] * 255.0 + 128.0, 2)), _BLOCK)

    luma_q = _quant_matrix(quality, chroma=False)
    chroma_q = _quant_matrix(quality, chroma=True)
    payload = (
        _encode_plane(y_plane, luma_q)
        + _encode_plane(cb, chroma_q)
        + _encode_plane(cr, chroma_q)
    )
    header = MAGIC + struct.pack("<HHB", image.width, image.height, quality)
    return header + kernels.entropy_deflate(payload, 6)


def decode_heif(data: bytes) -> ImageBuffer:
    """Decode a stream produced by :func:`encode_heif`."""
    if data[:4] != MAGIC:
        raise ValueError("not an RPHF (heif-like) stream")
    width, height, quality = struct.unpack("<HHB", data[4:9])
    payload = kernels.entropy_inflate(data[9:])

    luma_q = _quant_matrix(quality, chroma=False)
    chroma_q = _quant_matrix(quality, chroma=True)
    y_plane, used = _decode_plane(payload, luma_q)
    cb, used2 = _decode_plane(payload[used:], chroma_q)
    cr, _ = _decode_plane(payload[used + used2 :], chroma_q)

    cb = _upsample_2x_bilinear(cb)
    cr = _upsample_2x_bilinear(cr)
    y_plane = y_plane[:height, :width]
    cb = cb[:height, :width]
    cr = cr[:height, :width]
    ycc = np.stack(
        [y_plane / 255.0, (cb - 128.0) / 255.0, (cr - 128.0) / 255.0], axis=-1
    )
    rgb = np.clip(ycbcr_to_rgb(ycc), 0.0, 1.0)
    rgb8 = np.floor(rgb * 255.0 + 0.5).astype(np.uint8)
    return ImageBuffer.from_uint8(rgb8)
