"""Bit-level I/O used by the entropy coders.

``BitWriter``/``BitReader`` operate MSB-first, matching the JPEG bitstream
convention. The JPEG-specific 0xFF byte-stuffing lives here too, controlled
by a flag, so the Huffman layer stays format-agnostic.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer.

    Parameters
    ----------
    stuff_ff:
        When True, every emitted ``0xFF`` byte is followed by a ``0x00``
        stuffing byte, as required inside a JPEG entropy-coded segment.
    """

    def __init__(self, stuff_ff: bool = False) -> None:
        self._buffer = bytearray()
        self._accum = 0
        self._nbits = 0
        self._stuff_ff = stuff_ff

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._accum = (self._accum << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._accum >> self._nbits) & 0xFF
            self._buffer.append(byte)
            if self._stuff_ff and byte == 0xFF:
                self._buffer.append(0x00)
        self._accum &= (1 << self._nbits) - 1

    def flush(self, fill_bit: int = 1) -> None:
        """Pad the final partial byte with ``fill_bit`` (JPEG pads with 1s)."""
        if self._nbits:
            pad = 8 - self._nbits
            filler = (1 << pad) - 1 if fill_bit else 0
            byte = ((self._accum << pad) | filler) & 0xFF
            self._accum = 0
            self._nbits = 0
            self.write_bits(byte, 8)

    def getvalue(self) -> bytes:
        if self._nbits:
            raise RuntimeError("flush() before reading the buffer")
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class BitReader:
    """Reads bits MSB-first from a byte buffer.

    Parameters
    ----------
    unstuff_ff:
        When True, a ``0x00`` byte following ``0xFF`` is skipped (JPEG
        entropy-coded-segment convention). A ``0xFF`` followed by anything
        else signals a marker; reading past it raises ``EOFError``.
    """

    def __init__(self, data: bytes, unstuff_ff: bool = False) -> None:
        self._data = data
        self._pos = 0
        self._accum = 0
        self._nbits = 0
        self._unstuff_ff = unstuff_ff

    def _pull_byte(self) -> None:
        if self._pos >= len(self._data):
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos]
        self._pos += 1
        if self._unstuff_ff and byte == 0xFF:
            if self._pos >= len(self._data):
                raise EOFError("truncated stuffing byte")
            nxt = self._data[self._pos]
            if nxt == 0x00:
                self._pos += 1
            else:
                raise EOFError(f"hit marker 0xFF{nxt:02X} inside entropy data")
        self._accum = (self._accum << 8) | byte
        self._nbits += 8

    def read_bit(self) -> int:
        if self._nbits == 0:
            self._pull_byte()
        self._nbits -= 1
        bit = (self._accum >> self._nbits) & 1
        self._accum &= (1 << self._nbits) - 1
        return bit

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits MSB-first and return them as an int."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value

    @property
    def bits_remaining(self) -> int:
        """Bits buffered plus bytes not yet pulled (upper bound)."""
        return self._nbits + 8 * (len(self._data) - self._pos)
