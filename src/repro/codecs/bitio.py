"""Bit-level I/O used by the entropy coders.

``BitWriter``/``BitReader`` operate MSB-first, matching the JPEG bitstream
convention. The JPEG-specific 0xFF byte-stuffing lives here too, controlled
by a flag, so the Huffman layer stays format-agnostic.

Both classes buffer whole words: ``write_bits`` drains every complete byte
of the accumulator in one ``int.to_bytes`` call, and ``read_bits`` refills
the accumulator a byte at a time but extracts any request in a single
shift — O(1) amortized per call instead of per bit. ``BitReader`` also
exposes :meth:`BitReader.peek_window` for table-driven (LUT) Huffman
decoders that need the next N bits without committing to consuming them.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer.

    Parameters
    ----------
    stuff_ff:
        When True, every emitted ``0xFF`` byte is followed by a ``0x00``
        stuffing byte, as required inside a JPEG entropy-coded segment.
    """

    def __init__(self, stuff_ff: bool = False) -> None:
        self._buffer = bytearray()
        self._accum = 0
        self._nbits = 0
        self._stuff_ff = stuff_ff

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._accum = (self._accum << nbits) | value
        self._nbits += nbits
        if self._nbits >= 8:
            nbytes = self._nbits >> 3
            self._nbits &= 7
            chunk = (self._accum >> self._nbits).to_bytes(nbytes, "big")
            self._accum &= (1 << self._nbits) - 1
            if self._stuff_ff and b"\xff" in chunk:
                for byte in chunk:
                    self._buffer.append(byte)
                    if byte == 0xFF:
                        self._buffer.append(0x00)
            else:
                self._buffer += chunk

    def flush(self, fill_bit: int = 1) -> None:
        """Pad the final partial byte with ``fill_bit`` (JPEG pads with 1s)."""
        if self._nbits:
            pad = 8 - self._nbits
            filler = (1 << pad) - 1 if fill_bit else 0
            byte = ((self._accum << pad) | filler) & 0xFF
            self._accum = 0
            self._nbits = 0
            self.write_bits(byte, 8)

    def getvalue(self) -> bytes:
        if self._nbits:
            raise RuntimeError("flush() before reading the buffer")
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class BitReader:
    """Reads bits MSB-first from a byte buffer.

    Parameters
    ----------
    unstuff_ff:
        When True, a ``0x00`` byte following ``0xFF`` is skipped (JPEG
        entropy-coded-segment convention). A ``0xFF`` followed by anything
        else signals a marker; reading past it raises ``EOFError``.

    The reader refills greedily (e.g. for :meth:`peek_window`) but defers
    end-of-data errors: hitting the end of the buffer or a marker only
    records the condition, and ``EOFError`` is raised at the moment a
    read actually needs bits that are not there — the same call that
    would have raised under byte-at-a-time pulling.
    """

    def __init__(self, data: bytes, unstuff_ff: bool = False) -> None:
        self._data = data
        self._pos = 0
        self._accum = 0
        self._nbits = 0
        self._unstuff_ff = unstuff_ff
        self._stop: Optional[str] = None

    def _refill(self, target: int) -> None:
        """Pull bytes until ``target`` bits are buffered or input ends."""
        data = self._data
        end = len(data)
        while self._nbits < target and self._stop is None:
            if self._pos >= end:
                self._stop = "bitstream exhausted"
                break
            byte = data[self._pos]
            self._pos += 1
            if self._unstuff_ff and byte == 0xFF:
                if self._pos >= end:
                    self._stop = "truncated stuffing byte"
                    break
                nxt = data[self._pos]
                if nxt == 0x00:
                    self._pos += 1
                else:
                    self._stop = f"hit marker 0xFF{nxt:02X} inside entropy data"
                    break
            self._accum = (self._accum << 8) | byte
            self._nbits += 8

    def read_bit(self) -> int:
        return self.read_bits(1)

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits MSB-first and return them as an int."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return 0
        if self._nbits < nbits:
            self._refill(nbits)
            if self._nbits < nbits:
                raise EOFError(self._stop)
        self._nbits -= nbits
        value = self._accum >> self._nbits
        self._accum &= (1 << self._nbits) - 1
        return value

    def peek_window(self, nbits: int = 16) -> Tuple[int, int]:
        """Look at the next ``nbits`` bits without consuming them.

        Returns ``(window, avail)``: ``window`` is the upcoming bits
        left-aligned in an ``nbits``-wide integer (zero-padded on the
        right when fewer than ``nbits`` remain) and ``avail`` is how many
        of those bits are real, capped at ``nbits``. Never raises; a
        subsequent :meth:`read_bits` past ``avail`` reports the error.
        """
        if self._nbits < nbits:
            self._refill(nbits)
        avail = self._nbits
        if avail >= nbits:
            return (self._accum >> (avail - nbits)) & ((1 << nbits) - 1), nbits
        return (self._accum << (nbits - avail)) & ((1 << nbits) - 1), avail

    @property
    def bits_remaining(self) -> int:
        """Bits buffered plus bytes not yet pulled (upper bound)."""
        return self._nbits + 8 * (len(self._data) - self._pos)
