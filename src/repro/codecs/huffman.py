"""Canonical Huffman coding in the JPEG (ITU T.81 Annex C/K) style.

A table is described the way JPEG's DHT segment describes it: ``bits[i]`` is
the number of codes of length ``i+1`` and ``values`` lists the symbols in
canonical order. :class:`HuffmanTable` derives the actual codes and supports
both encoding (symbol -> (code, length)) and bit-serial decoding.

The standard Annex K tables used by virtually every baseline JPEG encoder
are included as module constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bitio import BitReader, BitWriter

__all__ = [
    "HuffmanTable",
    "STD_DC_LUMA",
    "STD_DC_CHROMA",
    "STD_AC_LUMA",
    "STD_AC_CHROMA",
]


class HuffmanTable:
    """A canonical Huffman code defined by (bits, values), JPEG-style."""

    def __init__(self, bits: Sequence[int], values: Sequence[int]) -> None:
        if len(bits) != 16:
            raise ValueError("bits must have 16 entries (code lengths 1..16)")
        if sum(bits) != len(values):
            raise ValueError(
                f"values length {len(values)} does not match sum(bits)={sum(bits)}"
            )
        self.bits: Tuple[int, ...] = tuple(int(b) for b in bits)
        self.values: Tuple[int, ...] = tuple(int(v) for v in values)

        # Canonical code assignment (T.81 Annex C).
        self._encode: Dict[int, Tuple[int, int]] = {}
        self._decode: Dict[Tuple[int, int], int] = {}
        code = 0
        k = 0
        for length in range(1, 17):
            for _ in range(self.bits[length - 1]):
                symbol = self.values[k]
                if symbol in self._encode:
                    raise ValueError(f"duplicate symbol {symbol} in Huffman table")
                if code >= (1 << length):
                    raise ValueError("over-subscribed Huffman table")
                self._encode[symbol] = (code, length)
                self._decode[(length, code)] = symbol
                code += 1
                k += 1
            code <<= 1

        # Lazily-built acceleration structures for the fast kernels.
        self._encode_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._peek_table: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Append the code for ``symbol`` to ``writer``."""
        try:
            code, length = self._encode[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol} not in Huffman table") from None
        writer.write_bits(code, length)

    def code_length(self, symbol: int) -> int:
        return self._encode[symbol][1]

    def __contains__(self, symbol: int) -> bool:
        return symbol in self._encode

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one symbol bit-serially from ``reader``."""
        code = 0
        for length in range(1, 17):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode.get((length, code))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code (no symbol within 16 bits)")

    # ------------------------------------------------------------------
    # Acceleration structures (built once per table, cached on instance)
    # ------------------------------------------------------------------
    def encode_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(codes, lengths)`` int64 arrays indexed by symbol.

        ``lengths[s] == 0`` marks a symbol absent from the table (no
        valid JPEG code has length 0). Arrays are read-only so they can
        be shared freely across vectorized encode calls.
        """
        if self._encode_arrays is None:
            codes = np.zeros(256, dtype=np.int64)
            lengths = np.zeros(256, dtype=np.int64)
            for symbol, (code, length) in self._encode.items():
                if not 0 <= symbol < 256:
                    raise ValueError(f"symbol {symbol} outside byte range")
                codes[symbol] = code
                lengths[symbol] = length
            codes.setflags(write=False)
            lengths.setflags(write=False)
            self._encode_arrays = (codes, lengths)
        return self._encode_arrays

    def peek_table(self) -> List[int]:
        """A 65536-entry LUT mapping a 16-bit lookahead window to
        ``(code_length << 8) | symbol``; 0 marks an invalid prefix.

        Because the code is prefix-free, every 16-bit window starting
        with a valid code maps to that code regardless of the trailing
        bits — so a zero-padded window (near end of stream) still
        resolves correctly whenever the true code fits in the bits that
        remain.
        """
        if self._peek_table is None:
            table = [0] * 65536
            for (length, code), symbol in self._decode.items():
                if not 0 <= symbol < 256:
                    raise ValueError(f"symbol {symbol} outside byte range")
                base = code << (16 - length)
                entry = (length << 8) | symbol
                for window in range(base, base + (1 << (16 - length))):
                    table[window] = entry
            self._peek_table = table
        return self._peek_table

    # ------------------------------------------------------------------
    @classmethod
    def from_frequencies(cls, freqs: Dict[int, int], max_length: int = 16) -> "HuffmanTable":
        """Build a length-limited canonical table from symbol frequencies.

        Uses the classic package-merge-free heuristic JPEG encoders use:
        build an optimal Huffman tree, then rebalance any code longer than
        ``max_length``. Adequate for custom tables in tests and the
        WebP/HEIF stand-in codecs.
        """
        if not freqs:
            raise ValueError("cannot build a Huffman table with no symbols")
        import heapq

        heap: List[Tuple[int, int, object]] = []
        for i, (sym, f) in enumerate(sorted(freqs.items())):
            if f <= 0:
                raise ValueError("frequencies must be positive")
            heap.append((f, i, sym))
        heapq.heapify(heap)
        counter = len(heap)
        if len(heap) == 1:
            # Degenerate single-symbol alphabet: give it a 1-bit code.
            sym = heap[0][2]
            bits = [0] * 16
            bits[0] = 1
            return cls(bits, [sym])  # type: ignore[list-item]
        while len(heap) > 1:
            f1, _, left = heapq.heappop(heap)
            f2, _, right = heapq.heappop(heap)
            heapq.heappush(heap, (f1 + f2, counter, (left, right)))
            counter += 1
        lengths: Dict[int, int] = {}

        def walk(node: object, depth: int) -> None:
            if isinstance(node, tuple):
                walk(node[0], depth + 1)
                walk(node[1], depth + 1)
            else:
                lengths[node] = max(depth, 1)  # type: ignore[index]

        walk(heap[0][2], 0)

        # Length-limit by demoting overlong codes (rare at our scales).
        overflow = sorted(s for s, l in lengths.items() if l > max_length)
        for sym in overflow:
            lengths[sym] = max_length
        while True:
            # Kraft inequality check; demote shallow codes if violated.
            kraft = sum(2.0 ** -l for l in lengths.values())
            if kraft <= 1.0 + 1e-12:
                break
            deepest_ok = max(
                (s for s, l in lengths.items() if l < max_length),
                key=lambda s: lengths[s],
            )
            lengths[deepest_ok] += 1

        bits = [0] * 16
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        values = []
        for sym, length in ordered:
            bits[length - 1] += 1
            values.append(sym)
        return cls(bits, values)


# ----------------------------------------------------------------------
# ITU T.81 Annex K.3 standard tables.
# ----------------------------------------------------------------------
STD_DC_LUMA = HuffmanTable(
    bits=[0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
    values=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
)

STD_DC_CHROMA = HuffmanTable(
    bits=[0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
    values=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
)

STD_AC_LUMA = HuffmanTable(
    bits=[0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D],
    values=[
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
        0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
        0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
        0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
        0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
        0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
        0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
        0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
        0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
        0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
        0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
        0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
        0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
        0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
        0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
        0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
        0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
        0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
        0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ],
)

STD_AC_CHROMA = HuffmanTable(
    bits=[0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77],
    values=[
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
        0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
        0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
        0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
        0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
        0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
        0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
        0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
        0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
        0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
        0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
        0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
        0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
        0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
        0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
        0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
        0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
        0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
        0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ],
)
