"""A from-scratch PNG encoder and decoder (8-bit truecolor).

Implements the real PNG container — signature, IHDR/IDAT/IEND chunks with
CRC-32 — and the full filter set (None, Sub, Up, Average, Paeth) with the
standard minimum-sum-of-absolute-differences filter heuristic, over zlib
DEFLATE (the actual PNG compression method).

PNG is lossless, which matters for the reproduction: the paper's §7
finding that PNG inputs show *zero* instability across OS decoders falls
out of the format's determinism, and our implementation preserves that
property (decode is exact byte-for-byte inverse of encode).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..imaging.image import ImageBuffer

# Filtering and DEFLATE dispatch through repro.kernels (reference or fast
# backend, byte-identical). Imported as the package object so the
# codecs <-> kernels import cycle resolves in either order.
from .. import kernels

__all__ = ["encode_png", "decode_png", "PNG_SIGNATURE"]

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    crc = zlib.crc32(tag + payload) & 0xFFFFFFFF
    return struct.pack(">I", len(payload)) + tag + payload + struct.pack(">I", crc)


def _unfilter_scanlines(filtered: bytes, height: int, rowbytes: int) -> np.ndarray:
    """Invert PNG filtering; returns the ``(H, rowbytes)`` uint8 matrix."""
    bpp = 3
    raw = np.zeros((height, rowbytes), dtype=np.uint8)
    stride = rowbytes + 1
    if len(filtered) != height * stride:
        raise ValueError("filtered data length mismatch")
    prev = np.zeros(rowbytes, dtype=np.uint8)
    for r in range(height):
        ftype = filtered[r * stride]
        row = np.frombuffer(
            filtered, dtype=np.uint8, count=rowbytes, offset=r * stride + 1
        ).copy()
        if ftype == 0:
            pass
        elif ftype == 1:  # Sub — sequential on pixel axis
            for i in range(bpp, rowbytes):
                row[i] = (int(row[i]) + int(row[i - bpp])) & 0xFF
        elif ftype == 2:  # Up
            row = (row.astype(np.int16) + prev).astype(np.uint8)
        elif ftype == 3:  # Average
            for i in range(rowbytes):
                left = int(row[i - bpp]) if i >= bpp else 0
                row[i] = (int(row[i]) + (left + int(prev[i])) // 2) & 0xFF
        elif ftype == 4:  # Paeth
            for i in range(rowbytes):
                a = int(row[i - bpp]) if i >= bpp else 0
                b = int(prev[i])
                c = int(prev[i - bpp]) if i >= bpp else 0
                p = a + b - c
                pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
                pred = a if (pa <= pb and pa <= pc) else (b if pb <= pc else c)
                row[i] = (int(row[i]) + pred) & 0xFF
        else:
            raise ValueError(f"unknown PNG filter type {ftype}")
        raw[r] = row
        prev = row
    return raw


def encode_png(image: ImageBuffer, compress_level: int = 6) -> bytes:
    """Encode an :class:`ImageBuffer` as an 8-bit truecolor PNG."""
    rgb = image.to_uint8()
    height, width = rgb.shape[:2]
    raw = rgb.reshape(height, width * 3)
    filtered = kernels.png_filter_scanlines(raw)
    idat = kernels.entropy_deflate(filtered, compress_level)

    ihdr = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    return (
        PNG_SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", idat)
        + _chunk(b"IEND", b"")
    )


def decode_png(data: bytes, verify_crc: bool = True) -> ImageBuffer:
    """Decode an 8-bit truecolor PNG produced by :func:`encode_png`.

    Handles multiple IDAT chunks and verifies chunk CRCs (disable with
    ``verify_crc=False`` for fuzzing tests).
    """
    if data[:8] != PNG_SIGNATURE:
        raise ValueError("not a PNG stream")
    pos = 8
    width = height = None
    idat = bytearray()
    while pos < len(data):
        length = struct.unpack(">I", data[pos : pos + 4])[0]
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        crc = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        if verify_crc and (zlib.crc32(tag + payload) & 0xFFFFFFFF) != crc:
            raise ValueError(f"CRC mismatch in {tag!r} chunk")
        pos += 12 + length
        if tag == b"IHDR":
            width, height, depth, ctype, comp, filt, inter = struct.unpack(
                ">IIBBBBB", payload
            )
            if (depth, ctype, comp, filt, inter) != (8, 2, 0, 0, 0):
                raise ValueError("only 8-bit non-interlaced truecolor supported")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
    if width is None or height is None:
        raise ValueError("missing IHDR")
    filtered = kernels.entropy_inflate(bytes(idat))
    raw = _unfilter_scanlines(filtered, height, width * 3)
    rgb = raw.reshape(height, width, 3)
    return ImageBuffer.from_uint8(rgb)
