"""Lossless serialization of raw sensor data (a DNG stand-in).

The paper's §9.2 mitigation has phones shoot raw DNG files which are then
converted off-device by a *consistent* software ISP. This module provides
the raw container for that path: the Bayer mosaic is stored as 16-bit
fixed-point samples with the calibration metadata needed to reprocess it
(CFA pattern, black/white levels, as-shot white balance), compressed with
DEFLATE. The round trip is exact at 16-bit precision, which is what makes
the raw path *consistent* across devices in the reproduction.

Layout (magic ``RPDN``)::

    RPDN | u16 height | u16 width | 4s pattern | f32 black | f32 white |
    3 x f32 wb gains | zlib(u16 big-endian mosaic samples)
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..imaging.image import RawImage

__all__ = ["encode_dng", "decode_dng"]

MAGIC = b"RPDN"
_SCALE = 65535.0


def encode_dng(raw: RawImage, compress_level: int = 6) -> bytes:
    """Serialize a :class:`RawImage` losslessly (16-bit fixed point)."""
    mosaic16 = np.clip(np.round(raw.mosaic * _SCALE), 0, 65535).astype(">u2")
    header = MAGIC + struct.pack(
        ">HH4sff3f",
        raw.height,
        raw.width,
        raw.pattern.encode("ascii"),
        raw.black_level,
        raw.white_level,
        *raw.wb_gains,
    )
    return header + zlib.compress(mosaic16.tobytes(), compress_level)


def decode_dng(data: bytes) -> RawImage:
    """Deserialize a raw container produced by :func:`encode_dng`."""
    if data[:4] != MAGIC:
        raise ValueError("not an RPDN (raw) stream")
    header_size = 4 + struct.calcsize(">HH4sff3f")
    height, width, pattern, black, white, g_r, g_g, g_b = struct.unpack(
        ">HH4sff3f", data[4:header_size]
    )
    mosaic16 = np.frombuffer(zlib.decompress(data[header_size:]), dtype=">u2")
    mosaic = (mosaic16.astype(np.float32) / _SCALE).reshape(height, width)
    return RawImage(
        mosaic=mosaic,
        pattern=pattern.decode("ascii"),
        black_level=black,
        white_level=white,
        wb_gains=(g_r, g_g, g_b),
    )
