"""Block DCT utilities shared by the lossy codecs.

Implements the orthonormal type-II DCT (and its inverse, type-III) on
batches of ``B x B`` blocks via a single matrix multiply per side — the
whole image's blocks are transformed in one vectorized einsum.

A fixed-point forward/inverse path mirrors the integer DCT approximations
real decoders use; the OS-simulation layer uses it to model why two phones'
OS JPEG decoders can produce different pixels from identical bytes
(paper §7).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "dct_matrix",
    "blockify",
    "unblockify",
    "block_dct",
    "block_idct",
    "block_idct_fixed_point",
    "zigzag_order",
]


@lru_cache(maxsize=None)
def dct_matrix(size: int) -> np.ndarray:
    """The orthonormal type-II DCT matrix of the given size.

    Row ``k`` holds ``c(k) * cos((2n + 1) k pi / 2N)`` so that
    ``X = D @ x`` is the 1-D DCT and ``x = D.T @ X`` its inverse.
    """
    if size < 2:
        raise ValueError("DCT size must be >= 2")
    n = np.arange(size)
    k = n.reshape(-1, 1)
    mat = np.cos((2 * n + 1) * k * np.pi / (2 * size))
    mat[0] *= 1.0 / np.sqrt(2.0)
    mat *= np.sqrt(2.0 / size)
    return mat.astype(np.float64)


def blockify(plane: np.ndarray, block: int) -> np.ndarray:
    """Split an ``(H, W)`` plane into ``(n_blocks, block, block)``.

    ``H`` and ``W`` must be multiples of ``block``. Blocks are ordered
    row-major, which is also JPEG's MCU order for non-interleaved planes.
    """
    h, w = plane.shape
    if h % block or w % block:
        raise ValueError(f"plane {h}x{w} not divisible into {block}x{block} blocks")
    reshaped = plane.reshape(h // block, block, w // block, block)
    return reshaped.transpose(0, 2, 1, 3).reshape(-1, block, block)


def unblockify(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    block = blocks.shape[1]
    if blocks.shape[1] != blocks.shape[2]:
        raise ValueError("blocks must be square")
    rows, cols = height // block, width // block
    if rows * cols != blocks.shape[0]:
        raise ValueError("block count does not match target size")
    grid = blocks.reshape(rows, cols, block, block)
    return grid.transpose(0, 2, 1, 3).reshape(height, width)


def block_dct(blocks: np.ndarray) -> np.ndarray:
    """2-D DCT of a batch of square blocks: ``D @ b @ D.T`` per block."""
    d = dct_matrix(blocks.shape[1])
    return np.einsum("ij,njk,lk->nil", d, blocks.astype(np.float64), d, optimize=True)


def block_idct(blocks: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (float reference path)."""
    d = dct_matrix(blocks.shape[1])
    return np.einsum("ji,njk,kl->nil", d, blocks.astype(np.float64), d, optimize=True)


def block_idct_fixed_point(blocks: np.ndarray, fraction_bits: int = 11) -> np.ndarray:
    """Inverse DCT using a fixed-point approximation of the basis matrix.

    Real OS/vendor JPEG decoders use integer IDCTs with differing precision
    (e.g. libjpeg's jpeg_idct_islow vs. ARM NEON paths). Quantizing the DCT
    basis to ``fraction_bits`` fractional bits reproduces that family of
    tiny, decoder-dependent reconstruction differences.
    """
    d = dct_matrix(blocks.shape[1])
    scale = float(1 << fraction_bits)
    d_fixed = np.round(d * scale) / scale
    return np.einsum(
        "ji,njk,kl->nil", d_fixed, blocks.astype(np.float64), d_fixed, optimize=True
    )


@lru_cache(maxsize=None)
def zigzag_order(size: int = 8) -> np.ndarray:
    """Indices that map a raster-order ``size*size`` block to zig-zag order.

    ``flat_block[zigzag_order(8)]`` produces coefficients in JPEG scan
    order (DC first, then ascending diagonal frequencies).
    """
    order = sorted(
        ((r, c) for r in range(size) for c in range(size)),
        key=lambda rc: (rc[0] + rc[1], rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    return np.array([r * size + c for r, c in order], dtype=np.int64)
