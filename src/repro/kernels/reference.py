"""The ``reference`` backend: the original scalar entropy-coding paths.

These are the per-symbol/per-row loops that used to live inline in
``codecs/jpeg.py`` and ``codecs/png.py``, moved here unchanged so the
codecs dispatch through :mod:`repro.kernels` and the fast backend has a
canonical implementation to be bit-identical against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..codecs.bitio import BitReader, BitWriter
from ..codecs.huffman import HuffmanTable

__all__ = [
    "bit_size",
    "decode_block",
    "decode_scan",
    "encode_block",
    "encode_scan",
    "paeth_predictor",
    "png_filter_scanlines",
]


# ----------------------------------------------------------------------
# JPEG entropy coding (per-block, per-symbol)
# ----------------------------------------------------------------------
def bit_size(value: int) -> int:
    """JPEG magnitude category: smallest s with |value| < 2^s."""
    return int(abs(value)).bit_length()


def _encode_coefficient_bits(writer: BitWriter, value: int, size: int) -> None:
    if size == 0:
        return
    coded = value + (1 << size) - 1 if value < 0 else value
    writer.write_bits(coded, size)


def _decode_coefficient_bits(reader: BitReader, size: int) -> int:
    if size == 0:
        return 0
    raw = reader.read_bits(size)
    if raw < (1 << (size - 1)):
        raw -= (1 << size) - 1
    return raw


def encode_block(
    writer: BitWriter,
    coeffs_zz: np.ndarray,
    dc_pred: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> int:
    """Entropy-code one zig-zag-ordered quantized block; returns new DC."""
    dc = int(coeffs_zz[0])
    diff = dc - dc_pred
    size = bit_size(diff)
    dc_table.encode_symbol(writer, size)
    _encode_coefficient_bits(writer, diff, size)

    run = 0
    last_nonzero = int(np.max(np.nonzero(coeffs_zz)[0])) if np.any(coeffs_zz[1:]) else 0
    for idx in range(1, 64):
        val = int(coeffs_zz[idx])
        if val == 0:
            run += 1
            continue
        while run >= 16:
            ac_table.encode_symbol(writer, 0xF0)  # ZRL
            run -= 16
        size = bit_size(val)
        ac_table.encode_symbol(writer, (run << 4) | size)
        _encode_coefficient_bits(writer, val, size)
        run = 0
        if idx == last_nonzero:
            break
    if last_nonzero < 63:
        ac_table.encode_symbol(writer, 0x00)  # EOB
    return dc


def decode_block(
    reader: BitReader,
    dc_pred: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> Tuple[np.ndarray, int]:
    """Decode one block into zig-zag order; returns (coeffs, new DC)."""
    coeffs = np.zeros(64, dtype=np.int64)
    size = dc_table.decode_symbol(reader)
    dc = dc_pred + _decode_coefficient_bits(reader, size)
    coeffs[0] = dc
    idx = 1
    while idx < 64:
        symbol = ac_table.decode_symbol(reader)
        if symbol == 0x00:  # EOB
            break
        if symbol == 0xF0:  # ZRL
            idx += 16
            continue
        run, size = symbol >> 4, symbol & 0x0F
        idx += run
        if idx >= 64:
            raise ValueError("AC run overflows block")
        coeffs[idx] = _decode_coefficient_bits(reader, size)
        idx += 1
    return coeffs, dc


def encode_scan(
    blocks: Sequence[np.ndarray],
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence[HuffmanTable],
    ac_tables: Sequence[HuffmanTable],
) -> bytes:
    """Scalar scan encoder: one :func:`encode_block` call per unit."""
    writer = BitWriter(stuff_ff=True)
    preds = [0] * len(blocks)
    for unit, comp in enumerate(comp_of_unit):
        comp = int(comp)
        coeffs = blocks[comp][int(block_of_unit[unit])]
        preds[comp] = encode_block(
            writer, coeffs, preds[comp], dc_tables[comp], ac_tables[comp]
        )
    writer.flush(fill_bit=1)
    return writer.getvalue()


def decode_scan(
    reader: BitReader,
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence[HuffmanTable],
    ac_tables: Sequence[HuffmanTable],
    n_blocks: Sequence[int],
) -> List[np.ndarray]:
    """Scalar scan decoder: one :func:`decode_block` call per unit."""
    out = [np.zeros((n, 64), dtype=np.int64) for n in n_blocks]
    preds = [0] * len(out)
    for unit, comp in enumerate(comp_of_unit):
        comp = int(comp)
        coeffs, preds[comp] = decode_block(
            reader, preds[comp], dc_tables[comp], ac_tables[comp]
        )
        out[comp][int(block_of_unit[unit])] = coeffs
    return out


# ----------------------------------------------------------------------
# PNG adaptive filtering (per-row)
# ----------------------------------------------------------------------
def paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorized Paeth predictor over int16-compatible arrays."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


def png_filter_scanlines(raw: np.ndarray) -> bytes:
    """Per-row adaptive filtering; returns the filtered byte stream.

    ``raw`` is the ``(H, W*3)`` uint8 scanline matrix. For each row all
    five filters are evaluated and the one minimizing the sum of absolute
    values (interpreting bytes as signed) is chosen — the heuristic
    recommended by the PNG specification and used by libpng.
    """
    height, rowbytes = raw.shape
    bpp = 3
    prev = np.zeros(rowbytes, dtype=np.uint8)
    out = bytearray()
    for r in range(height):
        row = raw[r]
        left = np.concatenate([np.zeros(bpp, dtype=np.uint8), row[:-bpp]])
        upleft = np.concatenate([np.zeros(bpp, dtype=np.uint8), prev[:-bpp]])

        candidates = (
            row,  # None
            (row.astype(np.int16) - left).astype(np.uint8),  # Sub
            (row.astype(np.int16) - prev).astype(np.uint8),  # Up
            (row.astype(np.int16) - ((left.astype(np.int16) + prev) // 2)).astype(np.uint8),  # Average
            (row.astype(np.int16) - paeth_predictor(left, prev, upleft)).astype(np.uint8),  # Paeth
        )
        costs = [
            int(np.abs(c.astype(np.int8).astype(np.int32)).sum()) for c in candidates
        ]
        best = int(np.argmin(costs))
        out.append(best)
        out += candidates[best].tobytes()
        prev = row
    return bytes(out)
