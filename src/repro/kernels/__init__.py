"""Backend-dispatched entropy-coding kernels for the codec hot path.

Every byte a codec emits used to flow symbol-by-symbol through pure
Python (``HuffmanTable.encode_symbol`` + per-bit ``BitWriter`` calls).
This package makes that hot loop swappable between two backends that are
**bit-identical by contract**:

* ``reference`` — the original scalar code paths, moved verbatim into
  :mod:`repro.kernels.reference`. Slow, obviously correct, and the
  ground truth the fast backend is tested against.
* ``fast`` — :mod:`repro.kernels.fast`, whole-plane NumPy vectorization:
  symbol streams (DC diffs, zig-zag run-lengths, ZRL/EOB insertion,
  magnitude categories) extracted with array ops over the
  ``(n_blocks, 64)`` coefficient matrix, Huffman codes concatenated via
  cumulative-sum bit offsets and packed to bytes in one pass, and
  LUT-accelerated Huffman decoding through a word-buffered
  :class:`~repro.codecs.bitio.BitReader`.

Backend selection (first match wins):

1. an explicit ``backend=`` argument on a kernel entry point,
2. :func:`set_backend` / :func:`use_backend` (process-local API),
3. the ``REPRO_KERNELS`` environment variable,
4. the default, ``fast``.

Because the two backends produce identical bytes and arrays (enforced by
``tests/kernels/`` and the CI ``bench-smoke`` job), backend selection is
output-neutral: it may differ between parent and worker processes, across
machines, or mid-run without perturbing a single result bit. Only speed
changes. ``python -m repro bench`` quantifies the difference.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..lint.contracts import tensor_contract
from . import fast, reference
from .layout import scan_layout

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "current_backend",
    "decode_jpeg_scan",
    "encode_jpeg_scan",
    "entropy_deflate",
    "entropy_inflate",
    "pack_coefficients",
    "png_filter_scanlines",
    "resolve_backend",
    "scan_layout",
    "set_backend",
    "unpack_coefficients",
    "use_backend",
]

#: Recognized backend names, in "slow but canonical" -> "fast" order.
BACKENDS: Tuple[str, ...] = ("reference", "fast")

#: Used when neither an explicit argument, :func:`set_backend`, nor the
#: ``REPRO_KERNELS`` environment variable chooses one.
DEFAULT_BACKEND = "fast"


class _Selection:
    """Holder for the process-local explicit backend override.

    Deliberately an attribute on an object rather than a rebindable
    module global: backend choice is output-neutral (both backends are
    bit-identical), so even if a worker process never sees the parent's
    override the results cannot diverge — but the PROC001 `global` ban
    stays intact for the cases where module state *would* matter.
    """

    __slots__ = ("override",)

    def __init__(self) -> None:
        self.override: Optional[str] = None


_SELECTION = _Selection()


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernels backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def available_backends() -> Tuple[str, ...]:
    """The backend names :func:`resolve_backend` accepts."""
    return BACKENDS


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend an entry point will use, honoring the precedence
    explicit argument > :func:`set_backend` > ``REPRO_KERNELS`` > default.
    """
    name = (
        explicit
        or _SELECTION.override
        or os.environ.get("REPRO_KERNELS")
        or DEFAULT_BACKEND
    )
    return _validate(name)


def current_backend() -> str:
    """The backend used when no explicit ``backend=`` is passed."""
    return resolve_backend()


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None``, clear) the process-local backend override."""
    _SELECTION.override = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily select a backend for the duration of a ``with`` block."""
    previous = _SELECTION.override
    _SELECTION.override = _validate(name)
    try:
        yield name
    finally:
        _SELECTION.override = previous


# ----------------------------------------------------------------------
# JPEG entropy coding
# ----------------------------------------------------------------------
def encode_jpeg_scan(
    blocks: Sequence[np.ndarray],
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence,
    ac_tables: Sequence,
    backend: Optional[str] = None,
) -> bytes:
    """Entropy-code a whole interleaved scan; returns the finished
    entropy-coded segment (flushed with 1-bits, 0xFF-stuffed).

    ``blocks[c]`` is component ``c``'s ``(n_blocks, 64)`` zig-zag-ordered
    quantized coefficient matrix; ``comp_of_unit``/``block_of_unit`` give
    the MCU scan order (see :func:`scan_layout`); ``dc_tables`` /
    ``ac_tables`` hold one :class:`~repro.codecs.huffman.HuffmanTable`
    per component.
    """
    name = resolve_backend(backend)
    impl = fast.encode_scan if name == "fast" else reference.encode_scan
    with obs.span("kernels.encode_jpeg_scan", backend=name):
        data = impl(blocks, comp_of_unit, block_of_unit, dc_tables, ac_tables)
    obs.count(f"kernels.backend.{name}")
    obs.count("kernels.jpeg.units_encoded", len(comp_of_unit))
    obs.count("kernels.jpeg.bytes_encoded", len(data))
    return data


def decode_jpeg_scan(
    reader,
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence,
    ac_tables: Sequence,
    n_blocks: Sequence[int],
    backend: Optional[str] = None,
) -> List[np.ndarray]:
    """Decode a whole interleaved scan from ``reader``.

    Returns one ``(n_blocks[c], 64)`` zig-zag-ordered int64 coefficient
    matrix per component, bit-identical across backends.
    """
    name = resolve_backend(backend)
    impl = fast.decode_scan if name == "fast" else reference.decode_scan
    with obs.span("kernels.decode_jpeg_scan", backend=name):
        out = impl(reader, comp_of_unit, block_of_unit, dc_tables, ac_tables, n_blocks)
    obs.count(f"kernels.backend.{name}")
    obs.count("kernels.jpeg.units_decoded", len(comp_of_unit))
    return out


# ----------------------------------------------------------------------
# PNG filtering
# ----------------------------------------------------------------------
@tensor_contract("(H, C) intN, _ -> _")
def png_filter_scanlines(raw: np.ndarray, backend: Optional[str] = None) -> bytes:
    """Adaptive PNG filter search over the ``(H, W*3)`` scanline matrix.

    Both backends evaluate all five filters per row and pick the
    minimum-sum-of-absolute-differences winner; ``fast`` evaluates every
    row for every filter in whole-image array ops.
    """
    name = resolve_backend(backend)
    impl = fast.png_filter_scanlines if name == "fast" else reference.png_filter_scanlines
    with obs.span("kernels.png_filter", backend=name):
        data = impl(raw)
    obs.count(f"kernels.backend.{name}")
    obs.count("kernels.png.bytes_filtered", raw.size)
    return data


# ----------------------------------------------------------------------
# Coefficient-stream serialization + DEFLATE (webp/heif/png entropy stage)
# ----------------------------------------------------------------------
# The stand-in webp/heif codecs and PNG entropy-code through zlib, which
# is already C-speed; these entry points exist so every codec's entropy
# stage flows through the same dispatch/observability choke point. Both
# backends are byte-identical by construction (it is the same zlib call).
@tensor_contract("* intN, _ -> _")
def pack_coefficients(values: np.ndarray, backend: Optional[str] = None) -> bytes:
    """Serialize a quantized-coefficient array as little-endian int16."""
    obs.count(f"kernels.backend.{resolve_backend(backend)}")
    obs.count("kernels.coeff.symbols_packed", int(np.asarray(values).size))
    return np.asarray(values).astype("<i2").tobytes()


@tensor_contract("_, _ -> (S,) intN")
def unpack_coefficients(data: bytes, backend: Optional[str] = None) -> np.ndarray:
    """Inverse of :func:`pack_coefficients` (read-only view)."""
    obs.count(f"kernels.backend.{resolve_backend(backend)}")
    obs.count("kernels.coeff.symbols_unpacked", len(data) // 2)
    return np.frombuffer(data, dtype="<i2")


def entropy_deflate(payload: bytes, level: int, backend: Optional[str] = None) -> bytes:
    """DEFLATE ``payload`` (the zlib-based codecs' entropy coder)."""
    name = resolve_backend(backend)
    with obs.span("kernels.deflate", backend=name):
        data = zlib.compress(payload, level)
    obs.count(f"kernels.backend.{name}")
    obs.count("kernels.deflate.bytes_in", len(payload))
    obs.count("kernels.deflate.bytes_out", len(data))
    return data


def entropy_inflate(data: bytes, backend: Optional[str] = None) -> bytes:
    """Inverse of :func:`entropy_deflate`."""
    name = resolve_backend(backend)
    with obs.span("kernels.inflate", backend=name):
        payload = zlib.decompress(data)
    obs.count(f"kernels.backend.{name}")
    obs.count("kernels.inflate.bytes_out", len(payload))
    return payload
