"""MCU scan-order geometry shared by both kernel backends.

JPEG interleaves components inside each MCU: for every MCU (row-major),
each component contributes ``h * v`` blocks (``dy`` outer, ``dx`` inner).
:func:`scan_layout` flattens that nesting into two parallel arrays so the
entropy kernels can treat the scan as one linear sequence of "units"
(one unit = one 8x8 block with its component's tables and DC chain).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["scan_layout"]


def scan_layout(
    mcu_rows: int,
    mcu_cols: int,
    samplings: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit order of an interleaved scan.

    Parameters
    ----------
    samplings:
        Per-component ``(h, v)`` sampling factors, in scan component
        order. Component ``c``'s plane is assumed to hold
        ``mcu_cols * h`` blocks per row.

    Returns
    -------
    ``(comp_of_unit, block_of_unit)`` int64 arrays of length
    ``mcu_rows * mcu_cols * sum(h * v)``: the component index of each
    scan unit and the row of that component's ``(n_blocks, 64)``
    coefficient matrix it reads/writes.
    """
    n_mcus = mcu_rows * mcu_cols
    per_mcu_comp = np.concatenate(
        [np.full(h * v, c, dtype=np.int64) for c, (h, v) in enumerate(samplings)]
    )
    mr = np.arange(mcu_rows, dtype=np.int64).reshape(-1, 1, 1, 1)
    mc = np.arange(mcu_cols, dtype=np.int64).reshape(1, -1, 1, 1)
    per_comp_idx = []
    for h, v in samplings:
        blocks_per_row = mcu_cols * h
        dy = np.arange(v, dtype=np.int64).reshape(1, 1, -1, 1)
        dx = np.arange(h, dtype=np.int64).reshape(1, 1, 1, -1)
        idx = (mr * v + dy) * blocks_per_row + (mc * h + dx)
        per_comp_idx.append(idx.reshape(n_mcus, h * v))
    block_of_unit = np.concatenate(per_comp_idx, axis=1).reshape(-1)
    comp_of_unit = np.tile(per_mcu_comp, n_mcus)
    return comp_of_unit, block_of_unit
