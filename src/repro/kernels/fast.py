"""The ``fast`` backend: whole-scan vectorized entropy coding.

Encoding never touches a per-coefficient Python loop. The scan is
flattened to one ``(n_units, 64)`` coefficient matrix; DC differences,
zig-zag run lengths, ZRL/EOB insertion, and magnitude categories are all
computed with NumPy array ops; Huffman codes come from per-table
``int64`` lookup arrays; and the variable-length codes are concatenated
via cumulative-sum bit offsets and packed to bytes (plus 0xFF stuffing)
in one vectorized pass.

Decoding keeps the unavoidable sequential walk (each symbol's length
gates where the next one starts) but replaces the bit-at-a-time tree
walk with a canonical 16-bit peek table — one lookup per symbol against
a word-buffered :class:`~repro.codecs.bitio.BitReader`.

Every function here is bit-identical to :mod:`repro.kernels.reference`;
``tests/kernels/`` enforces that property over random and degenerate
inputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..codecs.bitio import BitReader
from ..codecs.huffman import HuffmanTable

__all__ = ["encode_scan", "decode_scan", "png_filter_scanlines"]

#: Powers of two for magnitude-category computation (size = number of
#: bins <= |v|, i.e. bit_length). 2^31 bounds any JPEG-representable
#: coefficient with headroom.
_SIZE_BINS = np.array([1 << s for s in range(32)], dtype=np.int64)
_SIZE_BINS.setflags(write=False)

#: Direct bit_length lookup for the |v| < 4096 range every baseline JPEG
#: coefficient/DC-diff lives in (one gather instead of a binary search).
_SIZE_LUT = np.digitize(np.arange(4096), _SIZE_BINS).astype(np.int64)
_SIZE_LUT.setflags(write=False)


def _bit_sizes(values: np.ndarray) -> np.ndarray:
    """Vectorized JPEG magnitude category: smallest s with |v| < 2^s."""
    magnitudes = np.abs(values)
    if magnitudes.size == 0 or int(magnitudes.max()) < 4096:
        return _SIZE_LUT[magnitudes]
    return np.digitize(magnitudes, _SIZE_BINS)


def _coded_magnitudes(values: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """JPEG extra-bits encoding: negatives are offset by 2^size - 1.

    ``values >> 63`` is an all-ones mask exactly for negatives, making
    this branch-free: v + (mask & (2^size - 1)).
    """
    return values + ((values >> 63) & ((np.int64(1) << sizes) - 1))


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.empty_like(values)
    if out.shape[0]:
        out[0] = 0
        np.cumsum(values[:-1], out=out[1:])
    return out


def _gather_lengths(
    lengths_by_comp: np.ndarray, comp: np.ndarray, symbols: np.ndarray, what: str
) -> np.ndarray:
    out_of_range = (symbols < 0) | (symbols > 255)
    if np.any(out_of_range):
        bad = symbols[out_of_range]
        raise KeyError(f"symbol {int(bad[0])} not in {what} Huffman table")
    gathered = lengths_by_comp[comp, symbols]
    if np.any(gathered == 0):
        missing = symbols[gathered == 0]
        raise KeyError(f"symbol {int(missing[0])} not in {what} Huffman table")
    return gathered


def encode_scan(
    blocks: Sequence[np.ndarray],
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence[HuffmanTable],
    ac_tables: Sequence[HuffmanTable],
) -> bytes:
    """Vectorized scan encoder, bit-identical to the reference loop."""
    comp_of_unit = np.asarray(comp_of_unit, dtype=np.int64)
    block_of_unit = np.asarray(block_of_unit, dtype=np.int64)
    n_units = comp_of_unit.shape[0]
    if n_units == 0:
        return b""

    # Scan-ordered coefficients: one gather from the stacked component
    # matrices (row offsets turn (comp, block) into a flat row index).
    stacks = [np.asarray(b, dtype=np.int64).reshape(-1, 64) for b in blocks]
    row_offsets = np.zeros(len(stacks), dtype=np.int64)
    np.cumsum([s.shape[0] for s in stacks[:-1]], out=row_offsets[1:])
    all_blocks = stacks[0] if len(stacks) == 1 else np.concatenate(stacks)
    scan = all_blocks[row_offsets[comp_of_unit] + block_of_unit]

    # Per-component DC prediction chains over the small per-unit arrays.
    dc_diff = np.empty(n_units, dtype=np.int64)
    for comp in range(len(blocks)):
        mask = comp_of_unit == comp
        if not mask.any():
            continue
        dc = scan[:, 0][mask]
        diff = np.empty_like(dc)
        diff[0] = dc[0]
        diff[1:] = dc[1:] - dc[:-1]
        dc_diff[mask] = diff

    # Per-component Huffman code arrays, stacked for fancy-index gathers.
    dc_codes = np.stack([t.encode_arrays()[0] for t in dc_tables])
    dc_lens = np.stack([t.encode_arrays()[1] for t in dc_tables])
    ac_codes = np.stack([t.encode_arrays()[0] for t in ac_tables])
    ac_lens = np.stack([t.encode_arrays()[1] for t in ac_tables])

    dc_sizes = _bit_sizes(dc_diff)
    dc_extra = _coded_magnitudes(dc_diff, dc_sizes)

    # AC symbol stream: for each nonzero coefficient (row-major over the
    # (n_units, 63) AC matrix, i.e. scan order), the run of zeros since
    # the previous nonzero in the same unit, split into ZRL(0xF0) repeats
    # and a (run << 4 | size) symbol; EOB(0x00) wherever a unit's last
    # nonzero comes before index 63 (including all-zero-AC units).
    ac = scan[:, 1:]
    nz_unit, nz_col = np.nonzero(ac)
    nz_val = ac[nz_unit, nz_col]
    pos = nz_col + 1
    n_nz = pos.shape[0]

    has_nz = np.zeros(n_units, dtype=bool)
    has_nz[nz_unit] = True
    last_pos = np.zeros(n_units, dtype=np.int64)
    last_pos[nz_unit] = pos  # nz_unit ascending: final write per unit wins
    eob = ~has_nz | (last_pos < 63)

    if n_nz:
        is_first = np.empty(n_nz, dtype=bool)
        is_first[0] = True
        np.not_equal(nz_unit[1:], nz_unit[:-1], out=is_first[1:])
        prev_pos = np.concatenate([[0], pos[:-1]])
        prev_pos = np.where(is_first, 0, prev_pos)
        run = pos - prev_pos - 1
        zrl = run >> 4
        ac_sizes = _bit_sizes(nz_val)
        ac_symbols = ((run & 15) << 4) | ac_sizes
        ac_extra = _coded_magnitudes(nz_val, ac_sizes)
        seg_len = zrl + 1  # ZRLs + the fused (run|size)-code+extra item
        # Integer bincount (no float weights): nonzero count per unit,
        # plus the handful of ZRL repeats expanded explicitly.
        ac_items_per_unit = np.bincount(nz_unit, minlength=n_units)
        with_zrl = zrl > 0
        if with_zrl.any():
            ac_items_per_unit = ac_items_per_unit + np.bincount(
                np.repeat(nz_unit[with_zrl], zrl[with_zrl]), minlength=n_units
            )
    else:
        zrl = seg_len = np.zeros(0, dtype=np.int64)
        with_zrl = np.zeros(0, dtype=bool)
        ac_items_per_unit = np.zeros(n_units, dtype=np.int64)

    # One item per emitted Huffman code, with the code's extra magnitude
    # bits fused in, packed as (value << 6) | bit_length where value =
    # (code << size) | extra. Spec-conformant sizes (DC <= 16, AC <= 15
    # after the nibble) keep length <= 32, within the packer's 40-bit
    # byte-aligned lane, so value << 6 stays well inside int64. Packing
    # value and length into one array halves the scatter passes; every
    # slot is written exactly once (items_per_unit counts DC + AC + ZRL
    # + EOB items exactly), and real items are never 0 (length >= 1).
    items_per_unit = 1 + ac_items_per_unit + eob
    unit_base = _exclusive_cumsum(items_per_unit)
    total_items = int(items_per_unit.sum())
    items = np.zeros(total_items, dtype=np.int64)

    dc_code_lens = _gather_lengths(dc_lens, comp_of_unit, dc_sizes, "DC")
    dc_values = (dc_codes[comp_of_unit, dc_sizes] << dc_sizes) | dc_extra
    items[unit_base] = (dc_values << 6) | (dc_code_lens + dc_sizes)

    if n_nz:
        nz_comp = comp_of_unit[nz_unit]
        seg_cum = _exclusive_cumsum(seg_len)
        unit_first_cum = np.zeros(n_units, dtype=np.int64)
        unit_first_cum[nz_unit[is_first]] = seg_cum[is_first]
        seg_start = unit_base[nz_unit] + 1 + (seg_cum - unit_first_cum[nz_unit])
        ac_code_lens = _gather_lengths(ac_lens, nz_comp, ac_symbols, "AC")
        ac_values = (ac_codes[nz_comp, ac_symbols] << ac_sizes) | ac_extra
        items[seg_start + zrl] = (ac_values << 6) | (ac_code_lens + ac_sizes)
        total_zrl = int(zrl.sum())
        if total_zrl:
            # Validate ZRL presence only for components that emit it
            # (reference raises lazily, at first actual use).
            zrl_items = np.zeros(n_nz, dtype=np.int64)
            zrl_items[with_zrl] = (ac_codes[nz_comp[with_zrl], 0xF0] << 6) | (
                _gather_lengths(
                    ac_lens,
                    nz_comp[with_zrl],
                    np.full(int(with_zrl.sum()), 0xF0, dtype=np.int64),
                    "AC",
                )
            )
            zrl_base = _exclusive_cumsum(zrl)
            target = np.repeat(seg_start, zrl) + (
                np.arange(total_zrl) - np.repeat(zrl_base, zrl)
            )
            items[target] = np.repeat(zrl_items, zrl)

    if eob.any():
        eob_units = np.flatnonzero(eob)
        eob_comp = comp_of_unit[eob_units]
        eob_symbols = np.zeros(eob_units.shape[0], dtype=np.int64)
        eob_lens = _gather_lengths(ac_lens, eob_comp, eob_symbols, "AC")
        eob_pos = unit_base[eob_units] + items_per_unit[eob_units] - 1
        items[eob_pos] = (ac_codes[eob_comp, 0] << 6) | eob_lens

    return _pack_and_stuff(items)


def _pack_and_stuff(items: np.ndarray) -> bytes:
    """Concatenate MSB-first bit strings, pad with 1s, 0xFF-stuff.

    ``items`` packs each bit string as ``(value << 6) | bit_length``
    (bit lengths <= 33 fit the 6-bit field). Works in byte space, not
    bit space: each item's bits are aligned into a byte-lane window
    anchored at its starting byte, the lane bytes are scattered with
    ``bincount``-accumulation, and because distinct items occupy
    disjoint bit positions, per-byte ADD equals the OR a bit-serial
    writer would compute.
    """
    lengths = items & 63
    total_bits = int(lengths.sum())
    if total_bits == 0:
        return b""
    values = items >> 6
    pad = (-total_bits) % 8
    if pad:
        # JPEG flush: pad the final partial byte with 1-bits.
        values = np.concatenate([values, [(1 << pad) - 1]])
        lengths = np.concatenate([lengths, [pad]])
    max_span = int(lengths.max()) + 7  # worst-case bits incl. byte offset
    if max_span > 40:
        raise ValueError("item exceeds the packer's 40-bit lane")
    n_lanes = (max_span + 7) // 8
    lane_bits = 8 * n_lanes
    offsets = _exclusive_cumsum(lengths)
    byte0 = offsets >> 3
    lane = values << (lane_bits - (offsets & 7) - lengths)
    n_out = (total_bits + pad) // 8
    if n_lanes <= 4:
        # Single-bincount fast path: spread each item's byte lanes into
        # 12-bit digits of one weight. Because all bits written to a
        # given output byte are disjoint, every per-(byte, lane) sum is
        # <= 255, so digits never carry, and 4 digits stay below 2^48 —
        # exact in bincount's float64 accumulator.
        weight = (lane >> (lane_bits - 8)) & 0xFF
        for k in range(1, n_lanes):
            weight = (weight << 12) | ((lane >> (lane_bits - 8 - 8 * k)) & 0xFF)
        digits = np.bincount(byte0, weights=weight, minlength=n_out).astype(
            np.int64
        )
        acc = digits >> (12 * (n_lanes - 1))
        for k in range(1, n_lanes):
            acc[k:] += (digits[: n_out - k] >> (12 * (n_lanes - 1 - k))) & 0xFFF
    else:
        acc = np.zeros(n_out, dtype=np.int64)
        for k in range(n_lanes):
            contrib = (lane >> (lane_bits - 8 - 8 * k)) & 0xFF
            acc += np.bincount(
                byte0 + k, weights=contrib, minlength=n_out + n_lanes
            )[:n_out].astype(np.int64)
    packed = acc.astype(np.uint8)
    ff = np.flatnonzero(packed == 0xFF)
    if ff.size:
        packed = np.insert(packed, ff + 1, np.uint8(0))
    return packed.tobytes()


# ----------------------------------------------------------------------
# LUT-accelerated decoding
# ----------------------------------------------------------------------
def _next_symbol(reader: BitReader, lut) -> int:
    """Decode one Huffman symbol via a 16-bit canonical peek table."""
    window, avail = reader.peek_window(16)
    entry = lut[window]
    if entry == 0:
        if avail < 16:
            # The stream ended mid-code; consuming past the end raises
            # the same EOFError the bit-serial reference would.
            reader.read_bits(avail + 1)
        raise ValueError("invalid Huffman code (no symbol within 16 bits)")
    length = entry >> 8
    reader.read_bits(length)  # raises EOFError if the code overruns
    return entry & 0xFF


def decode_scan(
    reader: BitReader,
    comp_of_unit: np.ndarray,
    block_of_unit: np.ndarray,
    dc_tables: Sequence[HuffmanTable],
    ac_tables: Sequence[HuffmanTable],
    n_blocks: Sequence[int],
) -> List[np.ndarray]:
    """LUT-based scan decoder, array-identical to the reference loop."""
    out = [np.zeros((n, 64), dtype=np.int64) for n in n_blocks]
    preds = [0] * len(out)
    dc_luts = [t.peek_table() for t in dc_tables]
    ac_luts = [t.peek_table() for t in ac_tables]
    read_bits = reader.read_bits
    comp_list = np.asarray(comp_of_unit).tolist()
    block_list = np.asarray(block_of_unit).tolist()
    for unit, comp in enumerate(comp_list):
        coeffs = [0] * 64
        size = _next_symbol(reader, dc_luts[comp])
        if size:
            raw = read_bits(size)
            if raw < (1 << (size - 1)):
                raw -= (1 << size) - 1
        else:
            raw = 0
        dc = preds[comp] + raw
        preds[comp] = dc
        coeffs[0] = dc
        ac_lut = ac_luts[comp]
        idx = 1
        while idx < 64:
            symbol = _next_symbol(reader, ac_lut)
            if symbol == 0x00:  # EOB
                break
            if symbol == 0xF0:  # ZRL
                idx += 16
                continue
            run, size = symbol >> 4, symbol & 0x0F
            idx += run
            if idx >= 64:
                raise ValueError("AC run overflows block")
            if size:
                raw = read_bits(size)
                if raw < (1 << (size - 1)):
                    raw -= (1 << size) - 1
                coeffs[idx] = raw
            idx += 1
        out[comp][block_list[unit]] = coeffs
    return out


# ----------------------------------------------------------------------
# PNG adaptive filtering, whole image at once
# ----------------------------------------------------------------------
def png_filter_scanlines(raw: np.ndarray) -> bytes:
    """Vectorized PNG filter search, byte-identical to the row loop.

    Filtering only reads the *raw* previous row (never the filtered
    output), so all five candidate filters can be evaluated for every
    row simultaneously; the per-row argmin over signed-byte cost matches
    the reference's first-minimum tie-breaking.
    """
    height, rowbytes = raw.shape
    bpp = 3
    zeros_col = np.zeros((height, bpp), dtype=np.uint8)
    prev = np.concatenate([np.zeros((1, rowbytes), dtype=np.uint8), raw[:-1]])
    left = np.concatenate([zeros_col, raw[:, :-bpp]], axis=1)
    upleft = np.concatenate([zeros_col, prev[:, :-bpp]], axis=1)

    raw16 = raw.astype(np.int16)
    candidates = np.stack(
        [
            raw,  # None
            (raw16 - left).astype(np.uint8),  # Sub
            (raw16 - prev).astype(np.uint8),  # Up
            (raw16 - ((left.astype(np.int16) + prev) // 2)).astype(np.uint8),  # Average
            (raw16 - _paeth_rows(left, prev, upleft)).astype(np.uint8),  # Paeth
        ]
    )
    costs = np.abs(candidates.astype(np.int8).astype(np.int32)).sum(axis=2)
    best = np.argmin(costs, axis=0)  # first minimum, like list argmin

    out = np.empty((height, rowbytes + 1), dtype=np.uint8)
    out[:, 0] = best
    out[:, 1:] = candidates[best, np.arange(height)]
    return out.tobytes()


def _paeth_rows(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Paeth predictor over whole (H, rowbytes) matrices."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)
