"""Fleet-level studies the paper's five handsets couldn't support.

Two study shapes, both producing :class:`~repro.fleet.columnar`
record tables aggregated by :mod:`repro.fleet.stats`:

* :func:`run_population_study` — every synthetic device photographs the
  same displayed scenes through the real capture path (sensor → vendor
  ISP → codec → decode → model), fanned out through
  :class:`~repro.runner.executor.FleetExecutor` in bounded device
  chunks. Output: instability percentiles across the population and
  outlier-device detection.
* :func:`run_drift_study` — the §7 experiment over simulated time: a
  fixed photo corpus, a population whose devices take the OS decoder
  upgrade at sampled time steps, and per-step population instability as
  the decoder mix shifts. Decoding and inference run once per *decoder
  family* and are expanded to per-device records columnar-ly, so the
  study costs the same for 100 devices as for 100 000.

Determinism: capture units reuse the executor's identity-derived seeds
(``unit_entropy(seed, device_name, image_id, repeat)``), inference
chunking is fixed by position, and every aggregate is an integer sum —
so study outputs are bit-identical across worker counts and cache
states, the invariant the CI ``fleet-smoke`` job asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..devices.runtime import DeviceRuntime
from ..devices.os_sim import DECODER_FAMILIES
from ..imaging.image import ImageBuffer
from ..lab.firebase import build_photo_set
from ..lab.rig import CaptureRig
from ..nn.model import Model, micro_mobilenet  # noqa: F401 (re-export)
from ..nn.pretrained import PretrainConfig, load_pretrained
from ..runner.cache import CaptureCache
from ..runner.executor import FleetExecutor
from ..runner.seeds import unit_entropy
from ..runner.units import CaptureUnit
from ..scenes.dataset import build_dataset
from ..scenes.objects import ALL_CLASSES
from ..scenes.screen import Screen
from .columnar import ColumnarStore
from .population import FleetSpec, SyntheticDevice, generate_devices
from .stats import (
    RECORD_DTYPE,
    TableDims,
    aggregate_tables,
    population_summary,
)

__all__ = [
    "FLEET_PRETRAIN",
    "PopulationStudyOutcome",
    "DriftStudyOutcome",
    "fleet_model",
    "run_population_study",
    "run_drift_study",
]

#: Inference chunk size (matches the lab experiments' DeviceRuntime use).
INFERENCE_BATCH = 64

#: Devices whose capture units are in flight at once. Bounds peak payload
#: memory to ``device_chunk * scenes * repeats`` decoded frames while
#: still giving the process pool large unit batches. Chunk boundaries
#: depend only on device index, so the chunking is output-neutral across
#: worker counts (not across *chunk sizes*: inference batch composition
#: is part of the study's identity, like INFERENCE_BATCH itself).
DEVICE_CHUNK = 64


#: Quick-train recipe for the fleet studies' default model: ~13 s to
#: train from scratch (then served from the pretrained disk cache),
#: ~60 % scene accuracy — enough learned structure that borderline
#: captures exist for device noise to flip, which an *untrained* net
#: lacks (its capture-domain predictions collapse to one class and every
#: population percentile reads 0.0). Training is seeded and
#: deterministic, so study goldens are stable.
FLEET_PRETRAIN = PretrainConfig(
    per_class=12, scenes_per_object=1, epochs=12, augment_copies=2, seed=11
)


def fleet_model() -> Model:
    """The fixed-weight model population studies share by default.

    A lightly-trained MicroMobileNet (:data:`FLEET_PRETRAIN`), loaded
    through the pretrained disk cache. Callers wanting the full base
    model pass ``model=repro.nn.load_pretrained()`` explicitly; callers
    wanting a weight-free run pass ``model=micro_mobilenet()``.
    """
    return load_pretrained(FLEET_PRETRAIN)


def _resolve_devices(
    devices: Optional[Sequence[SyntheticDevice]],
    fleet_size: Optional[int],
    seed: int,
    spec: Optional[FleetSpec],
) -> List[SyntheticDevice]:
    if devices is not None:
        return list(devices)
    if fleet_size is None:
        raise ValueError("provide either devices or fleet_size")
    return generate_devices(fleet_size, seed=seed, spec=spec)


@dataclass
class PopulationStudyOutcome:
    """Columnar records plus the population-level aggregates."""

    devices: List[SyntheticDevice]
    store: ColumnarStore
    dims: TableDims
    summary: Dict[str, object]
    scenes: int
    repeats: int
    seed: int

    def device_names(self) -> List[str]:
        return [d.profile.name for d in self.devices]


def run_population_study(
    fleet_size: Optional[int] = None,
    seed: int = 0,
    scenes: int = 4,
    repeats: int = 1,
    workers: int = 0,
    cache: Optional[CaptureCache] = None,
    model: Optional[Model] = None,
    devices: Optional[Sequence[SyntheticDevice]] = None,
    spec: Optional[FleetSpec] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    shard_rows: int = 262144,
    device_chunk: int = DEVICE_CHUNK,
) -> PopulationStudyOutcome:
    """Photograph ``scenes`` displayed scenes on every population device.

    Parameters
    ----------
    fleet_size, seed, spec:
        Population coordinates for :func:`generate_devices`; or pass
        ``devices`` directly (e.g. ``fixed_devices(CAPTURE_SPECS)`` for
        the paper's fleet).
    scenes, repeats:
        Distinct displayed scenes and repeat shots per (device, scene).
    workers, cache:
        Passed to :class:`FleetExecutor` — output-neutral as always.
    model:
        Fixed-weight classifier; defaults to :func:`fleet_model`.
    spill_dir, shard_rows:
        Columnar store spill configuration for populations whose record
        tables outgrow memory.
    device_chunk:
        Devices in flight per executor batch (memory bound).

    Returns
    -------
    A :class:`PopulationStudyOutcome` whose ``summary`` carries the
    population percentiles and outliers of :func:`population_summary`.
    """
    if scenes < 1:
        raise ValueError("scenes must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if device_chunk < 1:
        raise ValueError("device_chunk must be >= 1")
    devices = _resolve_devices(devices, fleet_size, seed, spec)
    runtime = DeviceRuntime(
        model if model is not None else fleet_model(), batch_size=INFERENCE_BATCH
    )
    executor = FleetExecutor(workers=workers, cache=cache)
    store = ColumnarStore(RECORD_DTYPE, spill_dir=spill_dir, shard_rows=shard_rows)
    dims = TableDims(
        n_devices=len(devices),
        n_scenes=scenes,
        n_repeats=repeats,
        n_steps=1,
        n_labels=len(ALL_CLASSES),
    )

    # One shared presentation set: same radiance for every device, the
    # rig's experimental-control property at population scale.
    dataset = build_dataset(per_class=max(1, math.ceil(scenes / 5)), seed=seed)
    rig = CaptureRig(screen=Screen(seed=seed), angles=(0.0,), cache=cache)
    displayed = rig.present(list(dataset))[:scenes]
    if len(displayed) < scenes:
        raise ValueError(
            f"dataset yielded only {len(displayed)} scenes; asked for {scenes}"
        )
    true_labels = np.array([shown.item.label for shown in displayed], dtype=np.int16)

    with obs.span(
        "fleet.population_study",
        devices=len(devices),
        scenes=scenes,
        repeats=repeats,
        workers=workers,
    ):
        for start in range(0, len(devices), device_chunk):
            chunk = devices[start : start + device_chunk]
            units: List[CaptureUnit] = []
            for device in chunk:
                for scene_idx, shown in enumerate(displayed):
                    for repeat in range(repeats):
                        units.append(
                            CaptureUnit(
                                kind="photograph",
                                profile=device.profile,
                                radiance=shown.radiance.pixels,
                                entropy=unit_entropy(
                                    seed,
                                    device.profile.name,
                                    shown.image_id,
                                    repeat,
                                ),
                            )
                        )
            payloads = executor.run(units)
            images = [ImageBuffer(payload["pixels"]) for payload in payloads]
            predictions = runtime.predict(images)

            per_device = scenes * repeats
            rows = len(chunk) * per_device
            device_col = np.repeat(
                np.arange(start, start + len(chunk), dtype=np.uint32), per_device
            )
            scene_col = np.tile(
                np.repeat(np.arange(scenes, dtype=np.uint32), repeats), len(chunk)
            )
            repeat_col = np.tile(
                np.arange(repeats, dtype=np.uint16), len(chunk) * scenes
            )
            store.append_columns(
                device=device_col,
                scene=scene_col,
                repeat=repeat_col,
                step=np.zeros(rows, dtype=np.uint16),
                true_label=true_labels[scene_col],
                predicted=np.array([p.top1 for p in predictions], dtype=np.int16),
                confidence=np.array(
                    [p.confidence for p in predictions], dtype=np.float32
                ),
                encoded_size=np.array(
                    [int(payload["encoded_size"]) for payload in payloads],
                    dtype=np.int64,
                ),
            )

        consensus, stats = aggregate_tables(store.iter_tables, dims)
        summary = population_summary(
            stats, consensus, device_names=[d.profile.name for d in devices]
        )
    obs.count("fleet.population_records", store.rows)
    return PopulationStudyOutcome(
        devices=devices,
        store=store,
        dims=dims,
        summary=summary,
        scenes=scenes,
        repeats=repeats,
        seed=seed,
    )


# ----------------------------------------------------------------------
# OS-upgrade drift over simulated time
# ----------------------------------------------------------------------
@dataclass
class DriftStudyOutcome:
    """Per-step drift curve plus the full per-device record table."""

    devices: List[SyntheticDevice]
    store: ColumnarStore
    dims: TableDims
    #: One row per time step: upgrade progress and instability.
    step_table: List[Dict[str, float]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)


def run_drift_study(
    fleet_size: Optional[int] = None,
    seed: int = 0,
    steps: int = 6,
    photos: int = 12,
    image_format: str = "jpeg",
    quality: int = 85,
    model: Optional[Model] = None,
    devices: Optional[Sequence[SyntheticDevice]] = None,
    spec: Optional[FleetSpec] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    shard_rows: int = 262144,
) -> DriftStudyOutcome:
    """Population instability as OS decoder upgrades roll out over time.

    At step 0 every device runs its vendor-shipped decoder family; at
    each later step, devices whose sampled ``upgrade_step`` has arrived
    switch to their vendor's upgrade target. Each step decodes the same
    fixed photo corpus (byte-identical files, as in §7) and classifies
    it — but only once per decoder *family*; per-device records are
    expanded columnar-ly from the family results, which is what lets the
    drift study scale to arbitrary fleet sizes at constant capture cost.

    JPEG corpora drift (the two decoder camps disagree on some photos);
    PNG corpora stay flat at zero instability, exactly like Table 5.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if photos < 1:
        raise ValueError("photos must be >= 1")
    devices = _resolve_devices(devices, fleet_size, seed, spec)
    runtime = DeviceRuntime(
        model if model is not None else fleet_model(), batch_size=INFERENCE_BATCH
    )
    store = ColumnarStore(RECORD_DTYPE, spill_dir=spill_dir, shard_rows=shard_rows)
    dims = TableDims(
        n_devices=len(devices),
        n_scenes=photos,
        n_repeats=1,
        n_steps=steps,
        n_labels=len(ALL_CLASSES),
    )

    with obs.span(
        "fleet.drift_study", devices=len(devices), steps=steps, photos=photos
    ):
        corpus = build_photo_set(
            num_photos=photos, image_format=image_format, quality=quality, seed=seed
        )
        if len(corpus) < photos:
            raise ValueError(
                f"photo corpus yielded only {len(corpus)}; asked for {photos}"
            )
        corpus = corpus[:photos]
        true_labels = np.array([p["label"] for p in corpus], dtype=np.int16)
        sizes = np.array([len(p["bytes"]) for p in corpus], dtype=np.int64)

        # Decode + classify once per decoder family actually present.
        families = sorted(
            {d.spec.decoder_family for d in devices}
            | {d.upgrade_decoder_family for d in devices}
        )
        family_index = {name: i for i, name in enumerate(families)}
        family_pred = np.zeros((len(families), photos), dtype=np.int16)
        family_conf = np.zeros((len(families), photos), dtype=np.float32)
        for name in families:
            decoder = DECODER_FAMILIES[name]
            decoded = [decoder.load(photo["bytes"]) for photo in corpus]
            predictions = runtime.predict(decoded)
            row = family_index[name]
            family_pred[row] = [p.top1 for p in predictions]
            family_conf[row] = [p.confidence for p in predictions]
        obs.count("fleet.drift_families", len(families))

        initial = np.array(
            [family_index[d.spec.decoder_family] for d in devices], dtype=np.int64
        )
        upgraded_to = np.array(
            [family_index[d.upgrade_decoder_family] for d in devices], dtype=np.int64
        )
        upgrade_step = np.array([d.upgrade_step for d in devices], dtype=np.int64)

        n = len(devices)
        step_table: List[Dict[str, float]] = []
        for step in range(steps):
            taken = step >= upgrade_step
            current = np.where(taken, upgraded_to, initial)
            # Expand family results to per-device records (pure indexing,
            # no per-record Python objects).
            preds = family_pred[current]  # (devices, photos)
            confs = family_conf[current]
            store.append_columns(
                device=np.repeat(np.arange(n, dtype=np.uint32), photos),
                scene=np.tile(np.arange(photos, dtype=np.uint32), n),
                repeat=np.zeros(n * photos, dtype=np.uint16),
                step=np.full(n * photos, step, dtype=np.uint16),
                true_label=np.tile(true_labels, n),
                predicted=preds.reshape(-1),
                confidence=confs.reshape(-1),
                encoded_size=np.tile(sizes, n),
            )
            # Per-step instability: a photo is unstable iff two devices
            # disagree on it — i.e. two *present* families disagree.
            present = np.unique(current)
            split = (
                np.any(
                    family_pred[present] != family_pred[present[0]], axis=0
                )
                if present.size > 1
                else np.zeros(photos, dtype=bool)
            )
            majority_family = np.bincount(current, minlength=len(families)).argmax()
            divergent = (family_pred[current] != family_pred[majority_family]).mean(
                axis=1
            )
            step_table.append(
                {
                    "step": step,
                    "upgraded_fraction": float(taken.mean()),
                    "instability": float(split.mean()),
                    "mean_divergence": float(divergent.mean()),
                }
            )

        consensus, stats = aggregate_tables(store.iter_tables, dims)
        summary = population_summary(
            stats, consensus, device_names=[d.profile.name for d in devices]
        )
    obs.count("fleet.drift_records", store.rows)
    return DriftStudyOutcome(
        devices=devices,
        store=store,
        dims=dims,
        step_table=step_table,
        summary=summary,
    )
