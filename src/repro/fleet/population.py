"""Seeded synthetic device populations sampled from vendor distributions.

The paper measures five handsets; a production deployment faces millions
of heterogeneous devices. This module scales the device axis: a
:class:`VendorSpec` describes one vendor's parameter *distributions*
(sensor noise coefficients, optics, ISP stage profile, codec defaults,
OS decoder variant, upgrade behaviour), and :func:`generate_fleet` draws
a population of :class:`~repro.devices.profiles.DeviceProfile`\\ s from a
weighted vendor catalog. Every sampled spec goes through the same
:func:`~repro.devices.profiles.build_profile` factory as the paper's
fixed fleets, so generated devices run unchanged through
:class:`~repro.runner.executor.FleetExecutor` and share its
content-addressed capture cache.

Determinism contract
--------------------
Device ``i`` of a fleet is a pure function of ``(spec, seed, i)``: its
vendor draw and parameter draws come from RNGs derived via
:func:`repro.runner.seeds.unit_entropy` from those coordinates alone.
Consequences, both locked in by ``tests/fleet/test_population.py``:

* the same :class:`FleetSpec` and seed reproduce a bit-identical fleet
  (equal dataclasses, equal cache fingerprints), and
* a fleet of size ``N`` is a strict prefix of a fleet of size ``M > N``
  — growing a study never re-rolls existing devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from .. import obs
from ..devices.os_sim import DECODER_FAMILIES
from ..devices.profiles import DeviceProfile, DeviceSpec, build_profile
from ..isp.profiles import available_isps
from ..runner.seeds import derive_rng

__all__ = [
    "ParamRange",
    "Weighted",
    "VendorSpec",
    "FleetSpec",
    "SyntheticDevice",
    "DEFAULT_VENDORS",
    "default_fleet_spec",
    "sample_device",
    "generate_fleet",
    "generate_devices",
    "fixed_devices",
]


@dataclass(frozen=True)
class ParamRange:
    """A closed uniform interval one scalar parameter is drawn from."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError(f"empty range [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        """One draw; degenerate ranges return the constant exactly."""
        if self.low == self.high:
            return self.low
        return float(rng.uniform(self.low, self.high))

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


@dataclass(frozen=True)
class Weighted:
    """A weighted categorical choice over strings (ISPs, formats, ...)."""

    choices: Tuple[str, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.choices) != len(self.weights) or not self.choices:
            raise ValueError("choices and weights must be non-empty and aligned")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with a positive sum")

    def sample(self, rng: np.random.Generator) -> str:
        total = float(sum(self.weights))
        probabilities = [w / total for w in self.weights]
        return str(rng.choice(list(self.choices), p=probabilities))


@dataclass(frozen=True)
class VendorSpec:
    """One vendor's parameter distributions.

    The axes mirror :class:`~repro.devices.profiles.DeviceSpec`: sensor
    noise coefficients, optics, spectral response and exposure tuning,
    the vendor's ISP stage profile, codec defaults, the OS decoder
    build its devices ship with, and how eagerly the vendor rolls out
    OS upgrades (the churn axis of the drift study).
    """

    name: str
    #: Relative share of the population (need not be normalized).
    market_share: float
    full_well: ParamRange
    read_noise: ParamRange
    dark_current: ParamRange
    prnu: ParamRange
    vignetting: ParamRange
    blur: ParamRange
    chroma_ab: ParamRange
    #: Red/blue spectral sensitivity relative to green.
    red_sensitivity: ParamRange
    blue_sensitivity: ParamRange
    exposure: ParamRange
    #: The vendor's ISP tuning(s); names from :mod:`repro.isp.profiles`.
    isp: Weighted
    save_format: Weighted
    save_quality: ParamRange
    #: Probability a device exposes raw capture.
    raw_probability: float
    #: OS decoder family the vendor ships initially.
    decoder_family: Weighted
    #: Family devices move to when they take the simulated OS upgrade.
    upgrade_decoder_family: str = "mainline"
    #: Per-time-step probability an un-upgraded device upgrades.
    upgrade_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.market_share <= 0:
            raise ValueError("market_share must be positive")
        if not 0.0 <= self.raw_probability <= 1.0:
            raise ValueError("raw_probability must be in [0, 1]")
        if not 0.0 <= self.upgrade_rate <= 1.0:
            raise ValueError("upgrade_rate must be in [0, 1]")
        known_isps = set(available_isps())
        unknown = [name for name in self.isp.choices if name not in known_isps]
        if unknown:
            raise ValueError(f"vendor {self.name!r} references unknown ISPs {unknown}")
        for family in tuple(self.decoder_family.choices) + (
            self.upgrade_decoder_family,
        ):
            if family not in DECODER_FAMILIES:
                raise ValueError(
                    f"vendor {self.name!r} references unknown decoder {family!r}"
                )


@dataclass(frozen=True)
class FleetSpec:
    """A population design: which vendors, in what proportions."""

    vendors: Tuple[VendorSpec, ...]

    def __post_init__(self) -> None:
        if not self.vendors:
            raise ValueError("a fleet needs at least one vendor")
        names = [v.name for v in self.vendors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate vendor names in {names}")

    def shares(self) -> Tuple[float, ...]:
        total = sum(v.market_share for v in self.vendors)
        return tuple(v.market_share / total for v in self.vendors)


@dataclass(frozen=True)
class SyntheticDevice:
    """One generated population member.

    Carries the executable profile plus the population-level metadata
    (vendor identity, upgrade schedule) the fleet studies need and a
    plain :class:`~repro.devices.profiles.DeviceProfile` cannot hold.
    """

    index: int
    vendor: str
    spec: DeviceSpec
    profile: DeviceProfile
    #: Time step at which the device takes the OS upgrade (a device
    #: whose step exceeds the study horizon never upgrades in-window).
    upgrade_step: int
    upgrade_decoder_family: str


def _tiered_vendor(
    name: str,
    market_share: float,
    tier: float,
    isp: Weighted,
    save_format: Weighted,
    decoder_family: Weighted,
    raw_probability: float,
    upgrade_rate: float,
) -> VendorSpec:
    """Build a vendor whose ranges interpolate between tiers.

    ``tier`` runs 0 (budget: small photosites, strong vignetting, soft
    optics, low JPEG quality) to 1 (flagship: clean sensor, good glass,
    high quality). Each parameter range is centred on the tier point
    with vendor-characteristic width, keeping every draw inside the
    physically sensible envelope the paper's ten phones span.
    """

    def lerp(low: float, high: float) -> float:
        return low + (high - low) * tier

    return VendorSpec(
        name=name,
        market_share=market_share,
        full_well=ParamRange(lerp(12000, 26000), lerp(20000, 34000)),
        read_noise=ParamRange(lerp(0.0016, 0.0011), lerp(0.0024, 0.0017)),
        dark_current=ParamRange(lerp(0.0006, 0.0003), lerp(0.0016, 0.0011)),
        prnu=ParamRange(lerp(0.003, 0.002), lerp(0.008, 0.006)),
        vignetting=ParamRange(lerp(0.07, 0.04), lerp(0.12, 0.07)),
        blur=ParamRange(lerp(0.58, 0.48), lerp(0.78, 0.62)),
        chroma_ab=ParamRange(lerp(0.0012, 0.0005), lerp(0.0026, 0.0013)),
        red_sensitivity=ParamRange(lerp(0.555, 0.565), lerp(0.575, 0.585)),
        blue_sensitivity=ParamRange(lerp(0.615, 0.625), lerp(0.635, 0.645)),
        exposure=ParamRange(lerp(0.838, 0.848), lerp(0.858, 0.868)),
        isp=isp,
        save_format=save_format,
        save_quality=ParamRange(lerp(80, 86), lerp(90, 95)),
        raw_probability=raw_probability,
        decoder_family=decoder_family,
        upgrade_decoder_family="mainline",
        upgrade_rate=upgrade_rate,
    )


_MAINLINE = Weighted(choices=("mainline",), weights=(1.0,))
_MOSTLY_VENDOR = Weighted(choices=("vendor_neon", "mainline"), weights=(0.8, 0.2))
_JPEG_ONLY = Weighted(choices=("jpeg",), weights=(1.0,))


#: A plausible smartphone market: two flagship vendors (one of them the
#: HEIF/mainline Apple analogue), two mid-tier Android vendors, and two
#: budget vendors shipping the divergent vendor decoder build — the mix
#: that reproduces the paper's two-camp §7 structure at population scale.
DEFAULT_VENDORS: Tuple[VendorSpec, ...] = (
    _tiered_vendor(
        "aurora",  # flagship Android (Galaxy S10 analogue)
        market_share=0.24,
        tier=0.9,
        isp=Weighted(choices=("samsung_s10", "htc_desire10"), weights=(0.85, 0.15)),
        save_format=_JPEG_ONLY,
        decoder_family=_MAINLINE,
        raw_probability=0.7,
        upgrade_rate=0.35,
    ),
    _tiered_vendor(
        "pommier",  # flagship iOS analogue (iPhone XR)
        market_share=0.22,
        tier=1.0,
        isp=Weighted(choices=("iphone_xr",), weights=(1.0,)),
        save_format=Weighted(choices=("heif", "jpeg"), weights=(0.8, 0.2)),
        decoder_family=_MAINLINE,
        raw_probability=0.8,
        upgrade_rate=0.55,
    ),
    _tiered_vendor(
        "meridian",  # mid-tier (Moto G5 analogue)
        market_share=0.18,
        tier=0.5,
        isp=Weighted(choices=("moto_g5", "imagemagick"), weights=(0.9, 0.1)),
        save_format=_JPEG_ONLY,
        decoder_family=_MAINLINE,
        raw_probability=0.2,
        upgrade_rate=0.25,
    ),
    _tiered_vendor(
        "kestrel",  # mid-tier (HTC Desire analogue)
        market_share=0.12,
        tier=0.45,
        isp=Weighted(choices=("htc_desire10",), weights=(1.0,)),
        save_format=_JPEG_ONLY,
        decoder_family=Weighted(
            choices=("mainline", "vendor_neon"), weights=(0.7, 0.3)
        ),
        raw_probability=0.1,
        upgrade_rate=0.2,
    ),
    _tiered_vendor(
        "lyrebird",  # budget, divergent decoder camp (Huawei analogue)
        market_share=0.14,
        tier=0.2,
        isp=Weighted(choices=("lg_k10", "adobe"), weights=(0.9, 0.1)),
        save_format=_JPEG_ONLY,
        decoder_family=_MOSTLY_VENDOR,
        raw_probability=0.0,
        upgrade_rate=0.12,
    ),
    _tiered_vendor(
        "tundra",  # budget, divergent decoder camp (Xiaomi analogue)
        market_share=0.10,
        tier=0.1,
        isp=Weighted(choices=("lg_k10",), weights=(1.0,)),
        save_format=_JPEG_ONLY,
        decoder_family=_MOSTLY_VENDOR,
        raw_probability=0.0,
        upgrade_rate=0.1,
    ),
)


def default_fleet_spec() -> FleetSpec:
    """The default population design over :data:`DEFAULT_VENDORS`."""
    return FleetSpec(vendors=DEFAULT_VENDORS)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def _sample_upgrade_step(rng: np.random.Generator, rate: float) -> int:
    """First time step (1-based) at which the device upgrades.

    Geometric in the vendor's per-step upgrade rate; a zero rate means
    the device never upgrades (represented as a far-future step).
    """
    if rate <= 0.0:
        return np.iinfo(np.int32).max
    return int(rng.geometric(rate))


def sample_device(spec: FleetSpec, seed: int, index: int) -> SyntheticDevice:
    """Draw population member ``index`` — independent of fleet size.

    Two RNG streams keep the prefix property exact: the vendor draw uses
    ``(seed, "fleet.vendor", index)`` and the parameter draws use
    ``(seed, "fleet.device", vendor, index)``, so no draw for device
    ``i`` ever consumes entropy belonging to device ``j``.
    """
    vendor_rng = derive_rng(seed, "fleet.vendor", index)
    vendors = list(spec.vendors)
    vendor = vendors[
        int(vendor_rng.choice(len(vendors), p=list(spec.shares())))
    ]

    rng = derive_rng(seed, "fleet.device", vendor.name, index)
    device_spec = DeviceSpec(
        name=f"{vendor.name}-{index:06d}",
        model_code=f"{vendor.name.upper()}-{index:06d}",
        sensitivity=(
            round(vendor.red_sensitivity.sample(rng), 6),
            1.0,
            round(vendor.blue_sensitivity.sample(rng), 6),
        ),
        exposure=round(vendor.exposure.sample(rng), 6),
        full_well=round(vendor.full_well.sample(rng), 1),
        read_noise=round(vendor.read_noise.sample(rng), 7),
        vignetting=round(vendor.vignetting.sample(rng), 6),
        blur=round(vendor.blur.sample(rng), 6),
        chroma_ab=round(vendor.chroma_ab.sample(rng), 7),
        noise_seed=int(rng.integers(0, 2**31 - 1)),
        dark_current=round(vendor.dark_current.sample(rng), 7),
        prnu=round(vendor.prnu.sample(rng), 6),
        isp=vendor.isp.sample(rng),
        save_format=vendor.save_format.sample(rng),
        save_quality=int(round(vendor.save_quality.sample(rng))),
        supports_raw=bool(rng.random() < vendor.raw_probability),
        decoder_family=vendor.decoder_family.sample(rng),
        soc=f"SIM-{vendor.name.upper()}",
    )
    return SyntheticDevice(
        index=index,
        vendor=vendor.name,
        spec=device_spec,
        profile=build_profile(device_spec),
        upgrade_step=_sample_upgrade_step(rng, vendor.upgrade_rate),
        upgrade_decoder_family=vendor.upgrade_decoder_family,
    )


def generate_devices(
    size: int, seed: int = 0, spec: FleetSpec | None = None
) -> List[SyntheticDevice]:
    """Sample a population of ``size`` synthetic devices.

    Parameters
    ----------
    size:
        Number of devices. Device ``i`` depends only on ``(spec, seed,
        i)``, so a size-100 fleet is a prefix of the size-1000 fleet for
        the same seed.
    seed:
        Master seed for the population.
    spec:
        Population design; defaults to :func:`default_fleet_spec`.

    Returns
    -------
    ``size`` :class:`SyntheticDevice` entries in index order.
    """
    if size < 1:
        raise ValueError("fleet size must be >= 1")
    spec = spec if spec is not None else default_fleet_spec()
    with obs.span("fleet.generate", size=size, vendors=len(spec.vendors)):
        devices = [sample_device(spec, seed, i) for i in range(size)]
    obs.count("fleet.devices_generated", size)
    return devices


def generate_fleet(
    size: int, seed: int = 0, spec: FleetSpec | None = None
) -> List[DeviceProfile]:
    """Sample a population and return just the executable profiles.

    The profiles slot directly into every existing experiment
    (``EndToEndExperiment(phones=generate_fleet(1000))``) and into
    :class:`~repro.runner.executor.FleetExecutor` capture units.
    """
    return [device.profile for device in generate_devices(size, seed, spec)]


def fixed_devices(specs) -> List[SyntheticDevice]:
    """Wrap fixed :class:`DeviceSpec` records as a degenerate population.

    The paper's five capture phones are exactly
    ``fixed_devices(CAPTURE_SPECS)`` — same factory, no sampling — which
    lets every population study also run on the paper's fleet.
    """
    return [
        SyntheticDevice(
            index=i,
            vendor=spec.name,
            spec=spec,
            profile=build_profile(spec),
            upgrade_step=np.iinfo(np.int32).max,
            upgrade_decoder_family=spec.decoder_family,
        )
        for i, spec in enumerate(specs)
    ]
