"""Synthetic device populations: generate, execute, aggregate at scale.

The paper characterizes instability across five physical handsets; this
package asks the population-level question those five can't answer —
what does the instability *distribution* look like across a thousand
devices, and which devices are outliers? It has four parts:

* :mod:`~repro.fleet.population` — seeded per-vendor parameter
  distributions that sample :class:`~repro.devices.profiles.DeviceSpec`
  records and feed them through the same :func:`build_profile` factory
  as the paper's fixed fleets.
* :mod:`~repro.fleet.columnar` — a struct-array record store with JSONL
  shard spill, so millions of capture records never become Python
  objects.
* :mod:`~repro.fleet.stats` — merge-associative (integer-sum)
  population aggregation: consensus labels, per-device divergence,
  percentiles, robust (MAD) outlier detection.
* :mod:`~repro.fleet.studies` — the studies themselves: population
  capture instability and OS-upgrade drift over simulated time, exposed
  on the CLI as ``python -m repro fleet``.
"""

from .columnar import ColumnarStore, concat_tables, read_shard, write_shard
from .population import (
    DEFAULT_VENDORS,
    FleetSpec,
    ParamRange,
    SyntheticDevice,
    VendorSpec,
    Weighted,
    default_fleet_spec,
    fixed_devices,
    generate_devices,
    generate_fleet,
    sample_device,
)
from .stats import (
    CONF_SCALE,
    RECORD_DTYPE,
    SUMMARY_PERCENTILES,
    ConsensusCounts,
    DeviceStats,
    TableDims,
    aggregate_tables,
    population_summary,
    robust_outliers,
)
from .studies import (
    FLEET_PRETRAIN,
    DriftStudyOutcome,
    PopulationStudyOutcome,
    fleet_model,
    run_drift_study,
    run_population_study,
)

__all__ = [
    "CONF_SCALE",
    "ColumnarStore",
    "ConsensusCounts",
    "DEFAULT_VENDORS",
    "DeviceStats",
    "DriftStudyOutcome",
    "FLEET_PRETRAIN",
    "FleetSpec",
    "ParamRange",
    "PopulationStudyOutcome",
    "RECORD_DTYPE",
    "SUMMARY_PERCENTILES",
    "SyntheticDevice",
    "TableDims",
    "VendorSpec",
    "Weighted",
    "aggregate_tables",
    "concat_tables",
    "default_fleet_spec",
    "fixed_devices",
    "fleet_model",
    "generate_devices",
    "generate_fleet",
    "population_summary",
    "read_shard",
    "robust_outliers",
    "run_drift_study",
    "run_population_study",
    "sample_device",
    "write_shard",
]
