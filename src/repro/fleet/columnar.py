"""Columnar results store: NumPy struct-array chunks with JSONL spill.

A million-device study produces millions of capture records; a Python
object per record would dominate memory and GC time long before the
capture pipeline does. :class:`ColumnarStore` keeps records as NumPy
structured arrays end to end:

* **Append** is batch-only: callers hand whole column vectors (or a
  ready struct array); no per-record objects are ever created or held.
* **Memory** is a list of struct-array chunks — ``rows * itemsize``
  bytes, nothing else.
* **Spill** writes full shards to column-oriented JSONL files once the
  in-memory row count crosses ``shard_rows``, so a store can hold far
  more records than RAM. Shards are self-describing (header line with
  schema, one line per column) and byte-stable: the writer iterates
  fields in dtype order and encodes floats via ``repr`` round-trip, so
  shard bytes are independent of ``PYTHONHASHSEED`` and re-writes are
  reproducible (``tests/fleet/test_columnar.py``).
* **Aggregation** never needs the whole table at once:
  :meth:`ColumnarStore.iter_tables` yields one struct array per shard /
  chunk, which is what makes the two-pass population aggregation in
  :mod:`repro.fleet.stats` shard-mergeable.

Object-dtype fields are rejected at construction: the store's whole
point is that a record is a fixed-width row, not a boxed Python value.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from .. import obs

__all__ = ["ColumnarStore", "write_shard", "read_shard", "concat_tables"]

_SHARD_FORMAT = "repro-columnar-v1"


def _validate_dtype(dtype: np.dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype.names is None:
        raise ValueError("ColumnarStore needs a structured dtype with named fields")
    if dtype.hasobject:
        raise ValueError(
            "object-dtype fields defeat the columnar layout; use fixed-width "
            "numeric or unicode fields"
        )
    return dtype


# ----------------------------------------------------------------------
# JSONL shard serialization (column-oriented, byte-stable)
# ----------------------------------------------------------------------
def write_shard(table: np.ndarray, path: Union[str, Path]) -> Path:
    """Write one struct array as a column-oriented JSONL shard.

    Line 1 is the header (format tag, row count, field schema in dtype
    order); each following line is one column: ``{"name": ..., "data":
    [...]}``. Ints serialize exactly; floats via Python ``repr`` (the
    shortest round-tripping decimal), and float32 columns are widened to
    float64 (exact) before encoding, so the round trip is lossless.
    """
    table = np.ascontiguousarray(table)
    dtype = _validate_dtype(table.dtype)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fields = [
        {"name": name, "dtype": dtype.fields[name][0].str} for name in dtype.names
    ]
    with obs.span("fleet.shard_write", rows=int(table.shape[0])):
        with path.open("w", encoding="utf-8") as fh:
            header = {
                "format": _SHARD_FORMAT,
                "rows": int(table.shape[0]),
                "fields": fields,
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for name in dtype.names:
                column = table[name]
                if column.dtype.kind == "f":
                    data = [float(v) for v in column.astype(np.float64)]
                elif column.dtype.kind in "iub":
                    data = [int(v) for v in column]
                elif column.dtype.kind == "U":
                    data = [str(v) for v in column]
                else:
                    raise TypeError(
                        f"unsupported column kind {column.dtype.kind!r} "
                        f"for field {name!r}"
                    )
                fh.write(json.dumps({"name": name, "data": data}) + "\n")
    obs.count("fleet.store.shards_written")
    return path


def read_shard(path: Union[str, Path]) -> np.ndarray:
    """Read one shard written by :func:`write_shard` back to a struct array."""
    path = Path(path)
    with obs.span("fleet.shard_read"):
        with path.open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            if header.get("format") != _SHARD_FORMAT:
                raise ValueError(
                    f"{path} is not a {_SHARD_FORMAT} shard "
                    f"(format={header.get('format')!r})"
                )
            rows = int(header["rows"])
            dtype = np.dtype(
                [(f["name"], f["dtype"]) for f in header["fields"]]
            )
            table = np.empty(rows, dtype=dtype)
            seen = set()
            for line in fh:
                column = json.loads(line)
                name = column["name"]
                if name not in dtype.names or name in seen:
                    raise ValueError(f"{path}: unexpected column {name!r}")
                seen.add(name)
                table[name] = np.asarray(
                    column["data"], dtype=dtype.fields[name][0]
                )
    missing = set(dtype.names) - seen
    if missing:
        raise ValueError(f"{path}: shard missing columns {sorted(missing)}")
    return table


def concat_tables(tables: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate struct arrays with identical dtypes (empty-safe)."""
    tables = [t for t in tables if t.shape[0]]
    if not tables:
        raise ValueError("no rows to concatenate")
    return np.concatenate(tables)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ColumnarStore:
    """Append-only columnar record store with optional disk spill.

    Parameters
    ----------
    dtype:
        Structured record dtype (object fields rejected).
    spill_dir:
        Directory for JSONL shards. ``None`` keeps everything in
        memory (chunked struct arrays — still no per-record objects).
    shard_rows:
        Spill threshold: once the in-memory row count reaches this,
        buffered chunks are flushed to one shard file.
    """

    def __init__(
        self,
        dtype: np.dtype,
        spill_dir: Optional[Union[str, Path]] = None,
        shard_rows: int = 262144,
    ) -> None:
        if shard_rows < 1:
            raise ValueError("shard_rows must be positive")
        self.dtype = _validate_dtype(dtype)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.shard_rows = shard_rows
        self._chunks: List[np.ndarray] = []
        self._buffered_rows = 0
        self._spilled_rows = 0
        self._shards: List[Path] = []

    # -- append --------------------------------------------------------
    def append_table(self, table: np.ndarray) -> None:
        """Append a struct array of records (batch append, zero boxing)."""
        table = np.asarray(table)
        if table.dtype != self.dtype:
            raise ValueError(
                f"table dtype {table.dtype} does not match store dtype {self.dtype}"
            )
        if table.ndim != 1:
            raise ValueError("record tables must be one-dimensional")
        if not table.shape[0]:
            return
        self._chunks.append(np.ascontiguousarray(table))
        self._buffered_rows += int(table.shape[0])
        obs.count("fleet.store.rows_appended", int(table.shape[0]))
        if self.spill_dir is not None:
            while self._buffered_rows >= self.shard_rows:
                self._spill_one_shard()

    def append_columns(self, **columns: np.ndarray) -> None:
        """Append records given as aligned column vectors.

        ``store.append_columns(device=ids, predicted=preds, ...)`` builds
        the struct-array chunk vectorized — the convenient front door for
        study code that naturally produces per-column arrays.
        """
        names = set(columns)
        expected = set(self.dtype.names)
        if names != expected:
            raise ValueError(
                f"column mismatch: got {sorted(names)}, need {sorted(expected)}"
            )
        arrays = {
            name: np.asarray(values) for name, values in columns.items()
        }
        lengths = {name: arr.shape[0] for name, arr in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        rows = next(iter(lengths.values()))
        table = np.empty(rows, dtype=self.dtype)
        for name in self.dtype.names:
            table[name] = arrays[name]
        self.append_table(table)

    # -- spill ---------------------------------------------------------
    def _spill_one_shard(self) -> None:
        assert self.spill_dir is not None
        take = min(self.shard_rows, self._buffered_rows)
        head: List[np.ndarray] = []
        remaining = take
        while remaining:
            chunk = self._chunks.pop(0)
            if chunk.shape[0] <= remaining:
                head.append(chunk)
                remaining -= chunk.shape[0]
            else:
                head.append(chunk[:remaining])
                self._chunks.insert(0, np.ascontiguousarray(chunk[remaining:]))
                remaining = 0
        table = concat_tables(head)
        path = self.spill_dir / f"shard-{len(self._shards):06d}.jsonl"
        write_shard(table, path)
        self._shards.append(path)
        self._buffered_rows -= take
        self._spilled_rows += take
        obs.count("fleet.store.rows_spilled", take)

    def flush(self) -> None:
        """Force-spill any buffered rows (no-op without a spill dir)."""
        if self.spill_dir is not None and self._buffered_rows:
            self._spill_one_shard()

    # -- read ----------------------------------------------------------
    @property
    def rows(self) -> int:
        """Total record count across memory and spilled shards."""
        return self._buffered_rows + self._spilled_rows

    def __len__(self) -> int:
        return self.rows

    @property
    def nbytes(self) -> int:
        """Bytes held in memory (spilled shards cost nothing resident)."""
        return sum(chunk.nbytes for chunk in self._chunks)

    @property
    def shard_paths(self) -> List[Path]:
        return list(self._shards)

    @property
    def memory_chunks(self) -> List[np.ndarray]:
        """The in-memory struct-array chunks (read-only use)."""
        return list(self._chunks)

    def iter_tables(self) -> Iterator[np.ndarray]:
        """Yield every record batch: spilled shards first, then memory.

        The order is deterministic (shard index order, then append
        order); aggregation built on it must be merge-associative
        anyway, which ``tests/fleet/test_stats.py`` proves.
        """
        for path in self._shards:
            yield read_shard(path)
        for chunk in self._chunks:
            yield chunk

    def table(self) -> np.ndarray:
        """Materialize all records as one struct array.

        Convenient for small studies and tests; population-scale callers
        should prefer :meth:`iter_tables`.
        """
        return concat_tables(list(self.iter_tables()))

    def column_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-numeric-column min/max/mean over the full store (streamed)."""
        totals: Dict[str, Dict[str, float]] = {}
        count = 0
        for table in self.iter_tables():
            count += table.shape[0]
            for name in self.dtype.names:
                column = table[name]
                if column.dtype.kind not in "iufb":
                    continue
                entry = totals.setdefault(
                    name, {"min": np.inf, "max": -np.inf, "sum": 0.0}
                )
                entry["min"] = min(entry["min"], float(column.min()))
                entry["max"] = max(entry["max"], float(column.max()))
                entry["sum"] += float(column.astype(np.float64).sum())
        return {
            name: {
                "min": entry["min"],
                "max": entry["max"],
                "mean": entry["sum"] / count if count else 0.0,
            }
            for name, entry in sorted(totals.items())
        }
