"""Population-level instability statistics over columnar record tables.

The paper reports one instability number over five phones; a population
study needs the *distribution*: per-device divergence percentiles,
outlier devices, accuracy spread. This module computes those from
:class:`~repro.fleet.columnar.ColumnarStore` record batches in two
shard-mergeable passes:

1. :class:`ConsensusCounts` — per ``(scene, repeat, step)`` presentation
   key, how often each label was predicted across the whole population.
   Pure integer counts, so merging partial counts is exactly associative
   and the fleet-consensus label (majority, ties to the lowest label)
   is identical no matter how records were sharded.
2. :class:`DeviceStats` — per device, how many records, how many agreed
   with the consensus, how many were correct, and fixed-point confidence
   and byte totals. Integer sums again: merging shard-level stats in any
   grouping or order gives bit-identical results
   (``tests/fleet/test_stats.py`` proves associativity).

Confidence is accumulated in 2^24 fixed point rather than floating
point — float addition is not associative, and shard-merge-equals-
single-pass is the property the whole layer is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "RECORD_DTYPE",
    "TableDims",
    "ConsensusCounts",
    "DeviceStats",
    "robust_outliers",
    "population_summary",
]

#: One capture record: who, what, when, and what the model said. Fixed
#: width (32 bytes) — a million records is 32 MB, never a million
#: Python objects.
RECORD_DTYPE = np.dtype(
    [
        ("device", "<u4"),
        ("scene", "<u4"),
        ("repeat", "<u2"),
        ("step", "<u2"),
        ("true_label", "<i2"),
        ("predicted", "<i2"),
        ("confidence", "<f4"),
        ("encoded_size", "<i8"),
    ]
)

#: Fixed-point scale for confidence accumulation (see module docstring).
CONF_SCALE = 1 << 24


@dataclass(frozen=True)
class TableDims:
    """The key space a record table lives in."""

    n_devices: int
    n_scenes: int
    n_repeats: int
    n_steps: int
    n_labels: int

    def __post_init__(self) -> None:
        for name in ("n_devices", "n_scenes", "n_repeats", "n_steps", "n_labels"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def n_keys(self) -> int:
        return self.n_scenes * self.n_repeats * self.n_steps

    def key_of(self, table: np.ndarray) -> np.ndarray:
        """Presentation-key index for every record (vectorized)."""
        scene = table["scene"].astype(np.int64)
        repeat = table["repeat"].astype(np.int64)
        step = table["step"].astype(np.int64)
        if scene.size:
            for name, values, bound in (
                ("scene", scene, self.n_scenes),
                ("repeat", repeat, self.n_repeats),
                ("step", step, self.n_steps),
            ):
                if int(values.max()) >= bound:
                    raise ValueError(
                        f"{name} index {int(values.max())} out of range "
                        f"for bound {bound}"
                    )
        return (scene * self.n_repeats + repeat) * self.n_steps + step


@dataclass
class ConsensusCounts:
    """Population vote counts per presentation key (pass 1).

    ``counts[key, label]`` is how many records predicted ``label`` for
    presentation ``key``. Integer counts merge exactly associatively.
    """

    dims: TableDims
    counts: np.ndarray  # (n_keys, n_labels) int64

    @classmethod
    def empty(cls, dims: TableDims) -> "ConsensusCounts":
        return cls(dims=dims, counts=np.zeros((dims.n_keys, dims.n_labels), np.int64))

    @classmethod
    def from_table(cls, table: np.ndarray, dims: TableDims) -> "ConsensusCounts":
        out = cls.empty(dims)
        out.accumulate(table)
        return out

    def accumulate(self, table: np.ndarray) -> None:
        """Fold one record batch into the counts."""
        if not table.shape[0]:
            return
        keys = self.dims.key_of(table)
        labels = table["predicted"].astype(np.int64)
        if int(labels.min()) < 0 or int(labels.max()) >= self.dims.n_labels:
            raise ValueError("predicted label out of range")
        flat = keys * self.dims.n_labels + labels
        self.counts += np.bincount(
            flat, minlength=self.dims.n_keys * self.dims.n_labels
        ).reshape(self.dims.n_keys, self.dims.n_labels)

    def merge(self, other: "ConsensusCounts") -> "ConsensusCounts":
        """Combine two partial counts (associative, commutative)."""
        if other.dims != self.dims:
            raise ValueError("cannot merge counts over different dims")
        return ConsensusCounts(dims=self.dims, counts=self.counts + other.counts)

    def consensus_labels(self) -> np.ndarray:
        """Majority label per key; ties break to the lowest label.

        Keys nobody recorded get ``-1`` (no record can match it, and no
        device has a record there to be judged against it either).
        """
        labels = np.argmax(self.counts, axis=1).astype(np.int64)
        labels[self.counts.sum(axis=1) == 0] = -1
        return labels

    def disagreement_keys(self) -> np.ndarray:
        """Boolean mask of keys where the population split its vote.

        The population analogue of the paper's per-image instability:
        a presentation is unstable iff at least two devices disagreed.
        """
        return (self.counts > 0).sum(axis=1) > 1


@dataclass
class DeviceStats:
    """Per-device aggregates versus the fleet consensus (pass 2).

    All fields are integer sums, so shard-level stats merge exactly.
    """

    dims: TableDims
    records: np.ndarray  # (n_devices,) int64
    disagree: np.ndarray  # records whose prediction != consensus
    correct: np.ndarray  # records whose prediction == true label
    confidence_q: np.ndarray  # fixed-point confidence sum (CONF_SCALE)
    bytes_total: np.ndarray  # encoded_size sum

    @classmethod
    def empty(cls, dims: TableDims) -> "DeviceStats":
        zeros = lambda: np.zeros(dims.n_devices, np.int64)  # noqa: E731
        return cls(
            dims=dims,
            records=zeros(),
            disagree=zeros(),
            correct=zeros(),
            confidence_q=zeros(),
            bytes_total=zeros(),
        )

    @classmethod
    def from_table(
        cls, table: np.ndarray, consensus: np.ndarray, dims: TableDims
    ) -> "DeviceStats":
        out = cls.empty(dims)
        out.accumulate(table, consensus)
        return out

    def accumulate(self, table: np.ndarray, consensus: np.ndarray) -> None:
        """Fold one record batch, judged against the global consensus."""
        if not table.shape[0]:
            return
        devices = table["device"].astype(np.int64)
        if int(devices.max()) >= self.dims.n_devices:
            raise ValueError("device index out of range")
        keys = self.dims.key_of(table)
        predicted = table["predicted"].astype(np.int64)
        n = self.dims.n_devices
        self.records += np.bincount(devices, minlength=n)
        self.disagree += np.bincount(
            devices, weights=(predicted != consensus[keys]), minlength=n
        ).astype(np.int64)
        self.correct += np.bincount(
            devices,
            weights=(predicted == table["true_label"].astype(np.int64)),
            minlength=n,
        ).astype(np.int64)
        conf_fixed = np.round(
            table["confidence"].astype(np.float64) * CONF_SCALE
        ).astype(np.int64)
        self.confidence_q += np.bincount(devices, weights=conf_fixed, minlength=n).astype(
            np.int64
        )
        self.bytes_total += np.bincount(
            devices, weights=table["encoded_size"].astype(np.int64), minlength=n
        ).astype(np.int64)

    def merge(self, other: "DeviceStats") -> "DeviceStats":
        """Combine two partial stats (associative, commutative)."""
        if other.dims != self.dims:
            raise ValueError("cannot merge stats over different dims")
        return DeviceStats(
            dims=self.dims,
            records=self.records + other.records,
            disagree=self.disagree + other.disagree,
            correct=self.correct + other.correct,
            confidence_q=self.confidence_q + other.confidence_q,
            bytes_total=self.bytes_total + other.bytes_total,
        )

    # -- derived (computed once, from exact integer sums) --------------
    def divergence(self) -> np.ndarray:
        """Per-device fraction of records disagreeing with the consensus."""
        return self.disagree / np.maximum(self.records, 1)

    def accuracy(self) -> np.ndarray:
        """Per-device top-1 accuracy."""
        return self.correct / np.maximum(self.records, 1)

    def mean_confidence(self) -> np.ndarray:
        return self.confidence_q / (CONF_SCALE * np.maximum(self.records, 1))


def robust_outliers(
    values: np.ndarray, threshold: float = 3.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Outlier flags and robust z-scores via the MAD rule.

    ``z = (x - median) / (1.4826 * MAD)``. A zero MAD (more than half
    the population exactly at the median — common when per-device
    divergence is quantized by a small scene count) falls back to the
    Iglewicz–Hoaglin scaled *mean* absolute deviation, ``1.253314 *
    meanAD``, instead of declaring every off-median device an outlier.
    If that is zero too, the population is constant and nothing is
    flagged.
    """
    values = np.asarray(values, dtype=np.float64)
    median = float(np.median(values))
    deviations = np.abs(values - median)
    scale = 1.4826 * float(np.median(deviations))
    if scale == 0.0:
        scale = 1.253314 * float(deviations.mean())
    if scale == 0.0:
        z = np.zeros_like(values)
    else:
        z = deviations / scale
    return z > threshold, z


#: Percentiles reported for every population distribution.
SUMMARY_PERCENTILES: Tuple[int, ...] = (5, 25, 50, 75, 90, 95, 99)


def _percentile_row(values: np.ndarray, qs: Sequence[int]) -> Dict[str, float]:
    return {f"p{q}": float(np.percentile(values, q)) for q in qs}


def population_summary(
    stats: DeviceStats,
    consensus: ConsensusCounts,
    device_names: Sequence[str] = (),
    percentiles: Sequence[int] = SUMMARY_PERCENTILES,
    outlier_threshold: float = 3.5,
    max_outliers: int = 20,
) -> Dict[str, object]:
    """The population-level report the paper's five phones couldn't give.

    Returns a JSON-ready dict: population size and record count,
    divergence/accuracy/confidence percentiles across devices,
    presentation-level instability (fraction of presentations with a
    split vote), and the outlier devices by robust z-score.
    """
    measured = stats.records > 0
    divergence = stats.divergence()[measured]
    accuracy = stats.accuracy()[measured]
    confidence = stats.mean_confidence()[measured]
    measured_indices = np.flatnonzero(measured)
    if not divergence.size:
        raise ValueError("no measured devices to summarize")

    flags, z = robust_outliers(divergence, threshold=outlier_threshold)
    order = np.lexsort((measured_indices, -z))
    outliers: List[Dict[str, object]] = []
    for pos in order:
        if not flags[pos] or len(outliers) >= max_outliers:
            continue
        device = int(measured_indices[pos])
        outliers.append(
            {
                "device": device,
                "name": device_names[device] if device_names else str(device),
                "divergence": float(divergence[pos]),
                "accuracy": float(accuracy[pos]),
                "robust_z": float(z[pos]),
            }
        )

    keyed = consensus.counts.sum(axis=1) > 0
    split = consensus.disagreement_keys()[keyed]
    return {
        "devices": int(stats.dims.n_devices),
        "devices_measured": int(measured.sum()),
        "records": int(stats.records.sum()),
        "presentations": int(keyed.sum()),
        "population_instability": float(split.mean()) if split.size else 0.0,
        "mean_divergence": float(divergence.mean()),
        "divergence_percentiles": _percentile_row(divergence, percentiles),
        "accuracy_percentiles": _percentile_row(accuracy, percentiles),
        "confidence_percentiles": _percentile_row(confidence, percentiles),
        "outlier_threshold": float(outlier_threshold),
        "outlier_count": int(flags.sum()),
        "outliers": outliers,
    }


def aggregate_tables(
    tables: Union[Callable[[], Iterable[np.ndarray]], Iterable[np.ndarray]],
    dims: TableDims,
) -> Tuple[ConsensusCounts, DeviceStats]:
    """Two-pass aggregation over record batches.

    Pass 1 folds every batch into :class:`ConsensusCounts`; pass 2
    re-streams the batches against the frozen consensus. Both passes are
    built from mergeable pieces, so the result is independent of how
    records were split into batches — callers may hand shards from disk,
    in-memory chunks, or any regrouping thereof.

    Pass a *callable* (e.g. ``store.iter_tables``) to stream each pass
    from disk without ever materializing the full table set in memory; a
    plain iterable is cached in memory for the second pass.
    """
    if callable(tables):
        factory = tables
    else:
        cached = list(tables)
        factory = lambda: cached  # noqa: E731
    consensus = ConsensusCounts.empty(dims)
    for table in factory():
        consensus.accumulate(table)
    labels = consensus.consensus_labels()
    stats = DeviceStats.empty(dims)
    for table in factory():
        stats.accumulate(table, labels)
    return consensus, stats
