"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro end-to-end --per-class 8 --save results.json
    python -m repro end-to-end --workers 4 --cache-dir .cache/fleet
    python -m repro firebase --format jpeg --photos 100
    python -m repro compression --per-class 10
    python -m repro isp --per-class 10
    python -m repro raw-vs-jpeg --per-class 10
    python -m repro stability --per-class 12 --epochs 6
    python -m repro fleet --fleet-size 1000 --scenes 4 --workers 4
    python -m repro fleet --study drift --fleet-size 200 --time-steps 8
    python -m repro end-to-end --trace-out trace.jsonl --metrics-out metrics.json
    python -m repro report --trace trace.jsonl --metrics metrics.json
    python -m repro serve --port 7070 --fleet-size 64 --scenes 4
    python -m repro loadgen --port 7070 --count 500 --rate 50 --drain

``--workers N`` fans capture work across N processes and ``--cache-dir``
reuses captured frames across runs; both are output-neutral — results
are bit-identical to a serial, uncached run.

``--trace-out``/``--metrics-out`` activate the :mod:`repro.obs`
observability layer for the run and write a JSONL span trace / JSON
metrics snapshot; ``report`` renders those files as per-stage and
per-phone timing plus cache-efficiency tables. Observation is also
output-neutral: it times and counts, it never touches results.

Each command trains/loads the shared base model (cached after the first
run), executes the experiment deterministically, and prints the same
report the corresponding benchmark does.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core import (
    confidence_analysis,
    format_percent,
    format_table,
    instability,
    per_class_instability,
    per_environment_accuracy,
)
from .core.serialize import save_result


def _make_cache(args):
    """Build the shared capture cache when ``--cache-dir`` is given."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from .runner import CaptureCache

    return CaptureCache(cache_dir)


def _cmd_end_to_end(args) -> None:
    from .lab import EndToEndExperiment

    result = EndToEndExperiment(
        seed=args.seed, workers=args.workers, cache=_make_cache(args)
    ).run(per_class=args.per_class)
    print("accuracy by phone:")
    for phone, acc in per_environment_accuracy(result).items():
        print(f"  {phone}: {format_percent(acc)}")
    print(f"instability: {format_percent(instability(result))}")
    for cls, inst in per_class_instability(result).items():
        print(f"  {cls}: {format_percent(inst)}")
    split = confidence_analysis(result).summary()
    print("confidence (mean, std) by stability group:")
    for group, (mean, std) in split.items():
        print(f"  {group}: {mean:.3f}, {std:.3f}")
    if args.save:
        save_result(result, args.save)
        print(f"records saved to {args.save}")


def _cmd_firebase(args) -> None:
    from .lab import FirebaseTestLab

    out = FirebaseTestLab(seed=args.seed).run(
        num_photos=args.photos, image_format=args.format
    )
    print(f"instability ({args.format}): {format_percent(out.instability())}")
    for group, devices in out.hash_groups().items():
        print(f"  {group}: {', '.join(devices)}")
    if args.save:
        save_result(out.result, args.save)
        print(f"records saved to {args.save}")


def _cmd_compression(args) -> None:
    from .lab import (
        CompressionFormatExperiment,
        CompressionQualityExperiment,
        RawCaptureBank,
    )

    cache = _make_cache(args)
    bank = RawCaptureBank.collect(
        per_class=args.per_class, seed=args.seed, workers=args.workers, cache=cache
    )
    quality = CompressionQualityExperiment(workers=args.workers, cache=cache).run(bank)
    formats = CompressionFormatExperiment(workers=args.workers, cache=cache).run(bank)
    for label, out in (("quality", quality), ("formats", formats)):
        accs = out.accuracy_by_environment()
        rows = [
            [env, f"{out.avg_size_bytes[env] / 1024:.1f} KiB", format_percent(accs[env])]
            for env in out.avg_size_bytes
        ]
        print(f"--- {label} ---")
        print(format_table(["environment", "avg size", "accuracy"], rows))
        print(f"instability: {format_percent(out.instability())}\n")


def _cmd_isp(args) -> None:
    from .lab import ISPComparisonExperiment, RawCaptureBank

    cache = _make_cache(args)
    bank = RawCaptureBank.collect(
        per_class=args.per_class, seed=args.seed, workers=args.workers, cache=cache
    )
    out = ISPComparisonExperiment(workers=args.workers, cache=cache).run(bank)
    for isp, acc in out.accuracy_by_isp().items():
        print(f"{isp} accuracy: {format_percent(acc)}")
    print(f"instability: {format_percent(out.instability())}")


def _cmd_raw_vs_jpeg(args) -> None:
    from .lab import RawVsJpegExperiment

    out = RawVsJpegExperiment(
        seed=args.seed, workers=args.workers, cache=_make_cache(args)
    ).run(per_class=args.per_class)
    print(f"JPEG-path instability: {format_percent(out.instability_jpeg())}")
    print(f"raw-path instability:  {format_percent(out.instability_raw())}")
    print(f"relative improvement:  {format_percent(out.relative_improvement())}")


def _cmd_fleet(args) -> None:
    import json

    from .fleet import run_drift_study, run_population_study

    payload = {}
    if args.study in ("capture", "both"):
        out = run_population_study(
            fleet_size=args.fleet_size,
            seed=args.seed,
            scenes=args.scenes,
            repeats=args.repeats,
            workers=args.workers,
            cache=_make_cache(args),
            spill_dir=args.spill_dir,
        )
        summary = out.summary
        payload["population"] = summary
        vendors = {}
        for device in out.devices:
            vendors[device.vendor] = vendors.get(device.vendor, 0) + 1
        print(f"fleet: {summary['devices']} devices, seed {args.seed}")
        print("  " + ", ".join(f"{v}: {n}" for v, n in sorted(vendors.items())))
        print(
            f"records: {summary['records']} "
            f"({args.scenes} scenes x {args.repeats} repeats)"
        )
        print(f"population instability: {format_percent(summary['population_instability'])}")
        print(f"mean divergence:        {format_percent(summary['mean_divergence'])}")
        for title, key in (
            ("divergence", "divergence_percentiles"),
            ("accuracy", "accuracy_percentiles"),
            ("confidence", "confidence_percentiles"),
        ):
            cells = summary[key]
            print(
                f"{title} percentiles: "
                + "  ".join(f"{p}={cells[p]:.4f}" for p in cells)
            )
        print(
            f"outliers (|z| > {summary['outlier_threshold']}): "
            f"{summary['outlier_count']}"
        )
        for row in summary["outliers"][:10]:
            print(
                f"  {row['name']}: divergence {format_percent(row['divergence'])} "
                f"(z = {row['robust_z']:.2f})"
            )
    if args.study in ("drift", "both"):
        out = run_drift_study(
            fleet_size=args.fleet_size,
            seed=args.seed,
            steps=args.time_steps,
            photos=args.photos,
            image_format=args.format,
            spill_dir=args.spill_dir,
        )
        payload["drift"] = {"steps": out.step_table, "summary": out.summary}
        print(f"drift over {args.time_steps} steps ({args.format}, {args.photos} photos):")
        print(
            format_table(
                ["step", "upgraded", "instability", "divergence"],
                [
                    [
                        row["step"],
                        format_percent(row["upgraded_fraction"]),
                        format_percent(row["instability"]),
                        format_percent(row["mean_divergence"]),
                    ]
                    for row in out.step_table
                ],
            )
        )
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"summary saved to {args.save}")


def _cmd_stability(args) -> None:
    from .mitigation import build_stability_corpus, run_table6
    from .nn import load_pretrained

    corpus = build_stability_corpus(per_class=args.per_class, seed=args.seed)
    rows = run_table6(load_pretrained(), corpus, epochs=args.epochs, seed=args.seed)
    print(
        format_table(
            ["noise", "loss", "alpha", "instability", "accuracy"],
            [
                [r.noise, r.stability_loss, r.alpha,
                 format_percent(r.instability), format_percent(r.accuracy)]
                for r in rows
            ],
        )
    )


def _cmd_serve(args) -> None:
    import asyncio
    import json
    import signal

    from .serve import IngestService, ServeConfig, ServeServer

    config = ServeConfig(
        fleet_size=args.fleet_size,
        scenes=args.scenes,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        request_timeout_s=args.request_timeout,
        workers=args.workers,
        batched=args.batched,
        window_s=args.window,
        model=args.model,
    )
    service = IngestService(config, cache=_make_cache(args))
    if args.warm:
        if service.cache is None:
            raise SystemExit("repro serve: --warm needs --cache-dir")
        warmed = service.warm(
            shard_index=args.shard_index, shard_count=args.shard_count
        )
        print(
            f"warmed shard {args.shard_index}/{args.shard_count}: "
            f"{warmed['warmed']} captured, {warmed['already_cached']} already "
            f"cached ({warmed['shard_units']} of {warmed['candidates']} units "
            "in shard)"
        )

    def on_window(summary) -> None:
        latency = summary["latency"]
        p95 = f"{latency['p95_ms']:.1f}" if latency.get("count") else "-"
        print(
            f"window {summary['window']}: "
            f"{summary['captures_per_sec']:.1f} captures/s, "
            f"accepted {summary['accepted']}, shed {summary['shed']}, "
            f"p95 {p95} ms",
            flush=True,
        )

    service.on_window = on_window
    server = ServeServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"serving {config.fleet_size} devices x {config.scenes} scenes "
            f"on {args.host}:{server.port} (seed {config.seed}, "
            f"queue {config.queue_capacity}, model {config.model})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        await server.run()

    asyncio.run(run())
    summary = service.run_summary()
    accounting = summary["accounting"]
    latency = summary["latency"]
    print(
        f"drained: accepted {accounting['accepted']}, "
        f"completed {accounting['completed']}, shed {accounting['shed']}, "
        f"timed out {accounting['timed_out']}, "
        f"balanced={accounting['balanced']}"
    )
    if "captures_per_sec" in summary:
        print(f"sustained: {summary['captures_per_sec']:.1f} captures/s")
    if latency.get("count"):
        print(
            "latency p50/p95/p99: "
            f"{latency['p50_ms']:.1f} / {latency['p95_ms']:.1f} / "
            f"{latency['p99_ms']:.1f} ms"
        )
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary saved to {args.summary_out}")
    if not accounting["balanced"]:
        raise SystemExit("repro serve: accounting imbalance after drain")


def _cmd_loadgen(args) -> None:
    import asyncio
    import json

    from .loadgen import run_loadgen

    report = asyncio.run(
        run_loadgen(
            host=args.host,
            port=args.port,
            count=args.count,
            rate=args.rate,
            seed=args.seed,
            repeats=args.repeats,
            drain=args.drain,
            connect_timeout_s=args.connect_timeout,
        )
    )
    statuses = ", ".join(f"{k}: {v}" for k, v in report["by_status"].items())
    print(f"answered {report['answered']}/{report['planned']} ({statuses})")
    print(f"throughput: {report['captures_per_sec']:.1f} captures/s")
    latency = report["latency"]
    if latency.get("count"):
        print(
            "latency p50/p95/p99: "
            f"{latency['p50_ms']:.1f} / {latency['p95_ms']:.1f} / "
            f"{latency['p99_ms']:.1f} ms"
        )
    if args.drain:
        accounting = report.get("server_accounting", {})
        print(
            f"server drained: accepted {accounting.get('accepted')}, "
            f"completed {accounting.get('completed')}, "
            f"balanced={accounting.get('balanced')}"
        )
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report saved to {args.save}")
    if report["answered"] < report["planned"]:
        raise SystemExit(
            f"repro loadgen: {report['planned'] - report['answered']} "
            "requests unanswered"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the MLSys 2021 model-instability experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--per-class", type=int, default=8, dest="per_class")
        p.add_argument("--save", type=str, default=None, help="save records as JSON")
        p.add_argument(
            "--workers",
            type=int,
            default=0,
            help="capture worker processes (0 = serial, -1 = all cores); "
            "results are bit-identical for every setting",
        )
        p.add_argument(
            "--cache-dir",
            type=str,
            default=None,
            dest="cache_dir",
            help="content-addressed capture cache directory (reused across runs)",
        )
        observability(p)

    def observability(p):
        p.add_argument(
            "--trace-out",
            type=str,
            default=None,
            dest="trace_out",
            help="record per-stage timing spans and append them to this "
            "JSONL file (render with `python -m repro report`)",
        )
        p.add_argument(
            "--metrics-out",
            type=str,
            default=None,
            dest="metrics_out",
            help="write the run's metrics snapshot (cache hit rates, "
            "units executed, bytes encoded, ...) to this JSON file",
        )

    p = sub.add_parser("end-to-end", help="the §4 five-phone study")
    common(p)
    p.set_defaults(func=_cmd_end_to_end)

    p = sub.add_parser("firebase", help="the §7 OS/processor experiment")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--photos", type=int, default=100)
    p.add_argument("--format", choices=("jpeg", "png"), default="jpeg")
    p.add_argument("--save", type=str, default=None)
    observability(p)
    p.set_defaults(func=_cmd_firebase)

    p = sub.add_parser("compression", help="Tables 2 and 3")
    common(p)
    p.set_defaults(func=_cmd_compression)

    p = sub.add_parser("isp", help="Table 4")
    common(p)
    p.set_defaults(func=_cmd_isp)

    p = sub.add_parser("raw-vs-jpeg", help="Figure 8 / §9.2")
    common(p)
    p.set_defaults(func=_cmd_raw_vs_jpeg)

    p = sub.add_parser("stability", help="Table 6 / §9.1")
    common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.set_defaults(func=_cmd_stability)

    p = sub.add_parser(
        "fleet",
        help="population-scale studies on a synthetic device fleet",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fleet-size",
        type=int,
        default=1000,
        dest="fleet_size",
        help="synthetic devices to sample from the vendor distributions",
    )
    p.add_argument(
        "--scenes", type=int, default=4, help="displayed scenes every device shoots"
    )
    p.add_argument(
        "--repeats", type=int, default=1, help="repeat shots per (device, scene)"
    )
    p.add_argument(
        "--study",
        choices=("capture", "drift", "both"),
        default="capture",
        help="capture = population instability percentiles + outliers; "
        "drift = OS decoder upgrades over simulated time",
    )
    p.add_argument(
        "--time-steps",
        type=int,
        default=6,
        dest="time_steps",
        help="simulated time steps for the drift study",
    )
    p.add_argument(
        "--photos", type=int, default=40, help="drift-study photo corpus size"
    )
    p.add_argument(
        "--format",
        choices=("jpeg", "png"),
        default="jpeg",
        help="drift-study corpus encoding",
    )
    p.add_argument(
        "--spill-dir",
        type=str,
        default=None,
        dest="spill_dir",
        help="spill record shards to this directory instead of holding "
        "all records in memory",
    )
    p.add_argument("--save", type=str, default=None, help="save summary JSON here")
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="capture worker processes (0 = serial, -1 = all cores); "
        "results are bit-identical for every setting",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        dest="cache_dir",
        help="content-addressed capture cache directory (reused across runs)",
    )
    observability(p)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "lint",
        help="AST-based determinism & invariant linter "
        "(rules in ARCHITECTURE.md 'Invariants')",
    )
    from .lint.cli import configure_parser as _configure_lint

    _configure_lint(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "bench",
        help="micro/macro benchmarks of the kernel backends "
        "(entropy coding, DCT, ISP, conv, capture pipeline)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--quick",
        action="store_true",
        help="shrink inputs for a CI smoke run (128x128 instead of 512x512)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing runs per case; the minimum is reported",
    )
    p.add_argument(
        "--case",
        action="append",
        default=None,
        dest="cases",
        help="run only this case (repeatable); default is the full suite",
    )
    p.add_argument(
        "--serve",
        action="store_true",
        help="run the serving macro benchmark (sustained captures/sec + "
        "p50/p95/p99 latency) instead of the kernel cases",
    )
    p.add_argument(
        "--lint",
        action="store_true",
        help="run the lint macro benchmark (whole-program analysis wall "
        "time, cold vs warm summary cache) instead of the kernel cases",
    )
    p.add_argument(
        "--e2e",
        action="store_true",
        help="run the end-to-end capture-path macro benchmark (fused "
        "batched vs per-capture fleet throughput, with a byte-identity "
        "check) instead of the kernel cases",
    )
    p.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON report here (default BENCH_kernels.json, "
        "BENCH_serve.json with --serve, BENCH_lint.json with --lint, "
        "or BENCH_e2e.json with --e2e)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "report",
        help="render a recorded trace/metrics pair as timing and "
        "cache-efficiency tables",
    )
    p.add_argument(
        "--trace",
        type=str,
        default=None,
        help="JSONL span trace written by --trace-out",
    )
    p.add_argument(
        "--metrics",
        type=str,
        default=None,
        help="JSON metrics snapshot written by --metrics-out",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "serve",
        help="streaming capture-ingestion service (runbook in SERVING.md)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=7070,
        help="TCP port to listen on (0 = pick a free port and print it)",
    )
    p.add_argument(
        "--fleet-size",
        type=int,
        default=16,
        dest="fleet_size",
        help="devices in the served population (same sampling as `fleet`)",
    )
    p.add_argument(
        "--scenes", type=int, default=4, help="displayed scenes devices can shoot"
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        dest="queue_capacity",
        help="bounded ingestion queue; requests beyond it are shed, "
        "never buffered (counted as serve.shed)",
    )
    p.add_argument(
        "--batch-max",
        type=int,
        default=64,
        dest="batch_max",
        help="max requests coalesced into one executor batch",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        dest="batch_window",
        help="seconds a batch waits to fill before executing anyway",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        dest="request_timeout",
        help="queue-time budget per request; older requests answer "
        "'timeout' instead of executing",
    )
    p.add_argument(
        "--window",
        type=float,
        default=5.0,
        help="streaming-metrics window length in seconds (0 = roll only "
        "at drain)",
    )
    p.add_argument(
        "--model",
        choices=("quick", "untrained"),
        default="quick",
        help="quick = the fleet studies' quick-trained classifier "
        "(cached after first run); untrained = instant-start smoke model",
    )
    p.add_argument(
        "--warm",
        action="store_true",
        help="pre-capture this replica's cache shard before accepting "
        "traffic (needs --cache-dir)",
    )
    p.add_argument(
        "--shard-index",
        type=int,
        default=0,
        dest="shard_index",
        help="this replica's shard for --warm (0-based)",
    )
    p.add_argument(
        "--shard-count",
        type=int,
        default=1,
        dest="shard_count",
        help="total serve replicas sharing the cache for --warm",
    )
    p.add_argument(
        "--summary-out",
        type=str,
        default=None,
        dest="summary_out",
        help="write the post-drain run summary JSON here",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="capture worker processes (0 = serial, -1 = all cores); "
        "results are bit-identical for every setting",
    )
    p.add_argument(
        "--batched",
        action="store_true",
        help="route coalesced same-(phone, scene) requests through the "
        "fused vectorized capture path (bit-identical, opt-in)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        dest="cache_dir",
        help="content-addressed capture cache directory (reused across runs)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="seeded open-loop load generator for `repro serve`",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070, help="serve endpoint port")
    p.add_argument(
        "--count", type=int, default=500, help="total requests to send"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="mean offered rate in requests/s (Poisson arrivals; open "
        "loop — never backs off under server latency)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="draw each request's repeat shot from [0, N); 1 pins "
        "repeat=0 (maximally cache-friendly)",
    )
    p.add_argument(
        "--drain",
        action="store_true",
        help="drain and stop the server after the run (prints its final "
        "accounting)",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        dest="connect_timeout",
        help="seconds to retry the initial connection (lets server and "
        "client start concurrently)",
    )
    p.add_argument(
        "--save", type=str, default=None, help="write the report JSON here"
    )
    p.set_defaults(func=_cmd_loadgen)

    return parser


def _cmd_lint(args) -> None:
    from .lint.cli import run as lint_run

    code = lint_run(args)
    if code:
        raise SystemExit(code)


def _cmd_bench(args) -> None:
    from .bench import format_report, run_bench, write_report

    if args.serve:
        from .bench.serve_case import format_serve_report, run_serve_bench

        report = run_serve_bench(quick=args.quick, seed=args.seed)
        out = args.out or "BENCH_serve.json"
        print(format_serve_report(report))
        write_report(report, out)
        print(f"report written to {out}")
        return
    if args.lint:
        from .bench.lint_case import format_lint_report, run_lint_bench

        report = run_lint_bench(quick=args.quick)
        out = args.out or "BENCH_lint.json"
        print(format_lint_report(report))
        write_report(report, out)
        print(f"report written to {out}")
        return
    if args.e2e:
        from .bench.e2e import format_e2e_report, run_e2e_bench

        report = run_e2e_bench(
            quick=args.quick, repeats=args.repeats, seed=args.seed
        )
        out = args.out or "BENCH_e2e.json"
        print(format_e2e_report(report))
        write_report(report, out)
        print(f"report written to {out}")
        if not report["identity_ok"]:
            raise SystemExit(
                "repro bench: fused payloads diverged from per-capture "
                "payloads — batch-invariance violation"
            )
        return
    try:
        report = run_bench(
            quick=args.quick, repeats=args.repeats, only=args.cases, seed=args.seed
        )
    except ValueError as exc:
        raise SystemExit(f"repro bench: {exc}") from exc
    out = args.out or "BENCH_kernels.json"
    print(format_report(report))
    write_report(report, out)
    print(f"report written to {out}")


def _cmd_report(args) -> None:
    if args.trace is None and args.metrics is None:
        raise SystemExit(
            "repro report: provide --trace and/or --metrics "
            "(files written by an experiment's --trace-out/--metrics-out)"
        )
    from .obs.report import render_report

    print(render_report(trace_path=args.trace, metrics_path=args.metrics))


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        # Detach stdout so the interpreter's shutdown flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out is None and metrics_out is None:
        args.func(args)
        return 0

    # Observed run: collect spans/metrics around the whole experiment,
    # then export. Observation is side-band only — results are
    # bit-identical to an unobserved run.
    from . import obs

    with obs.observed() as ob:
        args.func(args)
    if trace_out is not None:
        written = ob.tracer.export_jsonl(trace_out)
        print(f"trace: {written} spans appended to {trace_out}")
    if metrics_out is not None:
        obs.write_metrics_json(ob.metrics.snapshot(), metrics_out)
        print(f"metrics: snapshot written to {metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
