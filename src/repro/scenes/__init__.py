"""Synthetic scene substrate: procedural objects, staging, monitor display."""

from .dataset import LabeledScene, SceneDataset, build_dataset
from .objects import (
    ALL_CLASSES,
    DISTRACTOR_CLASSES,
    TARGET_CLASSES,
    ObjectSpec,
    render_object,
    sample_object,
)
from .primitives import Canvas
from .scene import Scene, sample_scene
from .screen import Screen, ScreenProfile

__all__ = [
    "ALL_CLASSES",
    "Canvas",
    "DISTRACTOR_CLASSES",
    "LabeledScene",
    "ObjectSpec",
    "Scene",
    "SceneDataset",
    "Screen",
    "ScreenProfile",
    "TARGET_CLASSES",
    "build_dataset",
    "render_object",
    "sample_object",
    "sample_scene",
]
