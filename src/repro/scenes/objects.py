"""Procedural renderers for the dataset's object classes.

The paper photographs five ImageNet classes — water bottle, beer bottle,
wine bottle, purse, backpack — chosen in part because they are mutually
confusable (three bottle silhouettes; two soft-goods blobs), which is what
puts a meaningful share of images near the model's decision boundary. The
renderers here reproduce that structure: every object is sampled with
intra-class variation (size, hue, label geometry, accessories) from a
seeded RNG, and the class prototypes deliberately overlap — e.g. a green
glass beer bottle vs. a green glass wine bottle differ mainly in shoulder
slope and neck length.

Three distractor classes (mug, vase, lampshade) widen the label space so
"clearly incorrect" predictions exist, mirroring how MobileNetV2's
1000-class head lets a water bottle be misread as "bubble" (paper Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .primitives import (
    Canvas,
    fill_annulus_arc,
    fill_ellipse,
    fill_polygon,
    fill_rect,
    fill_rounded_rect,
)

__all__ = [
    "TARGET_CLASSES",
    "DISTRACTOR_CLASSES",
    "ALL_CLASSES",
    "ObjectSpec",
    "sample_object",
    "render_object",
]

#: The paper's five evaluation classes (§3.1).
TARGET_CLASSES = ("water_bottle", "beer_bottle", "wine_bottle", "purse", "backpack")
#: Extra classes so the classifier has "clearly incorrect" labels available.
DISTRACTOR_CLASSES = ("mug", "vase", "lampshade")
ALL_CLASSES = TARGET_CLASSES + DISTRACTOR_CLASSES


@dataclass(frozen=True)
class ObjectSpec:
    """A fully-determined object instance: class plus sampled parameters.

    Repeat photos of the same physical object reuse one spec; a new spec is
    a new object. ``params`` is everything :func:`render_object` needs, so
    specs are serializable and rendering is deterministic.
    """

    class_name: str
    object_id: int
    params: Dict[str, float] = field(default_factory=dict)


def _uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(rng.uniform(lo, hi))


def _choice(rng: np.random.Generator, options) -> float:
    return options[int(rng.integers(len(options)))]


# ----------------------------------------------------------------------
# Per-class samplers: draw the intra-class variation parameters.
# ----------------------------------------------------------------------
_GLASS_TINTS = {
    # Glass body colors shared (confusably) between the bottle classes.
    "brown": (0.42, 0.23, 0.08),
    "green": (0.13, 0.32, 0.12),
    "dark_green": (0.08, 0.20, 0.09),
    "clear_blue": (0.62, 0.74, 0.84),
    "clear": (0.78, 0.82, 0.84),
    "dark_red": (0.25, 0.07, 0.09),
}


def _sample_water_bottle(rng: np.random.Generator) -> Dict[str, float]:
    tint = _choice(rng, ["clear_blue", "clear", "green", "dark_green"])
    return {
        "body_width": _uniform(rng, 0.18, 0.30),
        "body_top": _uniform(rng, 0.24, 0.36),
        "neck_width": _uniform(rng, 0.07, 0.15),
        "cap_height": _uniform(rng, 0.04, 0.07),
        "tint_r": _GLASS_TINTS[tint][0],
        "tint_g": _GLASS_TINTS[tint][1],
        "tint_b": _GLASS_TINTS[tint][2],
        "label_y": _uniform(rng, 0.52, 0.62),
        "label_h": _uniform(rng, 0.10, 0.16),
        "label_bright": _uniform(rng, 0.75, 0.95),
        "cap_hue": _uniform(rng, 0.0, 1.0),
        "highlight": _uniform(rng, 0.10, 0.35),
        "tapered": float(rng.random() < 0.55),
    }


def _sample_beer_bottle(rng: np.random.Generator) -> Dict[str, float]:
    tint = _choice(rng, ["brown", "brown", "green", "dark_green"])
    return {
        "body_width": _uniform(rng, 0.18, 0.27),
        "shoulder_y": _uniform(rng, 0.31, 0.45),
        "neck_width": _uniform(rng, 0.06, 0.10),
        "neck_top": _uniform(rng, 0.08, 0.17),
        "tint_r": _GLASS_TINTS[tint][0],
        "tint_g": _GLASS_TINTS[tint][1],
        "tint_b": _GLASS_TINTS[tint][2],
        "label_y": _uniform(rng, 0.55, 0.66),
        "label_h": _uniform(rng, 0.12, 0.18),
        "label_bright": _uniform(rng, 0.70, 0.95),
        "has_neck_label": float(rng.random() < 0.5),
        "foil_hue": _uniform(rng, 0.0, 1.0),
        "has_foil": float(rng.random() < 0.25),
    }


def _sample_wine_bottle(rng: np.random.Generator) -> Dict[str, float]:
    tint = _choice(rng, ["dark_green", "dark_green", "dark_red", "green", "brown"])
    return {
        "body_width": _uniform(rng, 0.19, 0.27),
        "shoulder_y": _uniform(rng, 0.31, 0.45),
        "neck_width": _uniform(rng, 0.06, 0.10),
        "neck_top": _uniform(rng, 0.08, 0.17),
        "tint_r": _GLASS_TINTS[tint][0],
        "tint_g": _GLASS_TINTS[tint][1],
        "tint_b": _GLASS_TINTS[tint][2],
        "label_y": _uniform(rng, 0.55, 0.67),
        "label_h": _uniform(rng, 0.12, 0.19),
        "label_bright": _uniform(rng, 0.72, 0.95),
        "foil_hue": _uniform(rng, 0.0, 1.0),
        "has_foil": float(rng.random() > 0.25),
    }


def _sample_purse(rng: np.random.Generator) -> Dict[str, float]:
    hue = _choice(rng, [0.0, 0.05, 0.3, 0.55, 0.62, 0.85])
    return {
        "body_width": _uniform(rng, 0.38, 0.56),
        "body_height": _uniform(rng, 0.28, 0.48),
        "taper": _uniform(rng, 0.02, 0.14),
        "hue": hue,
        "sat": _uniform(rng, 0.30, 0.80),
        "val": _uniform(rng, 0.25, 0.70),
        "handle_r": _uniform(rng, 0.12, 0.18),
        "has_flap": float(rng.random() < 0.7),
        "clasp_bright": _uniform(rng, 0.7, 0.95),
    }


def _sample_backpack(rng: np.random.Generator) -> Dict[str, float]:
    hue = _choice(rng, [0.0, 0.05, 0.3, 0.55, 0.62, 0.85])
    return {
        "body_width": _uniform(rng, 0.38, 0.56),
        "body_height": _uniform(rng, 0.38, 0.60),
        "corner_r": _uniform(rng, 0.04, 0.14),
        "hue": hue,
        "sat": _uniform(rng, 0.30, 0.80),
        "val": _uniform(rng, 0.25, 0.70),
        "pocket_scale": _uniform(rng, 0.45, 0.65),
        "has_straps": float(rng.random() < 0.6),
        "zipper_bright": _uniform(rng, 0.6, 0.9),
    }


def _sample_mug(rng: np.random.Generator) -> Dict[str, float]:
    return {
        "body_width": _uniform(rng, 0.30, 0.40),
        "body_height": _uniform(rng, 0.26, 0.34),
        "hue": _uniform(rng, 0.0, 1.0),
        "sat": _uniform(rng, 0.3, 0.8),
        "val": _uniform(rng, 0.4, 0.9),
        "handle_r": _uniform(rng, 0.08, 0.12),
    }


def _sample_vase(rng: np.random.Generator) -> Dict[str, float]:
    return {
        "waist": _uniform(rng, 0.08, 0.14),
        "belly": _uniform(rng, 0.22, 0.32),
        "hue": _uniform(rng, 0.0, 1.0),
        "sat": _uniform(rng, 0.2, 0.6),
        "val": _uniform(rng, 0.3, 0.8),
    }


def _sample_lampshade(rng: np.random.Generator) -> Dict[str, float]:
    return {
        "top_width": _uniform(rng, 0.14, 0.22),
        "bottom_width": _uniform(rng, 0.36, 0.50),
        "height": _uniform(rng, 0.30, 0.42),
        "hue": _uniform(rng, 0.05, 0.16),
        "sat": _uniform(rng, 0.15, 0.45),
        "val": _uniform(rng, 0.6, 0.95),
    }


_SAMPLERS = {
    "water_bottle": _sample_water_bottle,
    "beer_bottle": _sample_beer_bottle,
    "wine_bottle": _sample_wine_bottle,
    "purse": _sample_purse,
    "backpack": _sample_backpack,
    "mug": _sample_mug,
    "vase": _sample_vase,
    "lampshade": _sample_lampshade,
}


def sample_object(class_name: str, object_id: int, rng: np.random.Generator) -> ObjectSpec:
    """Sample one object instance of the given class."""
    try:
        sampler = _SAMPLERS[class_name]
    except KeyError:
        raise ValueError(
            f"unknown class {class_name!r}; expected one of {ALL_CLASSES}"
        ) from None
    return ObjectSpec(class_name=class_name, object_id=object_id, params=sampler(rng))


# ----------------------------------------------------------------------
# Renderers. Each draws its object roughly centred, occupying the middle
# of the canvas, in normalized coordinates.
# ----------------------------------------------------------------------
def _hsv_color(hue: float, sat: float, val: float):
    from ..imaging.color import hsv_to_rgb

    rgb = hsv_to_rgb(np.array([[[hue, sat, val]]], dtype=np.float32))[0, 0]
    return (float(rgb[0]), float(rgb[1]), float(rgb[2]))


def _render_water_bottle(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.5
    tint = (p["tint_r"], p["tint_g"], p["tint_b"])
    half = p["body_width"] / 2
    nhalf = p["neck_width"] / 2
    if p.get("tapered", 0.0):
        # Sport-bottle variant: sloped shoulder, confusable with beer/wine.
        fill_rect(canvas, cx - half, p["body_top"] + 0.08, cx + half, 0.88, tint)
        fill_polygon(
            canvas,
            [
                (cx - half, p["body_top"] + 0.08),
                (cx + half, p["body_top"] + 0.08),
                (cx + nhalf, p["body_top"] - 0.04),
                (cx - nhalf, p["body_top"] - 0.04),
            ],
            tint,
        )
    else:
        # Body with rounded shoulders.
        fill_rounded_rect(canvas, cx - half, p["body_top"], cx + half, 0.88, 0.05, tint)
    # Neck.
    fill_rect(canvas, cx - nhalf, p["body_top"] - 0.08, cx + nhalf, p["body_top"] + 0.02, tint)
    # Cap.
    cap = _hsv_color(p["cap_hue"], 0.6, 0.7)
    fill_rect(
        canvas, cx - nhalf - 0.01, p["body_top"] - 0.08 - p["cap_height"],
        cx + nhalf + 0.01, p["body_top"] - 0.08, cap,
    )
    # Label band.
    label = (p["label_bright"], p["label_bright"], p["label_bright"] * 0.96)
    fill_rect(canvas, cx - half, p["label_y"], cx + half, p["label_y"] + p["label_h"], label)
    # Specular highlight strip on the left of the body.
    fill_rect(
        canvas, cx - half + 0.02, p["body_top"] + 0.04, cx - half + 0.05, 0.84,
        (1.0, 1.0, 1.0), alpha=p["highlight"],
    )


def _render_tapered_bottle(canvas: Canvas, p: Dict[str, float], foil: bool) -> None:
    """Shared geometry for beer and wine bottles: body, shoulder, neck."""
    cx = 0.5
    tint = (p["tint_r"], p["tint_g"], p["tint_b"])
    half = p["body_width"] / 2
    nhalf = p["neck_width"] / 2
    shoulder = p["shoulder_y"]
    neck_top = p["neck_top"]
    # Body below the shoulder.
    fill_rect(canvas, cx - half, shoulder, cx + half, 0.9, tint)
    # Shoulder taper to the neck.
    fill_polygon(
        canvas,
        [
            (cx - half, shoulder),
            (cx + half, shoulder),
            (cx + nhalf, shoulder - 0.10),
            (cx - nhalf, shoulder - 0.10),
        ],
        tint,
    )
    # Neck.
    fill_rect(canvas, cx - nhalf, neck_top, cx + nhalf, shoulder - 0.09, tint)
    if foil:
        color = _hsv_color(p["foil_hue"], 0.5, 0.55)
        fill_rect(canvas, cx - nhalf - 0.005, neck_top, cx + nhalf + 0.005, neck_top + 0.06, color)
    else:
        # Crown cap.
        fill_rect(canvas, cx - nhalf - 0.012, neck_top - 0.02, cx + nhalf + 0.012, neck_top + 0.012, (0.75, 0.72, 0.55))
    # Main label.
    label = (p["label_bright"], p["label_bright"] * 0.97, p["label_bright"] * 0.9)
    fill_rect(canvas, cx - half, p["label_y"], cx + half, p["label_y"] + p["label_h"], label)


def _render_beer_bottle(canvas: Canvas, p: Dict[str, float]) -> None:
    _render_tapered_bottle(canvas, p, foil=bool(p.get("has_foil", 0.0)))
    if p["has_neck_label"]:
        cx = 0.5
        nhalf = p["neck_width"] / 2
        fill_rect(
            canvas, cx - nhalf - 0.008, p["shoulder_y"] - 0.20,
            cx + nhalf + 0.008, p["shoulder_y"] - 0.14,
            (p["label_bright"], p["label_bright"] * 0.9, p["label_bright"] * 0.8),
        )


def _render_wine_bottle(canvas: Canvas, p: Dict[str, float]) -> None:
    _render_tapered_bottle(canvas, p, foil=bool(p.get("has_foil", 1.0)))


def _render_purse(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.5
    color = _hsv_color(p["hue"], p["sat"], p["val"])
    half = p["body_width"] / 2
    top = 0.85 - p["body_height"]
    # Tapered body: wider at the bottom.
    fill_polygon(
        canvas,
        [
            (cx - half + p["taper"], top),
            (cx + half - p["taper"], top),
            (cx + half, 0.85),
            (cx - half, 0.85),
        ],
        color,
    )
    # Handle arc above.
    fill_annulus_arc(
        canvas, cx, top + 0.01, p["handle_r"], p["handle_r"] - 0.025, color
    )
    if p["has_flap"]:
        flap = _hsv_color(p["hue"], p["sat"], max(p["val"] - 0.15, 0.05))
        fill_polygon(
            canvas,
            [
                (cx - half + p["taper"], top),
                (cx + half - p["taper"], top),
                (cx + half - p["taper"] - 0.02, top + 0.12),
                (cx - half + p["taper"] + 0.02, top + 0.12),
            ],
            flap,
        )
    # Clasp.
    b = p["clasp_bright"]
    fill_ellipse(canvas, cx, top + 0.13, 0.02, 0.015, (b, b * 0.9, b * 0.5))


def _render_backpack(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.5
    color = _hsv_color(p["hue"], p["sat"], p["val"])
    half = p["body_width"] / 2
    top = 0.88 - p["body_height"]
    fill_rounded_rect(canvas, cx - half, top, cx + half, 0.88, p["corner_r"], color)
    # Front pocket, a darker inset.
    pocket = _hsv_color(p["hue"], p["sat"], max(p["val"] - 0.12, 0.05))
    pw = half * p["pocket_scale"]
    fill_rounded_rect(canvas, cx - pw, 0.88 - p["body_height"] * 0.45, cx + pw, 0.84, 0.04, pocket)
    # Grab handle on top.
    fill_annulus_arc(canvas, cx, top + 0.005, 0.06, 0.035, pocket)
    if p["has_straps"]:
        strap = _hsv_color(p["hue"], p["sat"], max(p["val"] - 0.2, 0.05))
        fill_rect(canvas, cx - half + 0.03, top + 0.05, cx - half + 0.09, 0.82, strap)
        fill_rect(canvas, cx + half - 0.09, top + 0.05, cx + half - 0.03, 0.82, strap)
    # Zipper line.
    z = p["zipper_bright"]
    fill_rect(canvas, cx - pw, 0.88 - p["body_height"] * 0.45, cx + pw, 0.88 - p["body_height"] * 0.45 + 0.008, (z, z, z))


def _render_mug(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.47
    color = _hsv_color(p["hue"], p["sat"], p["val"])
    half = p["body_width"] / 2
    top = 0.8 - p["body_height"]
    fill_rounded_rect(canvas, cx - half, top, cx + half, 0.8, 0.03, color)
    # Handle on the right.
    fill_annulus_arc(
        canvas, cx + half, (top + 0.8) / 2, p["handle_r"], p["handle_r"] - 0.03,
        color, upper_only=False,
    )


def _render_vase(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.5
    color = _hsv_color(p["hue"], p["sat"], p["val"])
    # Flared lip, narrow waist, wide belly: stacked shapes.
    fill_polygon(
        canvas,
        [(cx - 0.10, 0.22), (cx + 0.10, 0.22), (cx + p["waist"], 0.34), (cx - p["waist"], 0.34)],
        color,
    )
    fill_rect(canvas, cx - p["waist"], 0.34, cx + p["waist"], 0.45, color)
    fill_ellipse(canvas, cx, 0.62, p["belly"], 0.22, color)


def _render_lampshade(canvas: Canvas, p: Dict[str, float]) -> None:
    cx = 0.5
    color = _hsv_color(p["hue"], p["sat"], p["val"])
    top = 0.3
    fill_polygon(
        canvas,
        [
            (cx - p["top_width"] / 2, top),
            (cx + p["top_width"] / 2, top),
            (cx + p["bottom_width"] / 2, top + p["height"]),
            (cx - p["bottom_width"] / 2, top + p["height"]),
        ],
        color,
    )
    # Stand below.
    fill_rect(canvas, cx - 0.012, top + p["height"], cx + 0.012, 0.85, (0.35, 0.3, 0.28))


_RENDERERS = {
    "water_bottle": _render_water_bottle,
    "beer_bottle": _render_beer_bottle,
    "wine_bottle": _render_wine_bottle,
    "purse": _render_purse,
    "backpack": _render_backpack,
    "mug": _render_mug,
    "vase": _render_vase,
    "lampshade": _render_lampshade,
}


def render_object(canvas: Canvas, spec: ObjectSpec) -> None:
    """Draw ``spec`` onto ``canvas`` (composited over what's there)."""
    try:
        renderer = _RENDERERS[spec.class_name]
    except KeyError:
        raise ValueError(f"no renderer for class {spec.class_name!r}") from None
    renderer(canvas, spec.params)


def class_index(class_name: str) -> int:
    """Stable integer label for a class name."""
    return ALL_CLASSES.index(class_name)


def class_names() -> List[str]:
    return list(ALL_CLASSES)
