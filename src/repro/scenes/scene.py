"""Scene composition: object + background + lighting.

A :class:`Scene` is the virtual analogue of "an image from the paper's
dataset" (§3.1): one object instance in front of a background, under
particular lighting. Scenes render deterministically — the controlled-lab
property the paper's rig works hard to achieve physically — and all
capture-time stochasticity (sensor noise, ISP, codec) is layered on by
the device models instead.

Rendering is supersampled: shapes are rasterized at ``supersample`` times
the target resolution and box-downsampled, which provides the gentle edge
antialiasing a real monitor photo has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imaging.image import ImageBuffer
from .objects import ObjectSpec, render_object
from .primitives import Canvas, vertical_gradient

__all__ = ["Scene", "sample_scene"]


@dataclass(frozen=True)
class Scene:
    """A deterministic renderable scene.

    Attributes
    ----------
    spec:
        The object instance to draw.
    background_top / background_bottom:
        Gradient endpoints of the backdrop.
    brightness:
        Global illumination multiplier (1.0 = nominal studio lighting).
    warmth:
        Color temperature skew: positive boosts red / cuts blue (warm
        light), negative the opposite. Range roughly [-0.15, 0.15].
    x_offset / y_offset:
        Object placement jitter in normalized canvas units.
    """

    spec: ObjectSpec
    background_top: tuple = (0.92, 0.92, 0.94)
    background_bottom: tuple = (0.80, 0.80, 0.84)
    brightness: float = 1.0
    warmth: float = 0.0
    x_offset: float = 0.0
    y_offset: float = 0.0

    def render(self, height: int = 96, width: int = 96, supersample: int = 2) -> ImageBuffer:
        """Rasterize the scene to an sRGB-encoded :class:`ImageBuffer`."""
        if supersample < 1:
            raise ValueError("supersample must be >= 1")
        canvas = Canvas(height * supersample, width * supersample)
        vertical_gradient(canvas, self.background_top, self.background_bottom)
        # Shift the sampling grid to move the object without resampling.
        canvas.xx -= np.float32(self.x_offset)
        canvas.yy -= np.float32(self.y_offset)
        render_object(canvas, self.spec)

        pixels = canvas.pixels
        if supersample > 1:
            s = supersample
            pixels = pixels.reshape(height, s, width, s, 3).mean(axis=(1, 3))

        # Lighting: brightness plus a color-temperature tilt.
        gains = np.array(
            [1.0 + self.warmth, 1.0, 1.0 - self.warmth], dtype=np.float32
        ) * np.float32(self.brightness)
        lit = np.clip(pixels * gains, 0.0, 1.0)
        return ImageBuffer(lit)


def sample_scene(spec: ObjectSpec, rng: np.random.Generator) -> Scene:
    """Wrap an object spec in a scene with mildly varied staging.

    The variation here models the *photography session*, not the object:
    backdrop shade, studio lighting level and temperature, and where on
    the screen the object sits.
    """
    base = float(rng.uniform(0.78, 0.95))
    return Scene(
        spec=spec,
        background_top=(base + 0.03, base + 0.03, base + 0.05),
        background_bottom=(base - 0.08, base - 0.08, base - 0.05),
        brightness=float(rng.uniform(0.9, 1.08)),
        warmth=float(rng.uniform(-0.05, 0.05)),
        x_offset=float(rng.uniform(-0.05, 0.05)),
        y_offset=float(rng.uniform(-0.03, 0.03)),
    )
