"""Vectorized 2-D rasterization primitives.

The scene substrate draws objects with these primitives onto float32 RGB
canvases. Coordinates are normalized to ``[0, 1]`` on both axes (y down),
so object renderers are resolution-independent; the dataset builder picks
the raster size (and supersampling factor) at render time.

All fills are alpha-composited: ``fill_*(canvas, ..., color, alpha)``
blends ``color`` over the canvas inside the shape.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "Canvas",
    "fill_rect",
    "fill_ellipse",
    "fill_polygon",
    "fill_rounded_rect",
    "fill_annulus_arc",
    "vertical_gradient",
]

Color = Tuple[float, float, float]


class Canvas:
    """A float32 RGB drawing surface with normalized coordinates."""

    def __init__(self, height: int, width: int, background: Color = (1.0, 1.0, 1.0)):
        self.pixels = np.empty((height, width, 3), dtype=np.float32)
        self.pixels[:] = np.asarray(background, dtype=np.float32)
        ys = (np.arange(height, dtype=np.float32) + 0.5) / height
        xs = (np.arange(width, dtype=np.float32) + 0.5) / width
        #: Pixel-center coordinate grids, shape (H, W).
        self.yy, self.xx = np.meshgrid(ys, xs, indexing="ij")

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    def blend(self, mask: np.ndarray, color: Color, alpha: float = 1.0) -> None:
        """Alpha-composite ``color`` over the canvas where ``mask`` is set.

        ``mask`` may be boolean or a float coverage map in [0, 1].
        """
        coverage = mask.astype(np.float32) * np.float32(alpha)
        color_arr = np.asarray(color, dtype=np.float32)
        self.pixels += coverage[..., None] * (color_arr - self.pixels)


def fill_rect(
    canvas: Canvas,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill the axis-aligned rectangle [x0, x1] x [y0, y1]."""
    mask = (
        (canvas.xx >= x0) & (canvas.xx <= x1) & (canvas.yy >= y0) & (canvas.yy <= y1)
    )
    canvas.blend(mask, color, alpha)


def fill_ellipse(
    canvas: Canvas,
    cx: float,
    cy: float,
    rx: float,
    ry: float,
    color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill an axis-aligned ellipse centred at (cx, cy)."""
    if rx <= 0 or ry <= 0:
        raise ValueError("ellipse radii must be positive")
    mask = ((canvas.xx - cx) / rx) ** 2 + ((canvas.yy - cy) / ry) ** 2 <= 1.0
    canvas.blend(mask, color, alpha)


def fill_polygon(
    canvas: Canvas,
    points: Sequence[Tuple[float, float]],
    color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill a simple polygon given as (x, y) vertices, via even-odd rule.

    Vectorized ray-crossing test: for each pixel, count edges crossed by a
    horizontal ray.
    """
    pts = np.asarray(points, dtype=np.float32)
    if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) < 3:
        raise ValueError("polygon needs at least 3 (x, y) points")
    x = canvas.xx[..., None]
    y = canvas.yy[..., None]
    x0, y0 = pts[:, 0], pts[:, 1]
    x1, y1 = np.roll(pts[:, 0], -1), np.roll(pts[:, 1], -1)
    straddles = (y0 <= y[..., :]) != (y1 <= y[..., :])
    denom = np.where(y1 - y0 == 0, 1e-12, y1 - y0)
    x_at_y = x0 + (y - y0) * (x1 - x0) / denom
    crossings = (straddles & (x_at_y > x)).sum(axis=-1)
    canvas.blend(crossings % 2 == 1, color, alpha)


def fill_rounded_rect(
    canvas: Canvas,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    radius: float,
    color: Color,
    alpha: float = 1.0,
) -> None:
    """Fill a rectangle with circular corners of the given radius."""
    radius = min(radius, (x1 - x0) / 2, (y1 - y0) / 2)
    inner_x = np.clip(canvas.xx, x0 + radius, x1 - radius)
    inner_y = np.clip(canvas.yy, y0 + radius, y1 - radius)
    dist2 = (canvas.xx - inner_x) ** 2 + (canvas.yy - inner_y) ** 2
    canvas.blend(dist2 <= radius * radius, color, alpha)


def fill_annulus_arc(
    canvas: Canvas,
    cx: float,
    cy: float,
    r_outer: float,
    r_inner: float,
    color: Color,
    alpha: float = 1.0,
    upper_only: bool = True,
) -> None:
    """Fill a ring (annulus), optionally only its upper half.

    Used for bag handles and strap arcs.
    """
    if not 0 <= r_inner < r_outer:
        raise ValueError("need 0 <= r_inner < r_outer")
    d2 = (canvas.xx - cx) ** 2 + (canvas.yy - cy) ** 2
    mask = (d2 <= r_outer * r_outer) & (d2 >= r_inner * r_inner)
    if upper_only:
        mask &= canvas.yy <= cy
    canvas.blend(mask, color, alpha)


def vertical_gradient(canvas: Canvas, top: Color, bottom: Color) -> None:
    """Fill the whole canvas with a top-to-bottom linear gradient."""
    t = canvas.yy[..., None]
    top_arr = np.asarray(top, dtype=np.float32)
    bot_arr = np.asarray(bottom, dtype=np.float32)
    canvas.pixels[:] = top_arr + t * (bot_arr - top_arr)
