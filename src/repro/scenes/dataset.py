"""Dataset builders: collections of labeled scenes with splits.

Replaces the paper's 1,537 scraped/photographed images (§3.1) with
procedurally sampled ones. The same structure is kept: a set of distinct
*objects* per class, each staged as a *scene*; experiments then photograph
every scene from several angles on several phones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .objects import ALL_CLASSES, TARGET_CLASSES, ObjectSpec, sample_object
from .scene import Scene, sample_scene

__all__ = ["LabeledScene", "SceneDataset", "build_dataset"]


@dataclass(frozen=True)
class LabeledScene:
    """A scene plus its ground-truth label."""

    scene: Scene
    class_name: str
    label: int
    object_id: int


class SceneDataset:
    """An ordered collection of labeled scenes with split helpers."""

    def __init__(self, items: Sequence[LabeledScene], classes: Sequence[str]):
        self.items: List[LabeledScene] = list(items)
        self.classes: Tuple[str, ...] = tuple(classes)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, idx: int) -> LabeledScene:
        return self.items[idx]

    def __iter__(self):
        return iter(self.items)

    def labels(self) -> np.ndarray:
        return np.array([item.label for item in self.items], dtype=np.int64)

    def split(self, train_fraction: float, seed: int = 0) -> Tuple["SceneDataset", "SceneDataset"]:
        """Shuffled train/test split, stratified by class.

        Splitting is by *object*: all scenes of one object land on the same
        side, so the test set contains only unseen objects (otherwise the
        classifier would be evaluated on memorized instances).
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        train_items: List[LabeledScene] = []
        test_items: List[LabeledScene] = []
        for cls in self.classes:
            object_ids = sorted({i.object_id for i in self.items if i.class_name == cls})
            if not object_ids:
                continue
            perm = rng.permutation(len(object_ids))
            cut = max(1, int(round(len(object_ids) * train_fraction)))
            cut = min(cut, len(object_ids) - 1) if len(object_ids) > 1 else cut
            train_ids = {object_ids[i] for i in perm[:cut]}
            for item in self.items:
                if item.class_name != cls:
                    continue
                (train_items if item.object_id in train_ids else test_items).append(item)
        return (
            SceneDataset(train_items, self.classes),
            SceneDataset(test_items, self.classes),
        )

    def per_class_counts(self) -> dict:
        counts: dict = {c: 0 for c in self.classes}
        for item in self.items:
            counts[item.class_name] += 1
        return counts


def build_dataset(
    per_class: int = 20,
    classes: Sequence[str] | None = None,
    scenes_per_object: int = 1,
    seed: int = 0,
    include_distractors: bool = False,
) -> SceneDataset:
    """Build a class-balanced scene dataset.

    Parameters
    ----------
    per_class:
        Number of distinct objects sampled per class.
    classes:
        Class names; defaults to the paper's five target classes. Pass
        ``include_distractors=True`` to add the three distractor classes
        (needed when training the classifier's 8-way head).
    scenes_per_object:
        Number of staged scenes (lighting/backdrop variants) per object.
    seed:
        Master seed; every object and scene derives from it.
    """
    if per_class <= 0:
        raise ValueError("per_class must be positive")
    if scenes_per_object <= 0:
        raise ValueError("scenes_per_object must be positive")
    if classes is not None:
        chosen = tuple(classes)
    else:
        chosen = ALL_CLASSES if include_distractors else TARGET_CLASSES
    for cls in chosen:
        if cls not in ALL_CLASSES:
            raise ValueError(f"unknown class {cls!r}")

    rng = np.random.default_rng(seed)
    items: List[LabeledScene] = []
    object_counter = 0
    for cls in chosen:
        label = ALL_CLASSES.index(cls)
        for _ in range(per_class):
            spec = sample_object(cls, object_counter, rng)
            object_counter += 1
            for _ in range(scenes_per_object):
                scene = sample_scene(spec, rng)
                items.append(
                    LabeledScene(
                        scene=scene, class_name=cls, label=label, object_id=spec.object_id
                    )
                )
    return SceneDataset(items, chosen)
