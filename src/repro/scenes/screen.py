"""Monitor display simulation.

In the paper's rig (§3.2, Fig. 2a) phones photograph images *shown on a
computer screen*. The screen is therefore part of the optical path: it
re-encodes the image with its own gamma and white point, its backlight is
not perfectly uniform, and its pixel grid imposes a faint high-frequency
texture. :class:`ScreenProfile` models those effects and converts an
sRGB-encoded image into the linear-light radiance field the cameras see.

The backlight field is fixed per screen instance (it is a property of the
physical panel), so repeat photos of the same displayed image see the
same nonuniformity — matching the rig, where instability must come from
the phones rather than the display.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..imaging.color import srgb_decode
from ..imaging.image import ImageBuffer
from ..imaging.ops import bilinear_resize

__all__ = ["ScreenProfile", "Screen"]


@dataclass(frozen=True)
class ScreenProfile:
    """Electro-optical characteristics of a display panel."""

    #: Panel gamma; 2.2 is the sRGB-era default, panels vary slightly.
    gamma: float = 2.2
    #: White point gains (r, g, b); a cool panel boosts blue.
    white_point: tuple = (1.0, 1.0, 1.0)
    #: Peak-to-trough relative amplitude of backlight nonuniformity.
    backlight_variation: float = 0.04
    #: Strength of the subpixel-grid darkening texture.
    pixel_grid_contrast: float = 0.02
    #: Stray ambient light added uniformly (radiance floor).
    glare: float = 0.01


class Screen:
    """A concrete panel: a profile plus its fixed backlight field."""

    def __init__(self, profile: ScreenProfile | None = None, seed: int = 0) -> None:
        self.profile = profile or ScreenProfile()
        self.seed = seed
        self._backlight_cache: dict = {}

    def _backlight(self, height: int, width: int) -> np.ndarray:
        """Smooth low-frequency brightness field, fixed per panel."""
        key = (height, width)
        cached = self._backlight_cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.default_rng(self.seed)
        coarse = rng.uniform(-1.0, 1.0, (4, 4)).astype(np.float32)
        fine = bilinear_resize(coarse, height, width)
        amp = self.profile.backlight_variation / 2.0
        fieldmap = 1.0 + amp * fine
        self._backlight_cache[key] = fieldmap
        return fieldmap

    def display(self, image: ImageBuffer) -> ImageBuffer:
        """Emit the linear-light radiance field for a displayed image."""
        encoded = np.clip(image.pixels, 0.0, 1.0)
        if abs(self.profile.gamma - 2.4) < 0.05:
            linear = srgb_decode(encoded)
        else:
            linear = np.power(encoded, np.float32(self.profile.gamma))

        linear = linear * np.asarray(self.profile.white_point, dtype=np.float32)
        linear = linear * self._backlight(image.height, image.width)[..., None]

        if self.profile.pixel_grid_contrast > 0:
            # Darken alternate rows/columns slightly: the visible grid of
            # the panel's black matrix, aliased to our working resolution.
            grid = np.ones((image.height, image.width), dtype=np.float32)
            grid[1::2, :] -= self.profile.pixel_grid_contrast
            grid[:, 1::2] -= self.profile.pixel_grid_contrast / 2.0
            linear = linear * grid[..., None]

        linear = linear + np.float32(self.profile.glare)
        return ImageBuffer(np.clip(linear, 0.0, 1.0))
