"""Render observability data as the tables ``python -m repro report`` prints.

Input is what an observed run exports: a JSONL span trace
(``--trace-out``) and/or a metrics snapshot JSON (``--metrics-out``).
Output is three plain-text tables in the house style of
:mod:`repro.core.report`:

* **per-stage timing** — every span name aggregated: call count, total
  and mean wall time, p50/p95, and share of the summed stage time;
* **per-phone timing** — spans attributed to the device that produced
  them (walking parent links up to the nearest span carrying a
  ``device`` attribute), broken down by subsystem prefix (sensor / isp /
  codec / ...);
* **cache efficiency** — hit rates of the capture cache and the rig's
  render cache, plus the headline fleet counters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.report import format_percent, format_table
from .trace import Span, read_jsonl

__all__ = [
    "attribute_devices",
    "load_metrics_json",
    "render_report",
    "stage_rows",
    "device_rows",
    "cache_rows",
]


def load_metrics_json(path: Union[str, Path]) -> dict:
    """Load a ``--metrics-out`` snapshot back into a plain dict."""
    return json.loads(Path(path).read_text())


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending sequence (empty -> 0)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def attribute_devices(spans: Sequence[Span]) -> Dict[int, str]:
    """Map every span id to the device that produced it.

    A span's device is its own ``device`` attribute if present, else the
    nearest ancestor's; spans with no device anywhere in their ancestry
    map to ``"-"`` (e.g. rig rendering, which happens before any phone).
    """
    by_id = {span.span_id: span for span in spans}
    resolved: Dict[int, str] = {}

    def resolve(span_id: int) -> str:
        cached = resolved.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        device = span.attrs.get("device")
        if device is None:
            if span.parent_id is not None and span.parent_id in by_id:
                device = resolve(span.parent_id)
            else:
                device = "-"
        resolved[span_id] = str(device)
        return resolved[span_id]

    for span in spans:
        resolve(span.span_id)
    return resolved


def stage_rows(spans: Sequence[Span]) -> List[List[str]]:
    """Aggregate spans by name into per-stage timing table rows."""
    grouped: Dict[str, List[float]] = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span.duration)
    totals = {
        name: sum(durations) for name, durations in sorted(grouped.items())
    }
    total_all = sum(totals.values())
    rows = []
    for name in sorted(grouped, key=lambda n: -totals[n]):
        durations = sorted(grouped[name])
        total = totals[name]
        rows.append(
            [
                name,
                str(len(durations)),
                f"{total:.3f}s",
                f"{1e3 * total / len(durations):.2f}ms",
                f"{1e3 * _quantile(durations, 0.50):.2f}ms",
                f"{1e3 * _quantile(durations, 0.95):.2f}ms",
                format_percent(total / total_all if total_all else 0.0, 1),
            ]
        )
    return rows


#: Subsystem prefixes broken out as per-phone columns.
_SUBSYSTEMS = ("sensor", "isp", "codec", "inference")


def device_rows(spans: Sequence[Span]) -> List[List[str]]:
    """Aggregate spans per device, split by subsystem prefix.

    Only the *topmost* span of each subsystem chain is summed (e.g.
    ``isp.process`` but not its ``isp.demosaic`` child), so nested spans
    are not double-counted.
    """
    devices = attribute_devices(spans)
    by_id = {span.span_id: span for span in spans}
    units: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    by_subsystem: Dict[Tuple[str, str], float] = {}
    for span in spans:
        device = devices[span.span_id]
        if span.name == "unit.execute":
            units[device] = units.get(device, 0) + 1
            totals[device] = totals.get(device, 0.0) + span.duration
        elif span.name == "unit.execute_group":
            # A fused group span covers `units` repeats in one pass.
            units[device] = units.get(device, 0) + int(span.attrs.get("units", 1))
            totals[device] = totals.get(device, 0.0) + span.duration
        prefix = span.name.split(".", 1)[0]
        if prefix in _SUBSYSTEMS:
            parent = by_id.get(span.parent_id) if span.parent_id is not None else None
            if parent is not None and parent.name.split(".", 1)[0] == prefix:
                continue  # nested inside the same subsystem; already counted
            key = (device, prefix)
            by_subsystem[key] = by_subsystem.get(key, 0.0) + span.duration
    rows = []
    for device in sorted(set(units) | {d for d, _ in by_subsystem}):
        row = [
            device,
            str(units.get(device, 0)),
            f"{totals.get(device, 0.0):.3f}s",
        ]
        for prefix in _SUBSYSTEMS:
            row.append(f"{by_subsystem.get((device, prefix), 0.0):.3f}s")
        rows.append(row)
    return rows


def cache_rows(metrics: dict) -> List[List[str]]:
    """Hit-rate rows for every ``<layer>.hit``/``<layer>.miss`` pair."""
    counters = metrics.get("counters", {})
    layers = sorted(
        {
            name.rsplit(".", 1)[0]
            for name in counters
            if name.endswith(".hit") or name.endswith(".miss")
        }
    )
    rows = []
    for layer in layers:
        hits = counters.get(f"{layer}.hit", 0)
        misses = counters.get(f"{layer}.miss", 0)
        lookups = hits + misses
        rows.append(
            [
                layer,
                str(int(hits)),
                str(int(misses)),
                format_percent(hits / lookups if lookups else 0.0, 1),
                str(int(counters.get(f"{layer}.store", 0))),
            ]
        )
    return rows


def _counter_lines(metrics: dict) -> List[str]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    skip = tuple(
        suffix for suffix in (".hit", ".miss", ".store")
    )
    lines = []
    for name in sorted(counters):
        if name.endswith(skip):
            continue
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name}: {rendered}")
    for name in sorted(gauges):
        lines.append(f"  {name}: {gauges[name]:g} (gauge)")
    return lines


def render_report(
    trace_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> str:
    """Render the full report for the given trace and/or metrics files."""
    if trace_path is None and metrics_path is None:
        raise ValueError("need a trace file, a metrics file, or both")
    sections: List[str] = []

    if trace_path is not None:
        spans = read_jsonl(trace_path)
        sections.append(f"=== per-stage timing ({len(spans)} spans) ===")
        rows = stage_rows(spans)
        if rows:
            sections.append(
                format_table(
                    ["stage", "count", "total", "mean", "p50", "p95", "share"],
                    rows,
                )
            )
        else:
            sections.append("(trace is empty)")
        dev_rows = device_rows(spans)
        if dev_rows:
            sections.append("")
            sections.append("=== per-phone timing ===")
            sections.append(
                format_table(
                    ["device", "units", "unit total"]
                    + [f"{p}" for p in _SUBSYSTEMS],
                    dev_rows,
                )
            )

    if metrics_path is not None:
        metrics = load_metrics_json(metrics_path)
        rows = cache_rows(metrics)
        sections.append("")
        sections.append("=== cache efficiency ===")
        if rows:
            sections.append(
                format_table(["layer", "hits", "misses", "hit rate", "stores"], rows)
            )
        else:
            sections.append("(no cache activity recorded)")
        extra = _counter_lines(metrics)
        if extra:
            sections.append("")
            sections.append("=== counters ===")
            sections.extend(extra)

    return "\n".join(sections).strip("\n")
