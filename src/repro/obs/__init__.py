"""Observability: tracing, metrics, and profiling for the capture stack.

The package answers the questions PR 1's fleet executor left opaque —
where capture time goes, what the cache hit rate is, which pipeline
stage produced a given output — without perturbing a single output bit:

* :mod:`~repro.obs.trace` — nested :class:`Span` timing contexts with a
  thread/process-safe JSONL exporter;
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms with ``snapshot()`` -> dict and cross-worker
  ``merge()`` semantics;
* :mod:`~repro.obs.report` — renders the per-phone / per-stage timing
  and cache-efficiency tables behind ``python -m repro report``.

Instrumentation contract
------------------------
Hooks throughout the stack (executor, cache, units, ISP pipeline,
sensor, codec registry, device runtime) call the module-level helpers
below — :func:`span`, :func:`count`, :func:`gauge`, :func:`observe`.
When no observer is active, every helper is a dict-miss-cheap no-op
(one global read and an ``if``), so disabled observability costs
nothing measurable. Activate collection with::

    from repro import obs

    with obs.observed() as ob:
        result = EndToEndExperiment(seed=0, workers=4).run(per_class=8)
    ob.tracer.export_jsonl("trace.jsonl")
    snapshot = ob.metrics.snapshot()

Observation never touches any RNG and never changes what the
instrumented code returns, so experiment outputs are bit-identical with
observability on or off (``tests/obs/test_determinism_guard.py``).
Worker processes record into their own short-lived observer and ship
``(spans, metrics)`` back with each unit's result; the parent merges
them (see :meth:`~repro.obs.trace.Tracer.absorb` and
:meth:`~repro.obs.metrics.MetricsRegistry.merge`).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from .metrics import Histogram, MetricsRegistry
from .trace import Span, Tracer, read_jsonl

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Span",
    "Tracer",
    "active",
    "count",
    "gauge",
    "is_enabled",
    "observe",
    "observed",
    "read_jsonl",
    "span",
    "write_metrics_json",
]


class Observer:
    """A tracer + metrics registry pair collecting one observed run."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()


#: The currently active observer, or ``None`` (the no-op fast path).
_ACTIVE: Optional[Observer] = None


class _NullSpan:
    """Shared do-nothing span used whenever observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def active() -> Optional[Observer]:
    """The active :class:`Observer`, or ``None`` when disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    """True when an observer is collecting."""
    return _ACTIVE is not None


@contextmanager
def observed(observer: Optional[Observer] = None) -> Iterator[Observer]:
    """Activate an observer for the duration of the ``with`` block.

    Nests: the previous observer (possibly ``None``) is restored on
    exit, so worker processes forked mid-observation can push their own
    fresh observer without clobbering the parent's.
    """
    global _ACTIVE
    previous = _ACTIVE
    ob = observer if observer is not None else Observer()
    _ACTIVE = ob
    try:
        yield ob
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Hook helpers — the only API instrumented modules call. Each is a no-op
# when no observer is active.
# ----------------------------------------------------------------------
def span(name: str, **attrs: object):
    """A timing context for region ``name`` (no-op singleton if disabled)."""
    ob = _ACTIVE
    if ob is None:
        return _NULL_SPAN
    return ob.tracer.span(name, **attrs)


def count(name: str, n: float = 1) -> None:
    """Increment counter ``name`` on the active registry, if any."""
    ob = _ACTIVE
    if ob is not None:
        ob.metrics.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active registry, if any."""
    ob = _ACTIVE
    if ob is not None:
        ob.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the active registry."""
    ob = _ACTIVE
    if ob is not None:
        ob.metrics.observe(name, value)


def write_metrics_json(
    snapshot: dict, path: Union[str, Path]
) -> None:
    """Serialize a :meth:`MetricsRegistry.snapshot` to a JSON file."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
