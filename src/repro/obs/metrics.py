"""Counters, gauges, and histograms with snapshot/merge semantics.

:class:`MetricsRegistry` is the single sink the instrumentation hooks
write to: cache hits/misses, units executed, bytes encoded, per-stage
wall time, worker utilization. It is deliberately tiny — three metric
kinds, string names, one lock — because every value it holds must also
survive two boundaries:

* **process**: workers return ``registry.snapshot()`` (a plain nested
  dict) with their results, and the parent folds it in with
  :meth:`MetricsRegistry.merge`;
* **disk**: the same snapshot serializes to JSON for
  ``python -m repro report``.

Merge semantics: counters add, gauges keep the maximum (they record
high-water marks like worker count), histograms add their buckets and
combine min/max. Merging is associative and commutative, so aggregation
order across workers cannot change the result.

That algebra is also what makes **windowed streaming aggregation**
correct: a long-running consumer (``repro.serve``) records each
window's events into a fresh registry, then folds the closed window's
:meth:`MetricsRegistry.snapshot` into a cumulative registry with
:meth:`MetricsRegistry.merge`. Because every merge operator is an
associative, commutative monoid (sum, max, bucket-wise sum) with the
empty registry as identity, any grouping of the same windows — one
merge per window, a merge of pre-merged halves, or one registry that
saw every event directly — yields the same cumulative state. Totals
are *derived* from window merges, never double-counted.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

__all__ = ["Histogram", "MetricsRegistry"]

Snapshot = Dict[str, Dict[str, object]]


class Histogram:
    """Power-of-two bucketed distribution (count/sum/min/max preserved).

    Buckets are keyed by ``ceil(log2(value))``, covering anything from
    microsecond durations to multi-megabyte sizes without
    configuration; exact count, sum, min, and max are tracked alongside,
    so means are exact and quantiles are bucket-resolution estimates.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= 0:
            return -1075  # below the smallest positive double's exponent
        return math.ceil(math.log2(value))

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        exp = self._bucket(value)
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        hist.min = None if data["min"] is None else float(data["min"])
        hist.max = None if data["max"] is None else float(data["max"])
        hist.buckets = {int(exp): int(n) for exp, n in dict(data["buckets"]).items()}
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for exp, n in other.buckets.items():
            self.buckets[exp] = self.buckets.get(exp, 0) + n


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms.

    Parameters are created on first use — ``count("cache.hit")`` both
    declares and increments — so instrumentation sites stay one-liners.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writing --------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n`` (monotonic, merge = sum)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last-write locally, merge = max)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.record(value)

    # -- reading --------------------------------------------------------
    def counter_value(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def snapshot(self) -> Snapshot:
        """Plain-dict copy of every metric (JSON- and pickle-safe).

        A snapshot is a complete, self-describing value: feeding it to
        :meth:`merge` on an empty registry reconstructs this registry's
        exact state, and snapshots taken from disjoint event streams
        can be merged in any order or grouping (see the module
        docstring's associativity guarantee). This is the unit of
        transport across both process and disk boundaries, and the unit
        of *windowing* for streaming consumers: one registry per
        window, one snapshot at window close, one merge into the
        cumulative registry.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict() for name, hist in self._histograms.items()
                },
            }

    # -- merging --------------------------------------------------------
    def merge(self, snapshot: Snapshot) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters add, gauges take the max, histograms combine.

        **Associativity guarantee.** For snapshots ``a``, ``b``, ``c``
        over disjoint events, ``merge(a); merge(b); merge(c)`` produces
        the same state as merging in any other order, or as merging a
        pre-combined ``merge(a); merge(b)`` snapshot followed by ``c``:
        every per-metric operator (counter ``+``, gauge ``max``,
        histogram bucket-wise ``+`` with min/max combine) is associative
        and commutative with the empty registry as identity. Both the
        process-pool fan-in (workers merged in completion order) and the
        ``repro.serve`` windowed aggregator (windows merged in time
        order, totals derived only from window snapshots) rely on this;
        ``tests/obs/`` and ``tests/serve/`` pin it down.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in gauges.items():
                if name in self._gauges:
                    self._gauges[name] = max(self._gauges[name], float(value))
                else:
                    self._gauges[name] = float(value)
            for name, data in histograms.items():
                incoming = Histogram.from_dict(data)
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = incoming
                else:
                    mine.merge(incoming)
