"""Span tracing: nested timing contexts with a JSONL exporter.

A :class:`Span` is one timed region of the capture stack — an ISP stage,
a codec encode, one unit's full execution. Spans nest: each records the
``span_id`` of the span that was open on the same thread when it
started, so a trace reconstructs the call tree (unit -> sensor -> noise,
unit -> isp -> demosaic, ...) without any global registry.

:class:`Tracer` is the collector. It is thread-safe (per-thread open-span
stacks, one lock around the finished list) and *process-portable*: spans
convert to plain dicts (:meth:`Span.to_dict`) so worker processes can
ship their spans back to the parent with their results, where
:meth:`Tracer.absorb` re-ids them into the parent's trace. Export is a
JSONL file — one span per line — written append-only so concurrent
exporters sharing a path never produce torn lines.

Timing uses ``time.perf_counter`` relative to the tracer's construction
instant, so span starts are monotonic within one tracer and durations
are wall-clock accurate; absorbed worker spans keep their (worker-local)
starts, which remain internally ordered per unit.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = ["Span", "Tracer", "read_jsonl"]


@dataclass
class Span:
    """One finished timed region.

    Parameters
    ----------
    span_id:
        Identifier unique within one trace.
    parent_id:
        ``span_id`` of the enclosing span on the same thread, or ``None``
        for a root span.
    name:
        Dotted region name (``"isp.demosaic"``, ``"codec.encode"``).
    start:
        Seconds since the owning tracer's epoch (monotonic clock).
    duration:
        Wall-clock seconds the region was open.
    attrs:
        Free-form string-keyed annotations (device name, codec, stage).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON- and pickle-friendly)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=None if data["parent_id"] is None else int(data["parent_id"]),
            name=str(data["name"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            attrs=dict(data.get("attrs") or {}),
        )


class _OpenSpan:
    """Context manager for one in-flight span (returned by Tracer.span)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: object) -> "_OpenSpan":
        """Attach or update attributes on the open span."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_OpenSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = tracer._allocate_id()
        stack.append(self._span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        tracer._finish(
            Span(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                start=self._t0 - tracer._epoch,
                duration=t1 - self._t0,
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Thread-safe span collector with worker-merge and JSONL export.

    One tracer accumulates the spans of one observed run. Spans opened
    on different threads nest independently (per-thread stacks); spans
    produced in worker *processes* are merged in afterwards with
    :meth:`absorb`.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # -- internals ------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _OpenSpan:
        """Open a nested timing context; use as ``with tracer.span(...)``."""
        return _OpenSpan(self, name, attrs)

    def absorb(
        self,
        span_dicts: Iterable[Dict[str, object]],
        parent_id: Optional[int] = None,
        **extra_attrs: object,
    ) -> None:
        """Merge spans serialized by another tracer (e.g. a worker process).

        Span ids are remapped into this tracer's id space, preserving the
        parent links *within* the absorbed batch; absorbed root spans are
        re-parented under ``parent_id`` (or the caller's current open
        span when ``parent_id`` is ``None``). ``extra_attrs`` are stamped
        onto every absorbed root span.
        """
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1] if stack else None
        incoming = [Span.from_dict(d) for d in span_dicts]
        remap: Dict[int, int] = {}
        for span in incoming:
            remap[span.span_id] = self._allocate_id()
        with self._lock:
            for span in incoming:
                span.span_id = remap[span.span_id]
                if span.parent_id in remap:
                    span.parent_id = remap[span.parent_id]
                else:
                    span.parent_id = parent_id
                    span.attrs.update(extra_attrs)
                self._spans.append(span)

    # -- reading / export -----------------------------------------------
    def finished(self) -> List[Span]:
        """Snapshot of all finished spans (insertion order)."""
        with self._lock:
            return list(self._spans)

    def to_dicts(self) -> List[Dict[str, object]]:
        """All finished spans as plain dicts (for IPC or JSON)."""
        return [span.to_dict() for span in self.finished()]

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Append every finished span to ``path`` as one JSON line each.

        Returns the number of spans written. Lines are flushed in one
        buffered write per call; with O_APPEND semantics concurrent
        processes sharing a path interleave whole lines, never bytes.
        """
        spans = self.finished()
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in spans
        ]
        with self._lock:
            with open(path, "a", encoding="utf-8") as fh:
                fh.write("".join(line + "\n" for line in lines))
        return len(lines)


def read_jsonl(path: Union[str, Path]) -> List[Span]:
    """Load spans from a JSONL trace file (blank lines are skipped)."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
