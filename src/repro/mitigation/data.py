"""Fine-tuning corpora for stability training.

The paper fine-tunes on photos taken by the Samsung phone in the
end-to-end rig, pairs them (when the noise scheme wants real pairs) with
the iPhone photos of the *same displayed images*, and evaluates the
resulting model's instability between fresh Samsung and iPhone photos.
:func:`build_stability_corpus` captures that whole data layout: aligned
tensors for the two phones, object-level train/test splits (so the model
is never evaluated on objects it fine-tuned on), and the provenance
needed to build prediction records at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple
from zlib import crc32

import numpy as np

from ..codecs.registry import decode_any
from ..devices.phone import Phone
from ..devices.profiles import DeviceProfile, capture_fleet
from ..nn.preprocess import to_model_input
from ..scenes.dataset import build_dataset
from ..scenes.screen import Screen
from ..lab.rig import CaptureRig, DisplayedImage

__all__ = ["StabilityCorpus", "build_stability_corpus"]


@dataclass
class StabilityCorpus:
    """Aligned two-phone capture tensors with an object-level split.

    ``x_*`` tensors are model inputs ``(N, 3, 32, 32)``; row ``i`` of the
    primary and secondary tensors shows the *same displayed image*
    photographed by the two phones.
    """

    x_train_primary: np.ndarray
    x_train_secondary: np.ndarray
    y_train: np.ndarray
    x_test_primary: np.ndarray
    x_test_secondary: np.ndarray
    y_test: np.ndarray
    test_displayed: List[DisplayedImage]
    primary_name: str
    secondary_name: str

    def __post_init__(self) -> None:
        n_train = len(self.y_train)
        n_test = len(self.y_test)
        if not (
            len(self.x_train_primary) == len(self.x_train_secondary) == n_train
        ):
            raise ValueError("train tensors misaligned")
        if not (
            len(self.x_test_primary)
            == len(self.x_test_secondary)
            == n_test
            == len(self.test_displayed)
        ):
            raise ValueError("test tensors misaligned")


def build_stability_corpus(
    per_class: int = 10,
    train_fraction: float = 0.6,
    angles: Sequence[float] = (-30.0, 0.0, 30.0),
    seed: int = 0,
    phones: Optional[Tuple[DeviceProfile, DeviceProfile]] = None,
) -> StabilityCorpus:
    """Capture the Samsung/iPhone fine-tuning corpus.

    Splitting is by object so test scenes show objects unseen during
    fine-tuning, and both phones photograph every displayed image so the
    pairs stay aligned.
    """
    if phones is None:
        fleet = capture_fleet()
        primary = next(p for p in fleet if p.name == "samsung_galaxy_s10")
        secondary = next(p for p in fleet if p.name == "iphone_xr")
    else:
        primary, secondary = phones

    dataset = build_dataset(per_class=per_class, seed=seed)
    rig = CaptureRig(screen=Screen(seed=seed), angles=angles)
    displayed = rig.present(list(dataset))

    # Photograph everything on both phones.
    tensors = {}
    for profile in (primary, secondary):
        phone = Phone(profile)
        rng = np.random.default_rng((seed, crc32(profile.name.encode())))
        images = [
            decode_any(phone.photograph(shown.radiance, rng)) for shown in displayed
        ]
        tensors[profile.name] = to_model_input(images)

    labels = np.array([shown.item.label for shown in displayed], dtype=np.int64)

    # Object-level split.
    object_ids = sorted({shown.item.object_id for shown in displayed})
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(len(object_ids))
    cut = max(1, int(round(len(object_ids) * train_fraction)))
    train_objects = {object_ids[i] for i in perm[:cut]}
    train_mask = np.array(
        [shown.item.object_id in train_objects for shown in displayed]
    )

    test_displayed = [s for s, m in zip(displayed, train_mask) if not m]
    return StabilityCorpus(
        x_train_primary=tensors[primary.name][train_mask],
        x_train_secondary=tensors[secondary.name][train_mask],
        y_train=labels[train_mask],
        x_test_primary=tensors[primary.name][~train_mask],
        x_test_secondary=tensors[secondary.name][~train_mask],
        y_test=labels[~train_mask],
        test_displayed=test_displayed,
        primary_name=primary.name,
        secondary_name=secondary.name,
    )
