"""Stability training (paper §9.1; after Zheng et al. 2016).

Fine-tunes a model with the augmented objective

    L(x, x', theta) = L0(x, theta) + alpha * Ls(x, x', theta)

where ``L0`` is cross entropy on the clean image, ``x'`` comes from a
:class:`~repro.mitigation.noise.NoiseGenerator`, and ``Ls`` is either the
KL divergence between the two predictions ("kl") or the Euclidean
distance between the two embeddings ("embedding"). The paper's Table 6
sweeps the 4 noise schemes x 2 losses; :func:`run_table6` reproduces
that sweep and :func:`evaluate_cross_device_instability` scores each
fine-tuned model on held-out Samsung/iPhone photo pairs.

Implementation note: each step runs three forward passes — one to obtain
the clean prediction values, one through the noisy image (backward for
the x'-side gradients), one through the clean image (backward for the
L0 and x-side gradients). Gradients accumulate across the two backward
passes before the optimizer step; this is the explicit-cache equivalent
of autodiff through a two-branch graph with shared weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.instability import instability
from ..core.records import ExperimentResult, PredictionRecord
from ..nn.losses import (
    cross_entropy,
    embedding_stability_loss,
    kl_stability_loss,
)
from ..nn.model import Model
from ..nn.optim import Adam
from ..scenes.objects import ALL_CLASSES
from .data import StabilityCorpus
from .noise import NoiseGenerator

__all__ = [
    "StabilityTrainConfig",
    "StabilityTrainer",
    "evaluate_cross_device_instability",
    "Table6Row",
    "run_table6",
]


@dataclass
class StabilityTrainConfig:
    """Hyperparameters for one stability fine-tuning run."""

    alpha: float = 0.01
    stability_loss: str = "kl"  # "kl" or "embedding"
    epochs: int = 6
    batch_size: int = 32
    lr: float = 4e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.stability_loss not in ("kl", "embedding"):
            raise ValueError(f"unknown stability loss {self.stability_loss!r}")


class StabilityTrainer:
    """Fine-tune ``model`` in place with the stability objective."""

    def __init__(
        self,
        model: Model,
        noise: NoiseGenerator,
        config: StabilityTrainConfig,
    ) -> None:
        self.model = model
        self.noise = noise
        self.config = config
        self.optimizer = Adam(model.trainable_layers(), lr=config.lr)
        #: (total, l0, ls) per epoch, populated by :meth:`fit`.
        self.history: List[Dict[str, float]] = []

    def _step(self, xb: np.ndarray, yb: np.ndarray, idxb: np.ndarray, rng) -> Dict[str, float]:
        cfg = self.config
        x_noisy = self.noise.generate(xb, yb, idxb, rng)

        # Pass 1: clean prediction values (for the x'-side gradient).
        logits_clean_ref, embed_clean_ref = self.model.forward(xb, training=True)

        self.model.zero_grad()

        # Pass 2: noisy branch forward + backward.
        logits_noisy, embed_noisy = self.model.forward(x_noisy, training=True)
        if cfg.stability_loss == "kl":
            ls, dclean, dnoisy = kl_stability_loss(logits_clean_ref, logits_noisy)
            self.model.backward(cfg.alpha * dnoisy)
            dembed_clean = None
        else:
            ls, demb_clean, demb_noisy = embedding_stability_loss(
                embed_clean_ref, embed_noisy
            )
            self.model.backward(
                np.zeros_like(logits_noisy), dembedding=cfg.alpha * demb_noisy
            )
            dclean = np.zeros_like(logits_noisy)
            dembed_clean = cfg.alpha * demb_clean

        # Pass 3: clean branch forward + backward (classification + x-side
        # stability gradient).
        logits_clean, _ = self.model.forward(xb, training=True)
        l0, dlogits0 = cross_entropy(logits_clean, yb)
        self.model.backward(dlogits0 + cfg.alpha * dclean, dembedding=dembed_clean)

        self.optimizer.step()
        return {"l0": l0, "ls": ls, "total": l0 + cfg.alpha * ls}

    def fit(self, x: np.ndarray, y: np.ndarray) -> List[Dict[str, float]]:
        """Run the configured number of fine-tuning epochs."""
        if len(x) != len(y):
            raise ValueError("x and y lengths differ")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        for _epoch in range(cfg.epochs):
            order = rng.permutation(len(x))
            epoch_stats: List[Dict[str, float]] = []
            for start in range(0, len(x), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                epoch_stats.append(self._step(x[idx], y[idx], idx, rng))
            self.history.append(
                {
                    key: float(np.mean([s[key] for s in epoch_stats]))
                    for key in ("l0", "ls", "total")
                }
            )
        return self.history


def evaluate_cross_device_instability(
    model: Model, corpus: StabilityCorpus
) -> ExperimentResult:
    """Predict the held-out pairs on both phones; returns the records.

    ``instability(result)`` over these records is the paper's Table 6
    number: instability between iPhone and Samsung photos.
    """
    result = ExperimentResult([], name="stability_eval")
    for env, x in (
        (corpus.primary_name, corpus.x_test_primary),
        (corpus.secondary_name, corpus.x_test_secondary),
    ):
        proba = model.predict_proba(x)
        for i, row in enumerate(proba):
            shown = corpus.test_displayed[i]
            top1 = int(np.argmax(row))
            result.extend(
                [
                    PredictionRecord(
                        environment=env,
                        image_id=shown.image_id,
                        true_label=int(corpus.y_test[i]),
                        predicted_label=top1,
                        confidence=float(row[top1]),
                        class_name=shown.item.class_name,
                        ranking=tuple(int(j) for j in np.argsort(-row)),
                        angle=shown.angle,
                        metadata={
                            "probabilities": tuple(float(p) for p in row),
                            "predicted_class": ALL_CLASSES[top1],
                        },
                    )
                ]
            )
    return result


@dataclass(frozen=True)
class Table6Row:
    """One cell of the paper's Table 6."""

    noise: str
    stability_loss: str
    alpha: float
    instability: float
    accuracy: float
    hyper: Dict[str, float] = field(default_factory=dict)


def run_table6(
    base_model: Model,
    corpus: StabilityCorpus,
    epochs: int = 6,
    seed: int = 0,
    images_per_class: int = 10,
    embedding_base_model: Optional[Model] = None,
) -> List[Table6Row]:
    """Reproduce Table 6: every noise scheme under both stability losses.

    Alphas were re-tuned by grid search on this reproduction's loss
    scales (the paper likewise grid-searched; our losses are not on the
    paper's numeric scale, so its alphas do not transfer). Each run
    fine-tunes a fresh copy of ``base_model`` on the corpus's primary-
    phone training photos and is scored on the held-out cross-device
    pairs. Pass ``embedding_base_model`` (a base trained with the extra
    embedding dense layer, as the paper does for the embedding-distance
    loss) to use a different base for the embedding rows.
    """
    from ..core.instability import accuracy as accuracy_metric
    from .noise import (
        DistortionNoise,
        GaussianNoise,
        NoNoise,
        SubsampleNoise,
        TwoImageNoise,
    )

    rng = np.random.default_rng(seed)
    schemes = []
    # (noise name, factory, {loss: alpha}) — alphas from the paper's Table 6.
    schemes.append(
        (
            "two_images",
            lambda: TwoImageNoise(corpus.x_train_secondary),
            {"embedding": 1.0, "kl": 1.0},
            {},
        )
    )
    schemes.append(
        (
            "subsample",
            lambda: SubsampleNoise.from_corpus(
                corpus.x_train_secondary, corpus.y_train, images_per_class, rng
            ),
            {"embedding": 1.0, "kl": 1.0},
            {"images_per_class": images_per_class},
        )
    )
    schemes.append(
        ("distortion", DistortionNoise, {"embedding": 1.0, "kl": 1.0}, {})
    )
    schemes.append(
        (
            "gaussian",
            lambda: GaussianNoise(0.04),
            {"embedding": 1.0, "kl": 1.0},
            {"sigma2": 0.04},
        )
    )
    schemes.append(("no_noise", NoNoise, {"embedding": 0.0, "kl": 0.0}, {}))

    rows: List[Table6Row] = []
    for loss_name in ("embedding", "kl"):
        source = (
            embedding_base_model
            if loss_name == "embedding" and embedding_base_model is not None
            else base_model
        )
        for noise_name, factory, alphas, hyper in schemes:
            model = source.copy()
            config = StabilityTrainConfig(
                alpha=alphas[loss_name],
                stability_loss=loss_name,
                epochs=epochs,
                seed=seed,
            )
            trainer = StabilityTrainer(model, factory(), config)
            trainer.fit(corpus.x_train_primary, corpus.y_train)
            result = evaluate_cross_device_instability(model, corpus)
            rows.append(
                Table6Row(
                    noise=noise_name,
                    stability_loss=loss_name,
                    alpha=alphas[loss_name],
                    instability=instability(result),
                    accuracy=accuracy_metric(result),
                    hyper=dict(hyper),
                )
            )
    return rows
