"""The raw-image inference mitigation (paper §9.2).

Instead of consuming each phone's JPEG, shoot raw and convert every
device's DNG with one *consistent* software ISP before inference. This
removes the per-vendor ISP and codec from the loop; what remains is
sensor-level variation, which is why the paper finds raw helps (~11.5%
relative instability reduction) but does not eliminate instability.

The heavy lifting lives in
:class:`repro.lab.experiments.RawVsJpegExperiment`; this module provides
the deployable inference-side helper.
"""

from __future__ import annotations

from typing import List, Sequence

from ..codecs.dng import decode_dng
from ..imaging.image import ImageBuffer
from ..isp.pipeline import ISPPipeline
from ..isp.profiles import build_isp

__all__ = ["ConsistentRawConverter"]


class ConsistentRawConverter:
    """Convert raw (DNG) files from any device through one fixed ISP."""

    def __init__(self, isp: str = "imagemagick", output_size: int = 96) -> None:
        self.pipeline: ISPPipeline = build_isp(isp, output_size, output_size)

    def convert(self, dng_bytes: bytes) -> ImageBuffer:
        """DNG container bytes -> consistently developed RGB image."""
        return self.pipeline.process(decode_dng(dng_bytes))

    def convert_many(self, files: Sequence[bytes]) -> List[ImageBuffer]:
        return [self.convert(data) for data in files]
