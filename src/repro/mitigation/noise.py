"""Noise generators for stability training (paper §9.1).

Stability training pairs every clean training image ``x`` with a
perturbed ``x'``. The paper evaluates four ways to produce ``x'``:

* :class:`GaussianNoise` — Zheng et al.'s original uncorrelated pixel
  noise, ``x' = x + eps, eps ~ N(0, sigma^2)``;
* :class:`DistortionNoise` — the paper's phone-noise simulation: random
  hue / contrast / brightness / saturation distortion plus a JPEG
  re-compression at random quality;
* :class:`TwoImageNoise` — no synthesis at all: ``x'`` is the *actual*
  photo of the same displayed image from a second phone (the paper pairs
  Samsung with iPhone captures);
* :class:`SubsampleNoise` — like two-image, but only ``k`` photos per
  class from the second phone exist, modelling a realistic calibration
  budget; ``x'`` is drawn from the class's small pool.

:class:`NoNoise` is the paper's baseline: plain fine-tuning, where the
stability term sees ``x' = x``.

All generators operate on model-input tensors ``(N, 3, H, W)`` in
``[-1, 1]`` and draw from a caller-supplied RNG, so training runs are
reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "NoiseGenerator",
    "NoNoise",
    "GaussianNoise",
    "DistortionNoise",
    "TwoImageNoise",
    "SubsampleNoise",
]


class NoiseGenerator:
    """Interface: map a clean batch to its perturbed counterpart.

    ``indices`` are the positions of the batch rows in the full training
    set, which the paired generators use to look up the corresponding
    second-phone photo.
    """

    name = "abstract"

    def generate(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        indices: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raise NotImplementedError


class NoNoise(NoiseGenerator):
    """Baseline fine-tuning: the "noisy" image is the image itself."""

    name = "no_noise"

    def generate(self, x, labels, indices, rng):
        return x


class GaussianNoise(NoiseGenerator):
    """Uncorrelated Gaussian pixel noise with variance ``sigma2``."""

    name = "gaussian"

    def __init__(self, sigma2: float = 0.04) -> None:
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self.sigma = float(np.sqrt(sigma2))

    def generate(self, x, labels, indices, rng):
        noise = rng.normal(0.0, self.sigma, x.shape).astype(np.float32)
        return np.clip(x + noise, -1.0, 1.0)


class DistortionNoise(NoiseGenerator):
    """Simulated phone-pipeline distortion.

    Applies, per image: hue rotation, saturation / contrast / brightness
    scaling, and a JPEG re-compression at a random quality — the paper's
    list of "hue, contrast, brightness, saturation and JPEG compression
    quality".
    """

    name = "distortion"

    def __init__(
        self,
        max_hue_shift: float = 0.05,
        saturation_range: tuple = (0.7, 1.3),
        brightness_range: tuple = (0.8, 1.2),
        contrast_range: tuple = (0.8, 1.2),
        jpeg_quality_range: tuple = (50, 95),
    ) -> None:
        self.max_hue_shift = max_hue_shift
        self.saturation_range = saturation_range
        self.brightness_range = brightness_range
        self.contrast_range = contrast_range
        self.jpeg_quality_range = jpeg_quality_range

    def generate(self, x, labels, indices, rng):
        from ..codecs.jpeg import decode_jpeg, encode_jpeg
        from ..imaging.color import hsv_to_rgb, rgb_to_hsv
        from ..imaging.image import ImageBuffer

        out = np.empty_like(x)
        for i in range(len(x)):
            rgb = (x[i].transpose(1, 2, 0) + 1.0) / 2.0  # HWC in [0, 1]
            hsv = rgb_to_hsv(np.clip(rgb, 0.0, 1.0))
            hsv[..., 0] = (hsv[..., 0] + rng.uniform(-self.max_hue_shift, self.max_hue_shift)) % 1.0
            hsv[..., 1] = np.clip(hsv[..., 1] * rng.uniform(*self.saturation_range), 0, 1)
            rgb = hsv_to_rgb(hsv)
            rgb = rgb * rng.uniform(*self.brightness_range)
            mean = rgb.mean()
            rgb = mean + (rgb - mean) * rng.uniform(*self.contrast_range)
            rgb = np.clip(rgb, 0.0, 1.0)

            quality = int(rng.integers(self.jpeg_quality_range[0], self.jpeg_quality_range[1] + 1))
            roundtripped = decode_jpeg(
                encode_jpeg(ImageBuffer(rgb.astype(np.float32)), quality=quality)
            )
            out[i] = (roundtripped.pixels.transpose(2, 0, 1) - 0.5) / 0.5
        return out


class TwoImageNoise(NoiseGenerator):
    """The perturbed image is the aligned photo from a second phone."""

    name = "two_images"

    def __init__(self, paired_x: np.ndarray) -> None:
        self.paired_x = np.asarray(paired_x, dtype=np.float32)

    def generate(self, x, labels, indices, rng):
        if indices.max(initial=-1) >= len(self.paired_x):
            raise IndexError("paired tensor smaller than training set")
        return self.paired_x[indices]


class SubsampleNoise(NoiseGenerator):
    """Second-phone photos exist only as a small per-class pool.

    ``pool_x`` / ``pool_labels`` hold the calibration photos (``k`` per
    class, the paper's ``#images`` hyperparameter); each clean image is
    paired with a random pool photo *of its own class*.
    """

    name = "subsample"

    def __init__(self, pool_x: np.ndarray, pool_labels: np.ndarray) -> None:
        pool_x = np.asarray(pool_x, dtype=np.float32)
        pool_labels = np.asarray(pool_labels)
        if len(pool_x) != len(pool_labels):
            raise ValueError("pool tensors must align")
        if len(pool_x) == 0:
            raise ValueError("empty calibration pool")
        self._by_class: Dict[int, np.ndarray] = {}
        for cls in np.unique(pool_labels):
            self._by_class[int(cls)] = pool_x[pool_labels == cls]

    @classmethod
    def from_corpus(
        cls,
        paired_x: np.ndarray,
        labels: np.ndarray,
        images_per_class: int,
        rng: np.random.Generator,
    ) -> "SubsampleNoise":
        """Subsample ``images_per_class`` calibration photos per class."""
        if images_per_class <= 0:
            raise ValueError("images_per_class must be positive")
        pool_idx = []
        labels = np.asarray(labels)
        for cls_value in np.unique(labels):
            candidates = np.flatnonzero(labels == cls_value)
            take = min(images_per_class, len(candidates))
            pool_idx.extend(rng.choice(candidates, size=take, replace=False))
        pool_idx = np.array(sorted(pool_idx))
        return cls(paired_x[pool_idx], labels[pool_idx])

    def generate(self, x, labels, indices, rng):
        out = np.empty_like(x)
        for i, cls in enumerate(labels):
            pool = self._by_class.get(int(cls))
            if pool is None:
                raise KeyError(f"no calibration photos for class {int(cls)}")
            out[i] = pool[int(rng.integers(len(pool)))]
        return out
