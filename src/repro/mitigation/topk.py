"""Task simplification: accept the top-k predictions (paper §9.3).

For applications that can present several candidates (search,
recommendations), counting a prediction as correct when the true class
appears anywhere in the top k raises accuracy *and* lowers instability —
the paper reports ~30% improvement on both at k=3 — at the cost of a
less precise user experience. No retraining or recapture is involved;
existing experiment records are simply re-scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.instability import accuracy, instability
from ..core.records import ExperimentResult

__all__ = ["TopKReport", "simplify_task"]


@dataclass(frozen=True)
class TopKReport:
    """Top-1 vs top-k metrics for one experiment."""

    k: int
    accuracy_top1: float
    accuracy_topk: float
    instability_top1: float
    instability_topk: float

    @property
    def accuracy_improvement(self) -> float:
        """Relative accuracy gain from the simplification."""
        return (self.accuracy_topk - self.accuracy_top1) / max(
            self.accuracy_top1, 1e-12
        )

    @property
    def instability_reduction(self) -> float:
        """Relative instability reduction from the simplification."""
        if self.instability_top1 == 0:
            return 0.0
        return (
            self.instability_top1 - self.instability_topk
        ) / self.instability_top1


def simplify_task(result: ExperimentResult, k: int = 3) -> TopKReport:
    """Re-score an experiment's records with the top-k acceptance rule."""
    if k < 2:
        raise ValueError("k must be >= 2 to be a simplification")
    return TopKReport(
        k=k,
        accuracy_top1=accuracy(result, k=1),
        accuracy_topk=accuracy(result, k=k),
        instability_top1=instability(result, k=1),
        instability_topk=instability(result, k=k),
    )
