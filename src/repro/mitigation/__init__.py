"""Instability mitigation strategies (paper §9)."""

from .data import StabilityCorpus, build_stability_corpus
from .noise import (
    DistortionNoise,
    GaussianNoise,
    NoNoise,
    NoiseGenerator,
    SubsampleNoise,
    TwoImageNoise,
)
from .raw_pipeline import ConsistentRawConverter
from .stability import (
    StabilityTrainConfig,
    StabilityTrainer,
    Table6Row,
    evaluate_cross_device_instability,
    run_table6,
)
from .topk import TopKReport, simplify_task

__all__ = [
    "ConsistentRawConverter",
    "DistortionNoise",
    "GaussianNoise",
    "NoNoise",
    "NoiseGenerator",
    "StabilityCorpus",
    "StabilityTrainConfig",
    "StabilityTrainer",
    "SubsampleNoise",
    "Table6Row",
    "TopKReport",
    "TwoImageNoise",
    "build_stability_corpus",
    "evaluate_cross_device_instability",
    "run_table6",
    "simplify_task",
]
