"""ISP pipeline stages.

An image signal processor turns raw sensor data into a display-referred
image through a sequence of stages (paper §6 lists the common ones:
color correction, lens correction, demosaicing, noise reduction). Each
stage here transforms an :class:`ISPState`; :mod:`repro.isp.pipeline`
chains them.

Stage parameterization is the mechanism for modeling *different vendors'
ISPs*: the same stage classes with different parameters (demosaic
algorithm, tone-curve strength, CCM, sharpening) produce visibly and —
downstream of a classifier — behaviourally different images from
identical raw input, which the paper measures as 14.11% instability
(Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy import ndimage

from ..imaging.color import (
    apply_color_matrix,
    apply_wb_gains,
    apply_wb_gains_batch,
    gray_world_gains,
    gray_world_gains_batch,
    srgb_encode,
)
from ..imaging.image import BAYER_PATTERNS, RawImage
from ..imaging.ops import (
    bilinear_resize,
    bilinear_resize_batch,
    gaussian_blur,
    gaussian_blur_planes_batch,
    unsharp_mask,
    unsharp_mask_batch,
)
from ..lint.contracts import tensor_contract

__all__ = [
    "ISPState",
    "BatchISPState",
    "ISPStage",
    "BlackLevelCorrection",
    "Demosaic",
    "WhiteBalance",
    "ColorCorrection",
    "ToneMap",
    "GammaEncode",
    "Denoise",
    "Sharpen",
    "Resize",
]


@dataclass
class ISPState:
    """Data flowing through the pipeline.

    Starts with ``mosaic`` set (and ``rgb`` None); the demosaic stage
    populates ``rgb`` and later stages refine it. ``raw`` keeps the
    original capture's calibration metadata accessible to all stages.
    """

    raw: RawImage
    mosaic: Optional[np.ndarray] = None
    rgb: Optional[np.ndarray] = None

    def require_mosaic(self) -> np.ndarray:
        if self.mosaic is None:
            raise RuntimeError("stage requires mosaic-domain data (before demosaic)")
        return self.mosaic

    def require_rgb(self) -> np.ndarray:
        if self.rgb is None:
            raise RuntimeError("stage requires RGB-domain data (after demosaic)")
        return self.rgb


@dataclass
class BatchISPState:
    """A batch of :class:`ISPState` flowing through the pipeline together.

    ``mosaic`` is ``(N, H, W)`` and ``rgb`` is ``(N, H, W, 3)``; ``raws``
    keeps each item's calibration metadata. The batch invariant every
    stage upholds: item ``i`` of the batch is bit-identical to running
    the same stage on ``split()[i]`` alone.
    """

    raws: List[RawImage]
    mosaic: Optional[np.ndarray] = None
    rgb: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.raws)

    def require_mosaic(self) -> np.ndarray:
        if self.mosaic is None:
            raise RuntimeError("stage requires mosaic-domain data (before demosaic)")
        return self.mosaic

    def require_rgb(self) -> np.ndarray:
        if self.rgb is None:
            raise RuntimeError("stage requires RGB-domain data (after demosaic)")
        return self.rgb

    def split(self) -> List[ISPState]:
        """Per-item views (for stages without a vectorized path)."""
        return [
            ISPState(
                raw=raw,
                mosaic=None if self.mosaic is None else self.mosaic[i],
                rgb=None if self.rgb is None else self.rgb[i],
            )
            for i, raw in enumerate(self.raws)
        ]

    @classmethod
    def join(cls, items: List[ISPState]) -> "BatchISPState":
        """Restack per-item states produced by a split-and-loop stage."""
        mosaic = None
        if all(s.mosaic is not None for s in items):
            mosaic = np.stack([s.mosaic for s in items])
        rgb = None
        if all(s.rgb is not None for s in items):
            rgb = np.stack([s.rgb for s in items])
        return cls(raws=[s.raw for s in items], mosaic=mosaic, rgb=rgb)


class ISPStage:
    """Base class: stages implement ``process`` and are stateless."""

    def process(self, state: ISPState) -> ISPState:  # pragma: no cover - abstract
        raise NotImplementedError

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        """Batched ``process``; bit-identical to the per-item path.

        The default splits the batch and loops — trivially identical —
        so custom stages stay correct; the built-in stages override this
        with vectorized implementations.
        """
        return BatchISPState.join([self.process(s) for s in state.split()])

    @property
    def name(self) -> str:
        return type(self).__name__


@tensor_contract("(N, ?, ?) float32, _, _ -> (N, ?, ?) float32")
def _black_level_batch(mosaic: np.ndarray, black_level: float, span: float) -> np.ndarray:
    """Elementwise pedestal removal over an ``(N, H, W)`` mosaic stack."""
    return np.clip((mosaic - black_level) / span, 0.0, 1.0)


@dataclass
class BlackLevelCorrection(ISPStage):
    """Subtract the pedestal and normalize to [0, 1] sensor range."""

    def process(self, state: ISPState) -> ISPState:
        mosaic = state.require_mosaic()
        raw = state.raw
        span = raw.white_level - raw.black_level
        state.mosaic = np.clip((mosaic - raw.black_level) / span, 0.0, 1.0)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        calib = {(r.black_level, r.white_level) for r in state.raws}
        if len(calib) != 1:
            return super().process_batch(state)
        raw = state.raws[0]
        span = raw.white_level - raw.black_level
        state.mosaic = _black_level_batch(state.require_mosaic(), raw.black_level, span)
        return state


@tensor_contract("(H, W) float32, _ -> (H, W, 3) float32")
def _bilinear_demosaic(mosaic: np.ndarray, pattern: str) -> np.ndarray:
    """Normalized-convolution bilinear demosaic."""
    h, w = mosaic.shape
    cell = BAYER_PATTERNS[pattern]
    channel_map = np.tile(cell, (h // 2, w // 2))
    kernel = np.array([[0.25, 0.5, 0.25], [0.5, 1.0, 0.5], [0.25, 0.5, 0.25]])
    rgb = np.empty((h, w, 3), dtype=np.float32)
    for c in range(3):
        mask = (channel_map == c).astype(np.float32)
        values = ndimage.convolve(mosaic * mask, kernel, mode="mirror")
        weights = ndimage.convolve(mask, kernel, mode="mirror")
        rgb[..., c] = values / np.maximum(weights, 1e-8)
    return rgb


@tensor_contract("(N, ?, ?) float32, _ -> (N, ?, ?, ?) float32")
def _bilinear_demosaic_batch(mosaic: np.ndarray, pattern: str) -> np.ndarray:
    """Batched :func:`_bilinear_demosaic` over ``(N, H, W)`` mosaics.

    A ``(1, k, k)`` kernel makes ``ndimage.convolve`` filter each item's
    spatial plane independently (the batch axis never mixes), so each
    output item is bit-identical to the per-item convolution.
    """
    n, h, w = mosaic.shape
    cell = BAYER_PATTERNS[pattern]
    channel_map = np.tile(cell, (h // 2, w // 2))
    kernel = np.array([[0.25, 0.5, 0.25], [0.5, 1.0, 0.5], [0.25, 0.5, 0.25]])
    rgb = np.empty((n, h, w, 3), dtype=np.float32)
    for c in range(3):
        mask = (channel_map == c).astype(np.float32)
        values = ndimage.convolve(mosaic * mask, kernel[None], mode="mirror")
        weights = ndimage.convolve(mask, kernel, mode="mirror")
        rgb[..., c] = values / np.maximum(weights, 1e-8)
    return rgb


# Malvar-He-Cutler 2004 gradient-corrected kernels, x 1/8.
_MALVAR_G_AT_RB = np.array(
    [
        [0, 0, -1, 0, 0],
        [0, 0, 2, 0, 0],
        [-1, 2, 4, 2, -1],
        [0, 0, 2, 0, 0],
        [0, 0, -1, 0, 0],
    ],
    dtype=np.float64,
) / 8.0

_MALVAR_RB_AT_G_SAME_ROW = np.array(
    [
        [0, 0, 0.5, 0, 0],
        [0, -1, 0, -1, 0],
        [-1, 4, 5, 4, -1],
        [0, -1, 0, -1, 0],
        [0, 0, 0.5, 0, 0],
    ],
    dtype=np.float64,
) / 8.0

_MALVAR_RB_AT_G_SAME_COL = _MALVAR_RB_AT_G_SAME_ROW.T

_MALVAR_RB_AT_OPPOSITE = np.array(
    [
        [0, 0, -1.5, 0, 0],
        [0, 2, 0, 2, 0],
        [-1.5, 0, 6, 0, -1.5],
        [0, 2, 0, 2, 0],
        [0, 0, -1.5, 0, 0],
    ],
    dtype=np.float64,
) / 8.0


@tensor_contract("(H, W) float32, _ -> (H, W, 3) float32")
def _malvar_demosaic(mosaic: np.ndarray, pattern: str) -> np.ndarray:
    """Malvar-He-Cutler gradient-corrected linear demosaic.

    Sharper than bilinear with characteristic edge behaviour — exactly the
    kind of algorithmic choice that distinguishes one vendor ISP from
    another.
    """
    h, w = mosaic.shape
    cell = BAYER_PATTERNS[pattern]
    channel_map = np.tile(cell, (h // 2, w // 2))
    m = mosaic.astype(np.float64)

    conv = lambda kern: ndimage.convolve(m, kern, mode="mirror")  # noqa: E731
    g_at_rb = conv(_MALVAR_G_AT_RB)
    rb_same_row = conv(_MALVAR_RB_AT_G_SAME_ROW)
    rb_same_col = conv(_MALVAR_RB_AT_G_SAME_COL)
    rb_opposite = conv(_MALVAR_RB_AT_OPPOSITE)

    is_r = channel_map == 0
    is_g = channel_map == 1
    is_b = channel_map == 2

    # Row kind: does this row contain red photosites?
    rows_with_r = is_r.any(axis=1)[:, None] & np.ones((1, w), dtype=bool)

    rgb = np.empty((h, w, 3), dtype=np.float64)
    # Green: native at G, interpolated at R and B.
    rgb[..., 1] = np.where(is_g, m, g_at_rb)
    # Red.
    r_at_g = np.where(rows_with_r, rb_same_row, rb_same_col)
    rgb[..., 0] = np.where(is_r, m, np.where(is_g, r_at_g, rb_opposite))
    # Blue (mirror of red: blue rows are the non-red rows).
    b_at_g = np.where(rows_with_r, rb_same_col, rb_same_row)
    rgb[..., 2] = np.where(is_b, m, np.where(is_g, b_at_g, rb_opposite))

    return np.clip(rgb, 0.0, 1.0).astype(np.float32)


@tensor_contract("(N, ?, ?) float32, _ -> (N, ?, ?, ?) float32")
def _malvar_demosaic_batch(mosaic: np.ndarray, pattern: str) -> np.ndarray:
    """Batched :func:`_malvar_demosaic` over ``(N, H, W)`` mosaics."""
    n, h, w = mosaic.shape
    cell = BAYER_PATTERNS[pattern]
    channel_map = np.tile(cell, (h // 2, w // 2))
    m = mosaic.astype(np.float64)

    conv = lambda kern: ndimage.convolve(m, kern[None], mode="mirror")  # noqa: E731
    g_at_rb = conv(_MALVAR_G_AT_RB)
    rb_same_row = conv(_MALVAR_RB_AT_G_SAME_ROW)
    rb_same_col = conv(_MALVAR_RB_AT_G_SAME_COL)
    rb_opposite = conv(_MALVAR_RB_AT_OPPOSITE)

    is_r = channel_map == 0
    is_g = channel_map == 1
    is_b = channel_map == 2
    rows_with_r = is_r.any(axis=1)[:, None] & np.ones((1, w), dtype=bool)

    rgb = np.empty((n, h, w, 3), dtype=np.float64)
    rgb[..., 1] = np.where(is_g, m, g_at_rb)
    r_at_g = np.where(rows_with_r, rb_same_row, rb_same_col)
    rgb[..., 0] = np.where(is_r, m, np.where(is_g, r_at_g, rb_opposite))
    b_at_g = np.where(rows_with_r, rb_same_col, rb_same_row)
    rgb[..., 2] = np.where(is_b, m, np.where(is_g, b_at_g, rb_opposite))

    return np.clip(rgb, 0.0, 1.0).astype(np.float32)


@dataclass
class Demosaic(ISPStage):
    """Reconstruct full RGB from the Bayer mosaic.

    ``algorithm`` is ``"bilinear"`` or ``"malvar"``.
    """

    algorithm: str = "malvar"

    def process(self, state: ISPState) -> ISPState:
        mosaic = state.require_mosaic()
        if self.algorithm == "bilinear":
            state.rgb = _bilinear_demosaic(mosaic, state.raw.pattern)
        elif self.algorithm == "malvar":
            state.rgb = _malvar_demosaic(mosaic, state.raw.pattern)
        else:
            raise ValueError(f"unknown demosaic algorithm {self.algorithm!r}")
        state.mosaic = None
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        if len({r.pattern for r in state.raws}) != 1:
            return super().process_batch(state)
        mosaic = state.require_mosaic()
        pattern = state.raws[0].pattern
        if self.algorithm == "bilinear":
            state.rgb = _bilinear_demosaic_batch(mosaic, pattern)
        elif self.algorithm == "malvar":
            state.rgb = _malvar_demosaic_batch(mosaic, pattern)
        else:
            raise ValueError(f"unknown demosaic algorithm {self.algorithm!r}")
        state.mosaic = None
        return state


@dataclass
class WhiteBalance(ISPStage):
    """Neutralize the illuminant / sensor color response.

    ``source`` selects the gains: ``"as_shot"`` uses the camera's metadata
    estimate; ``"gray_world"`` re-estimates from the image. ``strength``
    blends between no correction (0) and full correction (1) — vendors
    deliberately under-correct to keep scenes "warm".
    """

    source: str = "as_shot"
    strength: float = 1.0

    def process(self, state: ISPState) -> ISPState:
        rgb = state.require_rgb()
        if self.source == "as_shot":
            gains = np.asarray(state.raw.wb_gains, dtype=np.float32)
        elif self.source == "gray_world":
            gains = gray_world_gains(rgb)
        else:
            raise ValueError(f"unknown white balance source {self.source!r}")
        blended = 1.0 + (gains - 1.0) * np.float32(self.strength)
        state.rgb = np.clip(apply_wb_gains(rgb, blended), 0.0, 4.0)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        rgb = state.require_rgb()
        if self.source == "as_shot":
            gains = np.stack(
                [np.asarray(r.wb_gains, dtype=np.float32) for r in state.raws]
            )
        elif self.source == "gray_world":
            gains = gray_world_gains_batch(rgb)
        else:
            raise ValueError(f"unknown white balance source {self.source!r}")
        blended = 1.0 + (gains - 1.0) * np.float32(self.strength)
        state.rgb = np.clip(apply_wb_gains_batch(rgb, blended), 0.0, 4.0)
        return state


@dataclass
class ColorCorrection(ISPStage):
    """Apply a 3x3 color-correction matrix (sensor space -> sRGB-ish)."""

    matrix: np.ndarray = field(
        default_factory=lambda: np.array(
            [[1.45, -0.30, -0.15], [-0.25, 1.45, -0.20], [-0.10, -0.40, 1.50]],
            dtype=np.float32,
        )
    )

    def process(self, state: ISPState) -> ISPState:
        rgb = state.require_rgb()
        state.rgb = np.clip(apply_color_matrix(rgb, self.matrix), 0.0, 4.0)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        # ``(..., 3) @ (3, 3).T`` batches over leading dims independently.
        rgb = state.require_rgb()
        state.rgb = np.clip(apply_color_matrix(rgb, self.matrix), 0.0, 4.0)
        return state


@dataclass
class ToneMap(ISPStage):
    """Contrast S-curve in linear light.

    ``strength`` 0 is identity; higher values deepen shadows and roll off
    highlights more aggressively (vendor "look").
    """

    strength: float = 0.3

    def process(self, state: ISPState) -> ISPState:
        if self.strength < 0:
            raise ValueError("tone map strength must be non-negative")
        rgb = np.clip(state.require_rgb(), 0.0, 1.0)
        if self.strength == 0:
            return state
        # Smoothstep-family curve blended with identity.
        curved = rgb * rgb * (3.0 - 2.0 * rgb)
        state.rgb = (1 - self.strength) * rgb + self.strength * curved
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        if self.strength < 0:
            raise ValueError("tone map strength must be non-negative")
        rgb = np.clip(state.require_rgb(), 0.0, 1.0)
        if self.strength == 0:
            return state
        curved = rgb * rgb * (3.0 - 2.0 * rgb)
        state.rgb = (1 - self.strength) * rgb + self.strength * curved
        return state


@dataclass
class GammaEncode(ISPStage):
    """Encode linear light for display: sRGB curve or a pure power law."""

    mode: str = "srgb"
    gamma: float = 2.2

    def process(self, state: ISPState) -> ISPState:
        rgb = np.clip(state.require_rgb(), 0.0, 1.0)
        if self.mode == "srgb":
            state.rgb = srgb_encode(rgb)
        elif self.mode == "power":
            state.rgb = np.power(rgb, np.float32(1.0 / self.gamma))
        else:
            raise ValueError(f"unknown gamma mode {self.mode!r}")
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        # Both curves are elementwise, so the stacked call is identical.
        rgb = np.clip(state.require_rgb(), 0.0, 1.0)
        if self.mode == "srgb":
            state.rgb = srgb_encode(rgb)
        elif self.mode == "power":
            state.rgb = np.power(rgb, np.float32(1.0 / self.gamma))
        else:
            raise ValueError(f"unknown gamma mode {self.mode!r}")
        return state


@dataclass
class Denoise(ISPStage):
    """Edge-preserving-ish noise reduction.

    Chroma is smoothed more than luma (the universal ISP trick: human
    vision tolerates chroma blur). ``luma_sigma``/``chroma_sigma`` are
    Gaussian sigmas in pixels.
    """

    luma_sigma: float = 0.4
    chroma_sigma: float = 1.2

    def process(self, state: ISPState) -> ISPState:
        from ..imaging.color import rgb_to_ycbcr, ycbcr_to_rgb

        rgb = state.require_rgb()
        ycc = rgb_to_ycbcr(np.clip(rgb, 0.0, 1.0))
        if self.luma_sigma > 0:
            ycc[..., 0] = gaussian_blur(ycc[..., 0], self.luma_sigma)
        if self.chroma_sigma > 0:
            ycc[..., 1] = gaussian_blur(ycc[..., 1], self.chroma_sigma)
            ycc[..., 2] = gaussian_blur(ycc[..., 2], self.chroma_sigma)
        state.rgb = np.clip(ycbcr_to_rgb(ycc), 0.0, 1.0)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        from ..imaging.color import rgb_to_ycbcr, ycbcr_to_rgb

        rgb = state.require_rgb()
        ycc = rgb_to_ycbcr(np.clip(rgb, 0.0, 1.0))
        if self.luma_sigma > 0:
            ycc[..., 0] = gaussian_blur_planes_batch(ycc[..., 0], self.luma_sigma)
        if self.chroma_sigma > 0:
            ycc[..., 1] = gaussian_blur_planes_batch(ycc[..., 1], self.chroma_sigma)
            ycc[..., 2] = gaussian_blur_planes_batch(ycc[..., 2], self.chroma_sigma)
        state.rgb = np.clip(ycbcr_to_rgb(ycc), 0.0, 1.0)
        return state


@dataclass
class Sharpen(ISPStage):
    """Unsharp-mask sharpening (applied post-gamma by most vendors)."""

    amount: float = 0.5
    sigma: float = 1.0

    def process(self, state: ISPState) -> ISPState:
        if self.amount < 0:
            raise ValueError("sharpen amount must be non-negative")
        rgb = state.require_rgb()
        state.rgb = np.clip(unsharp_mask(rgb, self.sigma, self.amount), 0.0, 1.0)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        if self.amount < 0:
            raise ValueError("sharpen amount must be non-negative")
        rgb = state.require_rgb()
        state.rgb = np.clip(unsharp_mask_batch(rgb, self.sigma, self.amount), 0.0, 1.0)
        return state


@dataclass
class Resize(ISPStage):
    """Scale to the pipeline's output resolution."""

    height: int = 96
    width: int = 96

    def process(self, state: ISPState) -> ISPState:
        rgb = state.require_rgb()
        state.rgb = bilinear_resize(rgb, self.height, self.width)
        return state

    def process_batch(self, state: BatchISPState) -> BatchISPState:
        rgb = state.require_rgb()
        state.rgb = bilinear_resize_batch(rgb, self.height, self.width)
        return state
