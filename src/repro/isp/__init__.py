"""Image signal processor: staged raw-to-RGB pipelines and vendor profiles."""

from .pipeline import ISPPipeline
from .profiles import available_isps, build_isp
from .stages import (
    BlackLevelCorrection,
    ColorCorrection,
    Demosaic,
    Denoise,
    GammaEncode,
    ISPStage,
    ISPState,
    Resize,
    Sharpen,
    ToneMap,
    WhiteBalance,
)

__all__ = [
    "BlackLevelCorrection",
    "ColorCorrection",
    "Demosaic",
    "Denoise",
    "GammaEncode",
    "ISPPipeline",
    "ISPStage",
    "ISPState",
    "Resize",
    "Sharpen",
    "ToneMap",
    "WhiteBalance",
    "available_isps",
    "build_isp",
]
