"""The ISP pipeline: an ordered chain of stages with tap points.

``ISPPipeline.process(raw)`` runs a :class:`~repro.imaging.image.RawImage`
through every stage and returns the finished
:class:`~repro.imaging.image.ImageBuffer`. ``process_with_taps`` also
returns the intermediate image after each stage, which the tests and the
ablation benchmarks use to attribute instability to individual stages
(in the spirit of Buckler et al. 2017, which the paper builds on).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .. import obs
from ..imaging.image import ImageBuffer, RawImage
from .stages import BatchISPState, BlackLevelCorrection, Demosaic, ISPStage, ISPState

__all__ = ["ISPPipeline"]


class ISPPipeline:
    """An ordered, validated chain of ISP stages."""

    def __init__(self, stages: Sequence[ISPStage], name: str = "custom") -> None:
        stages = list(stages)
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        demosaic_positions = [
            i for i, s in enumerate(stages) if isinstance(s, Demosaic)
        ]
        if len(demosaic_positions) != 1:
            raise ValueError("pipeline must contain exactly one Demosaic stage")
        black_positions = [
            i for i, s in enumerate(stages) if isinstance(s, BlackLevelCorrection)
        ]
        if black_positions and black_positions[0] > demosaic_positions[0]:
            raise ValueError("BlackLevelCorrection must precede Demosaic")
        self.stages: List[ISPStage] = stages
        self.name = name

    def process(self, raw: RawImage) -> ImageBuffer:
        """Run the raw capture through every stage.

        Each stage executes inside its own ``isp.<stage>`` tracing span
        (annotated with the pipeline name) when observability is active,
        so traces attribute develop time stage by stage.
        """
        with obs.span("isp.process", pipeline=self.name):
            state = ISPState(raw=raw, mosaic=raw.mosaic.astype("float32").copy())
            for stage in self.stages:
                with obs.span(f"isp.{stage.name}", pipeline=self.name):
                    state = stage.process(state)
            return ImageBuffer(state.require_rgb()).clipped()

    def process_batch(self, raws: Sequence[RawImage]) -> List[ImageBuffer]:
        """Develop a batch of raw captures in one vectorized pass.

        Item ``i`` of the result is bit-identical to ``process(raws[i])``:
        every stage's ``process_batch`` either vectorizes over the leading
        batch axis with elementwise-equivalent arithmetic or falls back to
        a per-item loop.
        """
        raws = list(raws)
        if not raws:
            return []
        with obs.span("isp.process_batch", pipeline=self.name, items=len(raws)):
            state = BatchISPState(
                raws=raws,
                mosaic=np.stack([raw.mosaic.astype("float32") for raw in raws]),
            )
            for stage in self.stages:
                with obs.span(f"isp.{stage.name}", pipeline=self.name):
                    state = stage.process_batch(state)
            rgb = state.require_rgb()
            return [ImageBuffer(rgb[i]).clipped() for i in range(len(raws))]

    def process_with_taps(self, raw: RawImage) -> Tuple[ImageBuffer, Dict[str, ImageBuffer]]:
        """Run the pipeline, also returning the image after each RGB stage."""
        state = ISPState(raw=raw, mosaic=raw.mosaic.astype("float32").copy())
        taps: Dict[str, ImageBuffer] = {}
        for i, stage in enumerate(self.stages):
            state = stage.process(state)
            if state.rgb is not None:
                taps[f"{i:02d}:{stage.name}"] = ImageBuffer(state.rgb.copy()).clipped()
        return ImageBuffer(state.require_rgb()).clipped(), taps

    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " -> ".join(self.stage_names())
        return f"ISPPipeline({self.name!r}: {inner})"
