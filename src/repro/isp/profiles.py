"""Named ISP profiles: per-vendor pipelines and software converters.

Two families:

* **Vendor profiles** — the on-phone ISPs of the paper's five capture
  devices (Table 1). Each differs in demosaic algorithm, white-balance
  policy, color matrix, tone curve, denoising, and sharpening, which is
  how real phones from different vendors develop the same raw light into
  different pictures.

* **Software ISPs** — ``imagemagick`` and ``adobe``, the two raw
  converters the paper uses as simulated ISPs in §6 (following Buckler et
  al. 2017). They share no tuning: the "imagemagick" profile is a plain
  technically-neutral conversion, the "adobe" profile applies an opinionated
  look (stronger tone curve, warmer balance, more sharpening), so
  converting the same raw file through both yields the paper's Table 4
  divergence.

All profile builders are pure functions of their parameters, so two calls
give identical pipelines.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .pipeline import ISPPipeline
from .stages import (
    BlackLevelCorrection,
    ColorCorrection,
    Demosaic,
    Denoise,
    GammaEncode,
    Resize,
    Sharpen,
    ToneMap,
    WhiteBalance,
)

__all__ = ["build_isp", "available_isps"]


def _ccm(diag: float, leak: float, tint: float = 0.0) -> np.ndarray:
    """A plausible color-correction matrix.

    ``diag`` sets saturation strength, ``leak`` the off-diagonal
    cross-talk compensation, ``tint`` a red/blue asymmetry.
    """
    matrix = np.full((3, 3), -leak, dtype=np.float32)
    np.fill_diagonal(matrix, diag)
    matrix[0, 0] += tint
    matrix[2, 2] -= tint
    # Rows sum to ~1 so neutral stays neutral.
    matrix += (1.0 - matrix.sum(axis=1, keepdims=True)) / 3.0
    return matrix


def _samsung_s10(out_h: int, out_w: int) -> ISPPipeline:
    """Punchy consumer look: strong tone curve, saturated CCM, sharp."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("malvar"),
            WhiteBalance("as_shot", strength=0.96),
            ColorCorrection(_ccm(1.46, 0.23, tint=-0.04)),
            ToneMap(strength=0.33),
            GammaEncode("srgb"),
            Denoise(luma_sigma=0.35, chroma_sigma=1.1),
            Sharpen(amount=0.55, sigma=0.9),
            Resize(out_h, out_w),
        ],
        name="samsung_s10",
    )


def _lg_k10(out_h: int, out_w: int) -> ISPPipeline:
    """Budget pipeline: bilinear demosaic, heavy denoise, soft output."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("bilinear"),
            WhiteBalance("gray_world", strength=0.98),
            ColorCorrection(_ccm(1.40, 0.19)),
            ToneMap(strength=0.28),
            GammaEncode("power", gamma=2.2),
            Denoise(luma_sigma=0.7, chroma_sigma=1.6),
            Sharpen(amount=0.35, sigma=1.2),
            Resize(out_h, out_w),
        ],
        name="lg_k10",
    )


def _htc_desire10(out_h: int, out_w: int) -> ISPPipeline:
    """Mid-range: bilinear demosaic but aggressive sharpening."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("bilinear"),
            WhiteBalance("as_shot", strength=0.92),
            ColorCorrection(_ccm(1.42, 0.21, tint=-0.01)),
            ToneMap(strength=0.32),
            GammaEncode("srgb"),
            Denoise(luma_sigma=0.5, chroma_sigma=1.3),
            Sharpen(amount=0.7, sigma=0.8),
            Resize(out_h, out_w),
        ],
        name="htc_desire10",
    )


def _moto_g5(out_h: int, out_w: int) -> ISPPipeline:
    """Conservative pipeline: neutral color, mild everything."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("malvar"),
            WhiteBalance("gray_world", strength=0.95),
            ColorCorrection(_ccm(1.36, 0.17)),
            ToneMap(strength=0.26),
            GammaEncode("power", gamma=2.25),
            Denoise(luma_sigma=0.45, chroma_sigma=1.2),
            Sharpen(amount=0.45, sigma=1.0),
            Resize(out_h, out_w),
        ],
        name="moto_g5",
    )


def _iphone_xr(out_h: int, out_w: int) -> ISPPipeline:
    """Apple look: natural tone, accurate color, restrained sharpening."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("malvar"),
            WhiteBalance("as_shot", strength=1.0),
            ColorCorrection(_ccm(1.52, 0.26, tint=0.05)),
            ToneMap(strength=0.38),
            GammaEncode("srgb"),
            Denoise(luma_sigma=0.3, chroma_sigma=0.9),
            Sharpen(amount=0.55, sigma=1.0),
            Resize(out_h, out_w),
        ],
        name="iphone_xr",
    )


def _imagemagick(out_h: int, out_w: int) -> ISPPipeline:
    """Neutral software conversion: no look, just develop the raw."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("bilinear"),
            WhiteBalance("as_shot", strength=1.0),
            ColorCorrection(_ccm(1.40, 0.20)),
            ToneMap(strength=0.0),
            GammaEncode("srgb"),
            Resize(out_h, out_w),
        ],
        name="imagemagick",
    )


def _adobe(out_h: int, out_w: int) -> ISPPipeline:
    """Opinionated software conversion: Adobe-style default develop."""
    return ISPPipeline(
        [
            BlackLevelCorrection(),
            Demosaic("malvar"),
            WhiteBalance("gray_world", strength=0.92),
            ColorCorrection(_ccm(1.58, 0.28, tint=0.04)),
            ToneMap(strength=0.5),
            GammaEncode("power", gamma=2.35),
            Denoise(luma_sigma=0.25, chroma_sigma=0.8),
            Sharpen(amount=0.9, sigma=0.9),
            Resize(out_h, out_w),
        ],
        name="adobe",
    )


_BUILDERS: Dict[str, Callable[[int, int], ISPPipeline]] = {
    "samsung_s10": _samsung_s10,
    "lg_k10": _lg_k10,
    "htc_desire10": _htc_desire10,
    "moto_g5": _moto_g5,
    "iphone_xr": _iphone_xr,
    "imagemagick": _imagemagick,
    "adobe": _adobe,
}


def build_isp(name: str, out_height: int = 96, out_width: int = 96) -> ISPPipeline:
    """Instantiate a named ISP profile at the given output resolution."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown ISP profile {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(out_height, out_width)


def available_isps() -> List[str]:
    return sorted(_BUILDERS)
