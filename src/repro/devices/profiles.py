"""Device profiles: the paper's two phone fleets, built from one factory.

``capture_fleet()`` builds the five phones of Table 1 (the end-to-end
rig); ``firebase_fleet()`` builds the five phones of Table 5 (the
OS/processor experiment). Each profile composes a sensor, optics, an ISP
profile, a default save format, raw capability, and an OS decoder family
— the axes §§4-7 of the paper vary.

Construction is deduplicated through :class:`DeviceSpec` +
:func:`build_profile`: a spec is the flat parameter record (every scalar
knob a device has), the factory turns it into the nested
:class:`DeviceProfile` dataclass tree. The paper's ten phones are plain
spec tables (:data:`CAPTURE_SPECS`, :data:`FIREBASE_SPECS`), and the
synthetic population generator in :mod:`repro.fleet` samples specs from
per-vendor distributions and feeds them through the *same* factory — so
the five paper phones are exactly a degenerate fixed population.

Parameter choices follow each device's market tier: the Galaxy S10 and
iPhone XR get clean large-photosite sensors, good optics, and raw
support; the LG K10, HTC Desire 10, and Moto G5 get noisier sensors,
stronger vignetting, and lower JPEG quality settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..sensor.noise import SensorNoiseModel
from ..sensor.optics import LensModel
from ..sensor.sensor import SensorConfig
from .os_sim import DECODER_FAMILIES, OSDecoderProfile

__all__ = [
    "DeviceProfile",
    "DeviceSpec",
    "build_profile",
    "CAPTURE_SPECS",
    "FIREBASE_SPECS",
    "capture_fleet",
    "firebase_fleet",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Everything that characterizes one phone model."""

    name: str
    #: Vendor model code, as reported in the paper's Table 1 / Table 5.
    model_code: str
    sensor: SensorConfig
    #: Name of the ISP profile in :mod:`repro.isp.profiles`.
    isp: str
    #: Default save format ("jpeg" or "heif") and its quality setting.
    save_format: str = "jpeg"
    save_quality: int = 90
    supports_raw: bool = False
    os_decoder: OSDecoderProfile = field(
        default_factory=lambda: DECODER_FAMILIES["mainline"]
    )
    #: SoC marketing name (Table 5); informational.
    soc: str = ""


@dataclass(frozen=True)
class DeviceSpec:
    """The flat parameter record one device is built from.

    Every field is a scalar (or a small tuple of scalars), which makes a
    spec trivially samplable from per-vendor distributions, comparable,
    and fingerprintable. :func:`build_profile` is the single place the
    nested profile tree is assembled, shared by the paper's fixed fleets
    and :func:`repro.fleet.generate_fleet`.
    """

    name: str
    model_code: str
    #: Per-channel spectral sensitivity relative to green.
    sensitivity: Tuple[float, float, float]
    #: Nominal exposure gain.
    exposure: float
    #: Effective full-well capacity in electrons (bigger = cleaner).
    full_well: float
    #: RMS read noise as a fraction of full scale.
    read_noise: float
    #: Corner brightness falloff (0 = none).
    vignetting: float
    #: Gaussian PSF sigma in pixels.
    blur: float
    #: Lateral chromatic aberration (relative radial magnification).
    chroma_ab: float
    #: Seeds the sensor's fixed-pattern (PRNU) component.
    noise_seed: int
    #: Mean dark signal as a fraction of full scale.
    dark_current: float = 0.001
    #: RMS of the fixed per-pixel gain error.
    prnu: float = 0.005
    pattern: str = "RGGB"
    #: Name of the ISP profile in :mod:`repro.isp.profiles`.
    isp: str = "imagemagick"
    save_format: str = "jpeg"
    save_quality: int = 90
    supports_raw: bool = False
    #: Key into :data:`repro.devices.os_sim.DECODER_FAMILIES`.
    decoder_family: str = "mainline"
    soc: str = ""


def _sensor(
    sensitivity: Tuple[float, float, float],
    exposure: float,
    full_well: float,
    read_noise: float,
    vignetting: float,
    blur: float,
    chroma_ab: float,
    seed: int,
    pattern: str = "RGGB",
    dark_current: float = 0.001,
    prnu: float = 0.005,
) -> SensorConfig:
    return SensorConfig(
        resolution=(96, 96),
        pattern=pattern,
        channel_sensitivity=sensitivity,
        exposure=exposure,
        adc_bits=10,
        lens=LensModel(
            vignetting=vignetting, chromatic_aberration=chroma_ab, blur_sigma=blur
        ),
        noise=SensorNoiseModel(
            full_well_electrons=full_well,
            read_noise=read_noise,
            dark_current=dark_current,
            prnu=prnu,
            seed=seed,
        ),
    )


def build_profile(spec: DeviceSpec) -> DeviceProfile:
    """Assemble a :class:`DeviceProfile` from its flat spec.

    Pure: equal specs produce equal (and equally fingerprinted) profiles,
    which is what lets generated fleets share capture-cache entries with
    the paper fleets whenever their parameters coincide.
    """
    if spec.decoder_family not in DECODER_FAMILIES:
        raise KeyError(
            f"unknown decoder family {spec.decoder_family!r}; "
            f"available: {sorted(DECODER_FAMILIES)}"
        )
    sensor = _sensor(
        sensitivity=spec.sensitivity,
        exposure=spec.exposure,
        full_well=spec.full_well,
        read_noise=spec.read_noise,
        vignetting=spec.vignetting,
        blur=spec.blur,
        chroma_ab=spec.chroma_ab,
        seed=spec.noise_seed,
        pattern=spec.pattern,
        dark_current=spec.dark_current,
        prnu=spec.prnu,
    )
    return DeviceProfile(
        name=spec.name,
        model_code=spec.model_code,
        sensor=sensor,
        isp=spec.isp,
        save_format=spec.save_format,
        save_quality=spec.save_quality,
        supports_raw=spec.supports_raw,
        os_decoder=DECODER_FAMILIES[spec.decoder_family],
        soc=spec.soc,
    )


#: The five phones of the end-to-end experiment (paper Table 1).
CAPTURE_SPECS: Tuple[DeviceSpec, ...] = (
    DeviceSpec(
        name="samsung_galaxy_s10",
        model_code="SM-G973U1",
        sensitivity=(0.575, 1.0, 0.635),
        exposure=0.855,
        full_well=30000,
        read_noise=0.0015,
        vignetting=0.06,
        blur=0.55,
        chroma_ab=0.001,
        noise_seed=11,
        isp="samsung_s10",
        save_format="jpeg",
        save_quality=92,
        supports_raw=True,
    ),
    DeviceSpec(
        name="lg_k10_lte",
        model_code="K425",
        sensitivity=(0.565, 1.0, 0.625),
        exposure=0.845,
        full_well=15000,
        read_noise=0.002,
        vignetting=0.10,
        blur=0.70,
        chroma_ab=0.002,
        noise_seed=12,
        isp="lg_k10",
        save_format="jpeg",
        save_quality=85,
    ),
    DeviceSpec(
        name="htc_desire_10_lifestyle",
        model_code="DESIRE 10",
        sensitivity=(0.568, 1.0, 0.628),
        exposure=0.848,
        full_well=17000,
        read_noise=0.0018,
        vignetting=0.09,
        blur=0.65,
        chroma_ab=0.0018,
        noise_seed=13,
        isp="htc_desire10",
        save_format="jpeg",
        save_quality=87,
    ),
    DeviceSpec(
        name="motorola_moto_g5",
        model_code="XT1670",
        sensitivity=(0.57, 1.0, 0.63),
        exposure=0.85,
        full_well=19000,
        read_noise=0.0017,
        vignetting=0.08,
        blur=0.62,
        chroma_ab=0.0015,
        noise_seed=14,
        isp="moto_g5",
        save_format="jpeg",
        save_quality=88,
    ),
    DeviceSpec(
        name="iphone_xr",
        model_code="A1984",
        sensitivity=(0.578, 1.0, 0.638),
        exposure=0.858,
        full_well=32000,
        read_noise=0.0013,
        vignetting=0.055,
        blur=0.52,
        chroma_ab=0.0008,
        noise_seed=15,
        isp="iphone_xr",
        save_format="heif",
        save_quality=68,
        supports_raw=True,
    ),
)


def _firebase_spec(name: str, soc: str, decoder_family: str) -> DeviceSpec:
    """One Table 5 phone: shared reference sensor, per-device decoder.

    These phones never photograph anything — the experiment pushes fixed
    image files and runs inference — so only the OS decoder family
    matters; the sensor is a common placeholder.
    """
    return DeviceSpec(
        name=name,
        model_code=name.upper(),
        sensitivity=(0.57, 1.0, 0.63),
        exposure=0.85,
        full_well=25000,
        read_noise=0.002,
        vignetting=0.08,
        blur=0.6,
        chroma_ab=0.001,
        noise_seed=20,
        isp="imagemagick",
        decoder_family=decoder_family,
        soc=soc,
    )


#: The five phones of the OS/processor experiment (paper Table 5).
#: Huawei and Xiaomi share a divergent JPEG decoder build; Samsung,
#: Pixel, and Sony share the mainline one, reproducing the two MD5
#: camps the paper observed.
FIREBASE_SPECS: Tuple[DeviceSpec, ...] = (
    _firebase_spec("samsung_galaxy_note8", "EXYNOS 9 OCTA 8895", "mainline"),
    _firebase_spec("huawei_mate_rs", "HISILICON KIRIN 970", "vendor_neon"),
    _firebase_spec("pixel_2", "SNAPDRAGON 835", "mainline"),
    _firebase_spec("sony_xz3", "SNAPDRAGON 845", "mainline"),
    _firebase_spec("xiaomi_mi_8_pro", "HELIO G90T (MT6785T)", "vendor_neon"),
)


def capture_fleet() -> List[DeviceProfile]:
    """The five phones of the end-to-end experiment (paper Table 1)."""
    return [build_profile(spec) for spec in CAPTURE_SPECS]


def firebase_fleet() -> List[DeviceProfile]:
    """The five phones of the OS/processor experiment (paper Table 5)."""
    return [build_profile(spec) for spec in FIREBASE_SPECS]
