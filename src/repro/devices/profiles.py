"""Device profiles: the paper's two phone fleets.

``capture_fleet()`` builds the five phones of Table 1 (the end-to-end
rig); ``firebase_fleet()`` builds the five phones of Table 5 (the
OS/processor experiment). Each profile composes a sensor, optics, an ISP
profile, a default save format, raw capability, and an OS decoder family
— the axes §§4-7 of the paper vary.

Parameter choices follow each device's market tier: the Galaxy S10 and
iPhone XR get clean large-photosite sensors, good optics, and raw
support; the LG K10, HTC Desire 10, and Moto G5 get noisier sensors,
stronger vignetting, and lower JPEG quality settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..sensor.noise import SensorNoiseModel
from ..sensor.optics import LensModel
from ..sensor.sensor import SensorConfig
from .os_sim import DECODER_FAMILIES, OSDecoderProfile

__all__ = ["DeviceProfile", "capture_fleet", "firebase_fleet"]


@dataclass(frozen=True)
class DeviceProfile:
    """Everything that characterizes one phone model."""

    name: str
    #: Vendor model code, as reported in the paper's Table 1 / Table 5.
    model_code: str
    sensor: SensorConfig
    #: Name of the ISP profile in :mod:`repro.isp.profiles`.
    isp: str
    #: Default save format ("jpeg" or "heif") and its quality setting.
    save_format: str = "jpeg"
    save_quality: int = 90
    supports_raw: bool = False
    os_decoder: OSDecoderProfile = field(
        default_factory=lambda: DECODER_FAMILIES["mainline"]
    )
    #: SoC marketing name (Table 5); informational.
    soc: str = ""


def _sensor(
    sensitivity: Tuple[float, float, float],
    exposure: float,
    full_well: float,
    read_noise: float,
    vignetting: float,
    blur: float,
    chroma_ab: float,
    seed: int,
    pattern: str = "RGGB",
) -> SensorConfig:
    return SensorConfig(
        resolution=(96, 96),
        pattern=pattern,
        channel_sensitivity=sensitivity,
        exposure=exposure,
        adc_bits=10,
        lens=LensModel(
            vignetting=vignetting, chromatic_aberration=chroma_ab, blur_sigma=blur
        ),
        noise=SensorNoiseModel(
            full_well_electrons=full_well,
            read_noise=read_noise,
            dark_current=0.001,
            prnu=0.005,
            seed=seed,
        ),
    )


def capture_fleet() -> List[DeviceProfile]:
    """The five phones of the end-to-end experiment (paper Table 1)."""
    return [
        DeviceProfile(
            name="samsung_galaxy_s10",
            model_code="SM-G973U1",
            sensor=_sensor(
                sensitivity=(0.575, 1.0, 0.635),
                exposure=0.855,
                full_well=30000,
                read_noise=0.0015,
                vignetting=0.06,
                blur=0.55,
                chroma_ab=0.001,
                seed=11,
            ),
            isp="samsung_s10",
            save_format="jpeg",
            save_quality=92,
            supports_raw=True,
        ),
        DeviceProfile(
            name="lg_k10_lte",
            model_code="K425",
            sensor=_sensor(
                sensitivity=(0.565, 1.0, 0.625),
                exposure=0.845,
                full_well=15000,
                read_noise=0.002,
                vignetting=0.10,
                blur=0.70,
                chroma_ab=0.002,
                seed=12,
            ),
            isp="lg_k10",
            save_format="jpeg",
            save_quality=85,
        ),
        DeviceProfile(
            name="htc_desire_10_lifestyle",
            model_code="DESIRE 10",
            sensor=_sensor(
                sensitivity=(0.568, 1.0, 0.628),
                exposure=0.848,
                full_well=17000,
                read_noise=0.0018,
                vignetting=0.09,
                blur=0.65,
                chroma_ab=0.0018,
                seed=13,
            ),
            isp="htc_desire10",
            save_format="jpeg",
            save_quality=87,
        ),
        DeviceProfile(
            name="motorola_moto_g5",
            model_code="XT1670",
            sensor=_sensor(
                sensitivity=(0.57, 1.0, 0.63),
                exposure=0.85,
                full_well=19000,
                read_noise=0.0017,
                vignetting=0.08,
                blur=0.62,
                chroma_ab=0.0015,
                seed=14,
            ),
            isp="moto_g5",
            save_format="jpeg",
            save_quality=88,
        ),
        DeviceProfile(
            name="iphone_xr",
            model_code="A1984",
            sensor=_sensor(
                sensitivity=(0.578, 1.0, 0.638),
                exposure=0.858,
                full_well=32000,
                read_noise=0.0013,
                vignetting=0.055,
                blur=0.52,
                chroma_ab=0.0008,
                seed=15,
            ),
            isp="iphone_xr",
            save_format="heif",
            save_quality=68,
            supports_raw=True,
        ),
    ]


def firebase_fleet() -> List[DeviceProfile]:
    """The five phones of the OS/processor experiment (paper Table 5).

    These phones never photograph anything — the experiment pushes a fixed
    set of image files to each and runs inference — so only the OS decoder
    family matters. Huawei and Xiaomi share a divergent JPEG decoder
    build; Samsung, Pixel, and Sony share the mainline one, reproducing
    the two MD5 camps the paper observed.
    """
    base_sensor = _sensor(
        sensitivity=(0.57, 1.0, 0.63),
        exposure=0.85,
        full_well=25000,
        read_noise=0.002,
        vignetting=0.08,
        blur=0.6,
        chroma_ab=0.001,
        seed=20,
    )
    mainline = DECODER_FAMILIES["mainline"]
    vendor = DECODER_FAMILIES["vendor_neon"]
    entries = [
        ("samsung_galaxy_note8", "EXYNOS 9 OCTA 8895", mainline),
        ("huawei_mate_rs", "HISILICON KIRIN 970", vendor),
        ("pixel_2", "SNAPDRAGON 835", mainline),
        ("sony_xz3", "SNAPDRAGON 845", mainline),
        ("xiaomi_mi_8_pro", "HELIO G90T (MT6785T)", vendor),
    ]
    return [
        DeviceProfile(
            name=name,
            model_code=name.upper(),
            sensor=base_sensor,
            isp="imagemagick",
            os_decoder=decoder,
            soc=soc,
        )
        for name, soc, decoder in entries
    ]
