"""Phone device models: profiles, capture paths, OS loaders, runtimes."""

from .os_sim import DECODER_FAMILIES, OSDecoderProfile, content_hash
from .phone import Phone
from .profiles import DeviceProfile, capture_fleet, firebase_fleet
from .runtime import DeviceRuntime, Prediction

__all__ = [
    "DECODER_FAMILIES",
    "DeviceProfile",
    "DeviceRuntime",
    "OSDecoderProfile",
    "Phone",
    "Prediction",
    "capture_fleet",
    "content_hash",
    "firebase_fleet",
]
