"""Phone device models: profiles, capture paths, OS loaders, runtimes."""

from .os_sim import DECODER_FAMILIES, OSDecoderProfile, content_hash
from .phone import Phone
from .profiles import (
    CAPTURE_SPECS,
    FIREBASE_SPECS,
    DeviceProfile,
    DeviceSpec,
    build_profile,
    capture_fleet,
    firebase_fleet,
)
from .runtime import DeviceRuntime, Prediction

__all__ = [
    "CAPTURE_SPECS",
    "DECODER_FAMILIES",
    "DeviceProfile",
    "DeviceRuntime",
    "DeviceSpec",
    "FIREBASE_SPECS",
    "build_profile",
    "OSDecoderProfile",
    "Phone",
    "Prediction",
    "capture_fleet",
    "content_hash",
    "firebase_fleet",
]
