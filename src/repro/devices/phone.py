"""The phone model: sensor + ISP + codec + OS loader, end to end.

``Phone.photograph(radiance, rng)`` is the full capture path a real
phone app exercises — expose the sensor, develop through the vendor ISP,
save in the vendor's default format — returning the *file bytes*, because
that is the artifact that crosses device boundaries in the paper's
experiments. ``Phone.load(bytes)`` then decodes a file the way this
phone's OS would.

The raw path (``photograph_raw``) bypasses the ISP and codec entirely,
returning a DNG-like container; it exists on the two devices the paper
found to support raw capture (Galaxy S10, iPhone XR) and feeds the §9.2
mitigation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..codecs.dng import encode_dng
from ..codecs.registry import get_codec
from ..imaging.image import ImageBuffer, RawImage
from ..isp.pipeline import ISPPipeline
from ..isp.profiles import build_isp
from ..sensor.sensor import BayerSensor
from .profiles import DeviceProfile

__all__ = ["Phone"]


class Phone:
    """A concrete device instance built from a :class:`DeviceProfile`."""

    def __init__(self, profile: DeviceProfile, output_size: int = 96) -> None:
        self.profile = profile
        self.sensor = BayerSensor(profile.sensor)
        self.isp: ISPPipeline = build_isp(profile.isp, output_size, output_size)
        self._codec = get_codec(profile.save_format)

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def codec(self):
        """The vendor default save codec (from ``profile.save_format``)."""
        return self._codec

    # ------------------------------------------------------------------
    # Capture paths
    # ------------------------------------------------------------------
    def capture_raw(self, radiance: ImageBuffer, rng: np.random.Generator) -> RawImage:
        """Expose one frame; returns the sensor's raw mosaic."""
        return self.sensor.capture(radiance, rng)

    def capture_raw_batch(
        self, radiance: ImageBuffer, rngs: Sequence[np.random.Generator]
    ) -> List[RawImage]:
        """Expose ``len(rngs)`` repeat frames in one vectorized pass.

        Frame ``i`` is bit-identical to ``capture_raw(radiance, rngs[i])``.
        """
        return self.sensor.capture_batch(radiance, rngs)

    def develop(self, raw: RawImage) -> ImageBuffer:
        """Run a raw capture through this phone's vendor ISP."""
        return self.isp.process(raw)

    def develop_batch(self, raws: Sequence[RawImage]) -> List[ImageBuffer]:
        """Develop a batch through the vendor ISP in one vectorized pass.

        Item ``i`` is bit-identical to ``develop(raws[i])``.
        """
        return self.isp.process_batch(raws)

    def photograph(
        self,
        radiance: ImageBuffer,
        rng: np.random.Generator,
        quality: Optional[int] = None,
        format_override: Optional[str] = None,
    ) -> bytes:
        """Full default camera path: capture, develop, save. Returns file bytes.

        ``format_override`` forces a save format other than the vendor
        default (e.g. the §9.2 experiment shoots JPEG on the iPhone, whose
        default is HEIF).
        """
        raw = self.capture_raw(radiance, rng)
        developed = self.develop(raw)
        codec = get_codec(format_override) if format_override else self._codec
        q = quality if quality is not None else self.profile.save_quality
        if codec.default_quality is None:
            return codec.encode(developed)
        return codec.encode(developed, quality=q)

    def photograph_raw(self, radiance: ImageBuffer, rng: np.random.Generator) -> bytes:
        """Shoot raw (DNG-like container). Only on raw-capable devices."""
        if not self.profile.supports_raw:
            raise RuntimeError(
                f"{self.name} does not support raw capture "
                "(in the paper only the Galaxy S10 and iPhone XR did)"
            )
        raw = self.capture_raw(radiance, rng)
        return encode_dng(raw)

    # ------------------------------------------------------------------
    # Load path (the OS side, exercised by the §7 experiment)
    # ------------------------------------------------------------------
    def load(self, data: bytes) -> ImageBuffer:
        """Decode an image file with this phone's OS decoder."""
        return self.profile.os_decoder.load(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Phone({self.name!r}, isp={self.profile.isp!r}, fmt={self.profile.save_format!r})"
