"""On-device inference runtime.

Wraps a model the way a mobile inference engine does: decoded image in,
top-k predictions out. The ``numerics`` option lets experiments probe the
hardware axis the paper's §7 investigates — ``"float32"`` is the
reference; ``"float16"`` simulates half-precision accumulation by
rounding activations at the input. The paper (and our reproduction)
finds the decoded *pixels*, not the arithmetic, are what differ across
devices: with identical inputs, every runtime here is bit-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import obs
from ..imaging.image import ImageBuffer
from ..nn.model import Model
from ..nn.preprocess import to_model_input

__all__ = ["Prediction", "DeviceRuntime"]


@dataclass(frozen=True)
class Prediction:
    """One inference result."""

    #: Class indices sorted by descending probability.
    ranking: tuple
    #: Probability for each class (unsorted, index = class id).
    probabilities: tuple

    @property
    def top1(self) -> int:
        return self.ranking[0]

    @property
    def confidence(self) -> float:
        return self.probabilities[self.ranking[0]]

    def topk(self, k: int) -> tuple:
        return self.ranking[:k]


class DeviceRuntime:
    """A deterministic inference engine bound to one model.

    ``batch_size`` bounds how many frames enter one ``predict_proba``
    call: large experiment sweeps hand the runtime hundreds of decoded
    frames at once, and chunking keeps the activation working set
    cache-resident instead of materializing one enormous tensor. The
    chunk boundaries depend only on each frame's position in the input
    sequence, so batching never perturbs results between serial and
    parallel experiment runs (which assemble identical frame orders).
    """

    def __init__(
        self,
        model: Model,
        numerics: str = "float32",
        batch_size: Optional[int] = None,
    ) -> None:
        if numerics not in ("float32", "float16"):
            raise ValueError(f"unknown numerics mode {numerics!r}")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.numerics = numerics
        self.batch_size = batch_size

    def predict(self, images: Sequence[ImageBuffer] | ImageBuffer) -> List[Prediction]:
        """Run inference on decoded image(s), in deterministic batches."""
        x = to_model_input(images)
        with obs.span("inference.predict", frames=len(x), numerics=self.numerics):
            if self.numerics == "float16":
                x = x.astype(np.float16).astype(np.float32)
            if self.batch_size is None or len(x) <= self.batch_size:
                proba = self.model.predict_proba(x)
            else:
                proba = np.concatenate(
                    [
                        self.model.predict_proba(x[start : start + self.batch_size])
                        for start in range(0, len(x), self.batch_size)
                    ],
                    axis=0,
                )
        obs.count("inference.frames", len(x))
        results = []
        for row in proba:
            ranking = tuple(int(i) for i in np.argsort(-row))
            results.append(
                Prediction(ranking=ranking, probabilities=tuple(float(p) for p in row))
            )
        return results

    def predict_one(self, image: ImageBuffer) -> Prediction:
        return self.predict([image])[0]
