"""Operating-system image-loading simulation.

The paper's §7 traces the small cross-SoC instability (0.64%) to the OS's
JPEG decoding, not the processor: Huawei and Xiaomi phones produced JPEG
pixel buffers with different MD5 hashes than the other three phones,
while PNG decoded identically everywhere. The mechanism is real —
Android vendors ship different libjpeg-turbo builds / hardware JPEG
decoders whose IDCT and rounding differ at the last bit.

:class:`OSDecoderProfile` captures one OS build's decoding behaviour:
which IDCT implementation its JPEG decoder uses, how it rounds, and how
it upsamples chroma. PNG decoding takes no options because the format is
bit-exact by construction — which is why the PNG arm of the experiment
shows zero instability.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..codecs.jpeg import JpegDecodeOptions, decode_jpeg
from ..codecs.png import decode_png
from ..codecs.registry import sniff_format
from ..imaging.image import ImageBuffer

__all__ = ["OSDecoderProfile", "content_hash", "DECODER_FAMILIES"]


@dataclass(frozen=True)
class OSDecoderProfile:
    """One OS build's image-decoding behaviour."""

    name: str
    jpeg_options: JpegDecodeOptions = JpegDecodeOptions()

    def load(self, data: bytes) -> ImageBuffer:
        """Decode an image file the way this OS would."""
        fmt = sniff_format(data)
        if fmt == "jpeg":
            return decode_jpeg(data, self.jpeg_options)
        if fmt == "png":
            return decode_png(data)
        raise ValueError(f"OS loader does not handle format {fmt!r}")


#: The decoder families observed in the paper's Firebase experiment:
#: a mainline family (Samsung / Pixel / Sony) and a divergent family
#: (Huawei / Xiaomi) that hashes differently on JPEG.
DECODER_FAMILIES = {
    "mainline": OSDecoderProfile(
        name="mainline",
        jpeg_options=JpegDecodeOptions(
            idct="float", rounding="round", chroma_upsample="bilinear"
        ),
    ),
    "vendor_neon": OSDecoderProfile(
        name="vendor_neon",
        jpeg_options=JpegDecodeOptions(
            idct="fixed8", rounding="truncate", chroma_upsample="bilinear"
        ),
    ),
}


def content_hash(image: ImageBuffer) -> str:
    """MD5 of the decoded 8-bit pixel buffer (the paper's §7 diagnostic)."""
    return hashlib.md5(image.to_uint8().tobytes()).hexdigest()
