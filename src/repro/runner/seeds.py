"""Deterministic per-unit seed derivation.

Parallel determinism hinges on one rule: every work unit owns an RNG
derived purely from *what the unit is*, never from *when it runs*. The
serial path and every worker derive the same generator for the same
``(master_seed, device, image, repeat)`` coordinates, so fan-out order,
worker count, and cache hits cannot change a single output bit.

Components are folded into a ``numpy`` ``SeedSequence`` entropy tuple:
integers pass through (masked to non-negative), strings hash via CRC-32
(matching the ``crc32(phone.name)`` convention the serial experiments
already used), floats hash via their exact ``repr``.
"""

from __future__ import annotations

from typing import Tuple, Union
from zlib import crc32

import numpy as np

__all__ = ["seed_component", "unit_entropy", "derive_rng"]

Component = Union[int, float, str, bool, np.integer]

#: SeedSequence entropy words are taken modulo 2**32 per component.
_MASK32 = 0xFFFFFFFF


def seed_component(part: Component) -> int:
    """Map one seed component to a stable non-negative 32-bit integer."""
    if isinstance(part, (bool, np.bool_)):
        return int(part)
    if isinstance(part, (int, np.integer)):
        return int(part) & _MASK32
    if isinstance(part, str):
        return crc32(part.encode("utf-8"))
    if isinstance(part, float):
        return crc32(repr(part).encode("ascii"))
    raise TypeError(f"cannot derive a seed from {type(part).__name__!r}")


def unit_entropy(master_seed: int, *parts: Component) -> Tuple[int, ...]:
    """Entropy tuple identifying one work unit's RNG stream.

    Parameters
    ----------
    master_seed:
        The experiment-wide seed.
    *parts:
        The unit's identity coordinates (device name, image id, repeat
        index, ...) — whatever distinguishes this unit from every other
        unit in the same experiment. Accepts ints, bools, floats, and
        strings; see :func:`seed_component` for the folding rules.

    Returns
    -------
    A tuple of non-negative 32-bit integers suitable for
    ``numpy.random.SeedSequence`` (and for :class:`CaptureUnit.entropy`).
    Equal coordinates produce equal tuples in every process, which is
    the foundation of the parallel==serial determinism guarantee.
    """
    return (seed_component(master_seed),) + tuple(seed_component(p) for p in parts)


def derive_rng(master_seed: int, *parts: Component) -> np.random.Generator:
    """An independent, order-insensitive generator for one work unit.

    Parameters
    ----------
    master_seed, *parts:
        Identity coordinates, exactly as for :func:`unit_entropy`.

    Returns
    -------
    A fresh ``numpy.random.Generator`` seeded purely from the unit's
    identity — never from execution order, worker assignment, or any
    other generator's consumption.
    """
    return np.random.default_rng(unit_entropy(master_seed, *parts))
