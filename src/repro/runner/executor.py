"""The fleet executor: cache short-circuit, pool fan-out, serial fallback.

``FleetExecutor.run(units)`` resolves every unit through three stages:

1. **Cache probe** — each unit's content-addressed key is looked up in
   the attached :class:`~repro.runner.cache.CaptureCache`; hits skip
   execution entirely.
2. **Execution** — misses run through
   :func:`~repro.runner.units.execute_unit`, either in-process
   (``workers <= 1``, the serial fallback — zero new dependencies, zero
   pickling) or across a ``ProcessPoolExecutor``.
3. **Reassembly** — results return in input order, and fresh results
   are written back to the cache.

Because every unit owns its RNG (see :mod:`repro.runner.seeds`) and
``execute_unit`` is pure, stage 2's scheduling cannot influence any
output bit — the property ``tests/runner/test_determinism.py`` locks in.

Observability: when a :mod:`repro.obs` observer is active, the whole
``run`` is wrapped in a ``fleet.run`` span, cache probes and executions
feed the fleet counters, and pooled workers execute through
:func:`~repro.runner.units.execute_unit_observed`, which serializes each
worker's spans and metrics back with its payload so the parent's trace
covers work done in other processes. Observation is side-band only —
payloads (and therefore experiment outputs) are bit-identical with it on
or off.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from .cache import CaptureCache
from .units import CaptureUnit, execute_unit, execute_unit_observed, unit_cache_key

__all__ = ["FleetExecutor", "resolve_workers"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker request.

    Parameters
    ----------
    workers:
        ``None``, ``0``, or ``1`` select the serial in-process path;
        ``-1`` (or any negative value) selects every available core;
        any other positive value passes through.

    Returns
    -------
    The effective process count, with ``0`` meaning "serial".
    """
    if workers is None:
        return 0
    if workers < 0:
        return os.cpu_count() or 1
    return workers


def _pool_context():
    """Prefer fork (cheap, inherits the imported library); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class FleetExecutor:
    """Runs capture units with optional parallelism and caching.

    Parameters
    ----------
    workers:
        Process count. ``0``/``1``/``None`` use the serial in-process
        path; ``-1`` uses every core. Results are bit-identical across
        all settings.
    cache:
        Optional :class:`CaptureCache` consulted before execution and
        populated after.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        cache: Optional[CaptureCache] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache

    def run(self, units: Sequence[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
        """Execute every unit, in input order.

        Parameters
        ----------
        units:
            The :class:`CaptureUnit` sequence to resolve. Units already
            present in the attached cache are served without executing;
            the rest run serially or across the process pool.

        Returns
        -------
        One ``{name: ndarray}`` payload per unit, positionally aligned
        with ``units`` regardless of worker count, cache state, or
        scheduling order.
        """
        units = list(units)
        with obs.span("fleet.run", units=len(units), workers=self.workers):
            return self._run(units)

    def _run(self, units: List[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
        results: List[Optional[Dict[str, np.ndarray]]] = [None] * len(units)
        obs.count("fleet.units_submitted", len(units))
        obs.gauge("fleet.workers", max(1, self.workers))

        if self.cache is not None:
            with obs.span("fleet.cache_probe", units=len(units)):
                keys = [unit_cache_key(unit) for unit in units]
                pending = []
                for i, key in enumerate(keys):
                    payload = self.cache.get(key)
                    if payload is not None:
                        results[i] = payload
                    else:
                        pending.append(i)
        else:
            keys = []
            pending = list(range(len(units)))

        if pending:
            fresh = self._execute([units[i] for i in pending])
            for i, payload in zip(pending, fresh):
                results[i] = payload
                if self.cache is not None:
                    self.cache.put(keys[i], payload)

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(
        self, units: List[CaptureUnit]
    ) -> List[Dict[str, np.ndarray]]:
        if self.workers <= 1 or len(units) <= 1:
            # Serial fallback: hooks (if any) record straight into the
            # active observer, no serialization needed.
            return [execute_unit(unit) for unit in units]
        max_workers = min(self.workers, len(units))
        # Chunk generously: units are ~ms-scale, so per-task IPC overhead
        # would otherwise dominate.
        chunksize = max(1, len(units) // (max_workers * 4))
        observer = obs.active()
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=_pool_context()
        ) as pool:
            if observer is None:
                return list(pool.map(execute_unit, units, chunksize=chunksize))
            # Observed fan-out: each worker records into its own fresh
            # observer and ships (payload, spans, metrics) back; merging
            # happens here in submission order, so the assembled trace is
            # deterministic in structure even though worker timing isn't.
            payloads: List[Dict[str, np.ndarray]] = []
            for payload, span_dicts, metrics_snapshot in pool.map(
                execute_unit_observed, units, chunksize=chunksize
            ):
                observer.tracer.absorb(span_dicts)
                observer.metrics.merge(metrics_snapshot)
                payloads.append(payload)
            return payloads
