"""The fleet executor: cache short-circuit, fused grouping, pool fan-out.

``FleetExecutor.run(units)`` resolves every unit through three stages:

1. **Cache probe** — each unit's content-addressed key is looked up in
   the attached :class:`~repro.runner.cache.CaptureCache`; hits skip
   execution entirely.
2. **Execution** — misses run through the capture path. In batched mode
   (the default) pending units are first grouped by
   :func:`~repro.runner.units.group_signature`, so all repeats of the
   same (phone, scene, options) triple fuse into one vectorized
   :func:`~repro.runner.units.execute_unit_group` pass; per-unit cache
   keys are untouched because the fused outputs are split back into
   per-unit payloads before reassembly. With ``workers > 1`` the groups
   fan out across a ``ProcessPoolExecutor`` as pixel-free
   :class:`~repro.runner.shm.GroupTask` descriptors — radiance travels
   through a shared-memory input slab, decoded pixels come back through
   a preallocated output slab, and only scalar metadata crosses the
   pickle boundary. With ``batched=False`` every miss runs the legacy
   per-unit path (:func:`~repro.runner.units.execute_unit`), serially or
   via ``pool.map``.
3. **Reassembly** — results return in input order, and fresh results
   are written back to the cache.

Because every unit owns its RNG (see :mod:`repro.runner.seeds`) and the
fused group path is bit-identical to per-unit execution by construction
(``tests/runner/test_batch_invariance.py``), stage 2's mode — batched or
not, pooled or serial, any grouping order — cannot influence any output
bit.

Observability: when a :mod:`repro.obs` observer is active, the whole
``run`` is wrapped in a ``fleet.run`` span, cache probes and executions
feed the fleet counters, and pooled workers execute through the
``*_observed`` variants, which serialize each worker's spans and metrics
back with its results so the parent's trace covers work done in other
processes. Observation is side-band only — payloads (and therefore
experiment outputs) are bit-identical with it on or off.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .cache import CaptureCache
from .shm import GroupTask, SharedArrayRef, run_group_task
from .units import (
    CaptureUnit,
    execute_unit,
    execute_unit_group,
    execute_unit_observed,
    group_signature,
    photograph_output_shape,
    unit_cache_key,
)

__all__ = ["FleetExecutor", "resolve_workers"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker request.

    Parameters
    ----------
    workers:
        ``None``, ``0``, or ``1`` select the serial in-process path;
        ``-1`` (or any negative value) selects every available core;
        any other positive value passes through.

    Returns
    -------
    The effective process count, with ``0`` meaning "serial".
    """
    if workers is None:
        return 0
    if workers < 0:
        return os.cpu_count() or 1
    return workers


def _pool_context():
    """Prefer fork (cheap, inherits the imported library); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class FleetExecutor:
    """Runs capture units with optional parallelism and caching.

    Parameters
    ----------
    workers:
        Process count. ``0``/``1``/``None`` use the serial in-process
        path; ``-1`` uses every core. Results are bit-identical across
        all settings.
    cache:
        Optional :class:`CaptureCache` consulted before execution and
        populated after.
    batched:
        When true (the default), pending units that share a
        :func:`~repro.runner.units.group_signature` fuse into one
        vectorized pass per group; when false, every unit runs the
        legacy per-unit path. Both modes produce bit-identical payloads
        — ``batched=False`` exists as the benchmark baseline and as the
        conservative setting for online serving.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        cache: Optional[CaptureCache] = None,
        batched: bool = True,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.batched = batched

    def run(self, units: Sequence[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
        """Execute every unit, in input order.

        Parameters
        ----------
        units:
            The :class:`CaptureUnit` sequence to resolve. Units already
            present in the attached cache are served without executing;
            the rest run serially or across the process pool.

        Returns
        -------
        One ``{name: ndarray}`` payload per unit, positionally aligned
        with ``units`` regardless of worker count, cache state, batching
        mode, or scheduling order.
        """
        units = list(units)
        with obs.span("fleet.run", units=len(units), workers=self.workers):
            return self._run(units)

    def _run(self, units: List[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
        results: List[Optional[Dict[str, np.ndarray]]] = [None] * len(units)
        obs.count("fleet.units_submitted", len(units))
        obs.gauge("fleet.workers", max(1, self.workers))

        if self.cache is not None:
            with obs.span("fleet.cache_probe", units=len(units)):
                keys = [unit_cache_key(unit) for unit in units]
                pending = []
                for i, key in enumerate(keys):
                    payload = self.cache.get(key)
                    if payload is not None:
                        results[i] = payload
                    else:
                        pending.append(i)
        else:
            keys = []
            pending = list(range(len(units)))

        if pending:
            fresh = self._execute([units[i] for i in pending])
            for i, payload in zip(pending, fresh):
                results[i] = payload
                if self.cache is not None:
                    self.cache.put(keys[i], payload)

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(
        self, units: List[CaptureUnit]
    ) -> List[Dict[str, np.ndarray]]:
        if not self.batched:
            return self._execute_per_unit(units)
        groups = _group_pending(units)
        if self.workers <= 1 or len(units) <= 1:
            # Serial fused path: one vectorized pass per group, straight
            # into the active observer (if any), no serialization.
            results: List[Optional[Dict[str, np.ndarray]]] = [None] * len(units)
            for indices in groups:
                payloads = execute_unit_group([units[i] for i in indices])
                for i, payload in zip(indices, payloads):
                    results[i] = payload
            return results  # type: ignore[return-value]
        return self._execute_groups_pooled(units, groups)

    def _execute_per_unit(
        self, units: List[CaptureUnit]
    ) -> List[Dict[str, np.ndarray]]:
        if self.workers <= 1 or len(units) <= 1:
            # Serial fallback: hooks (if any) record straight into the
            # active observer, no serialization needed.
            return [execute_unit(unit) for unit in units]
        max_workers = min(self.workers, len(units))
        # Chunk generously: units are ~ms-scale, so per-task IPC overhead
        # would otherwise dominate.
        chunksize = max(1, len(units) // (max_workers * 4))
        observer = obs.active()
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=_pool_context()
        ) as pool:
            if observer is None:
                return list(pool.map(execute_unit, units, chunksize=chunksize))
            # Observed fan-out: each worker records into its own fresh
            # observer and ships (payload, spans, metrics) back; merging
            # happens here in submission order, so the assembled trace is
            # deterministic in structure even though worker timing isn't.
            payloads: List[Dict[str, np.ndarray]] = []
            for payload, span_dicts, metrics_snapshot in pool.map(
                execute_unit_observed, units, chunksize=chunksize
            ):
                observer.tracer.absorb(span_dicts)
                observer.metrics.merge(metrics_snapshot)
                payloads.append(payload)
            return payloads

    # ------------------------------------------------------------------
    def _execute_groups_pooled(
        self, units: List[CaptureUnit], groups: List[List[int]]
    ) -> List[Dict[str, np.ndarray]]:
        """Fan fused groups across the pool via shared-memory slabs.

        Photograph groups ship as pixel-free :class:`GroupTask`
        descriptors; units outside the fused path (no group signature)
        fall back to the legacy per-unit ``pool.map``. Results are
        scattered back to pending order, so callers see the same
        alignment as every other execution mode.
        """
        results: List[Optional[Dict[str, np.ndarray]]] = [None] * len(units)
        observer = obs.active()

        fusable: List[List[int]] = []
        legacy_indices: List[int] = []
        for indices in groups:
            first = units[indices[0]]
            # Same condition under which group_signature is non-None;
            # checked directly to avoid re-fingerprinting the radiance.
            if first.kind == "photograph" and first.profile is not None:
                fusable.append(indices)
            else:
                legacy_indices.extend(indices)

        # Input slab: each distinct radiance buffer is written once, no
        # matter how many groups (phones x repeats) reference it.
        radiance_refs: Dict[int, Tuple[int, np.ndarray]] = {}
        input_bytes = 0
        for indices in fusable:
            radiance = units[indices[0]].radiance
            if id(radiance) not in radiance_refs:
                contiguous = np.ascontiguousarray(radiance)
                radiance_refs[id(radiance)] = (input_bytes, contiguous)
                input_bytes += contiguous.nbytes

        # Output slab: one (N, H, W, 3) float32 region per group whose
        # decoded shape is statically known; the rest pickle their
        # payloads back (the fallback path).
        out_specs: List[Optional[Tuple[int, Tuple[int, int, int, int]]]] = []
        output_bytes = 0
        for indices in fusable:
            shape = photograph_output_shape(units[indices[0]].profile)
            if shape is None:
                out_specs.append(None)
                continue
            height, width = shape
            region = (len(indices), height, width, 3)
            out_specs.append((output_bytes, region))
            output_bytes += int(np.prod(region)) * 4

        slabs: List[shared_memory.SharedMemory] = []
        try:
            input_slab = output_slab = None
            if input_bytes:
                input_slab = shared_memory.SharedMemory(
                    create=True, size=input_bytes
                )
                slabs.append(input_slab)
                for offset, contiguous in radiance_refs.values():
                    view = np.ndarray(
                        contiguous.shape,
                        dtype=contiguous.dtype,
                        buffer=input_slab.buf,
                        offset=offset,
                    )
                    view[...] = contiguous
                    del view
            if output_bytes:
                output_slab = shared_memory.SharedMemory(
                    create=True, size=output_bytes
                )
                slabs.append(output_slab)

            tasks: List[GroupTask] = []
            for indices, out_spec in zip(fusable, out_specs):
                first = units[indices[0]]
                offset, contiguous = radiance_refs[id(first.radiance)]
                out_ref = None
                if out_spec is not None:
                    out_offset, region = out_spec
                    out_ref = SharedArrayRef(
                        output_slab.name, out_offset, region, "float32"
                    )
                tasks.append(
                    GroupTask(
                        profile=first.profile,
                        radiance=SharedArrayRef(
                            input_slab.name,
                            offset,
                            contiguous.shape,
                            str(contiguous.dtype),
                        ),
                        entropies=[tuple(units[i].entropy) for i in indices],
                        options=dict(first.options),
                        kind=first.kind,
                        out=out_ref,
                        observed=observer is not None,
                    )
                )

            legacy_units = [units[i] for i in legacy_indices]
            max_workers = min(self.workers, max(1, len(tasks) + len(legacy_units)))
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_pool_context()
            ) as pool:
                futures = [pool.submit(run_group_task, task) for task in tasks]
                if legacy_units:
                    if observer is None:
                        legacy_results = pool.map(execute_unit, legacy_units)
                    else:
                        legacy_results = pool.map(
                            execute_unit_observed, legacy_units
                        )
                # Collect in submission order: the assembled trace (and
                # the scatter below) is deterministic in structure even
                # though worker timing is not.
                for future, indices, task, out_spec in zip(
                    futures, fusable, tasks, out_specs
                ):
                    metas, span_dicts, metrics_snapshot = future.result()
                    if observer is not None and span_dicts is not None:
                        observer.tracer.absorb(span_dicts)
                        observer.metrics.merge(metrics_snapshot)
                    if out_spec is None:
                        for i, payload in zip(indices, metas):
                            results[i] = payload
                        continue
                    out_offset, region = out_spec
                    view = np.ndarray(
                        region,
                        dtype=np.float32,
                        buffer=output_slab.buf,
                        offset=out_offset,
                    )
                    for j, i in enumerate(indices):
                        results[i] = {
                            "pixels": view[j].copy(),
                            "encoded_size": metas[j]["encoded_size"],
                        }
                    del view
                if legacy_units:
                    if observer is None:
                        for i, payload in zip(legacy_indices, legacy_results):
                            results[i] = payload
                    else:
                        for i, (payload, span_dicts, metrics_snapshot) in zip(
                            legacy_indices, legacy_results
                        ):
                            observer.tracer.absorb(span_dicts)
                            observer.metrics.merge(metrics_snapshot)
                            results[i] = payload
        finally:
            for slab in slabs:
                try:
                    slab.close()
                except BufferError:  # pragma: no cover - view outlived scatter
                    pass
                try:
                    slab.unlink()
                except FileNotFoundError:  # pragma: no cover - double clean
                    pass

        return results  # type: ignore[return-value]


def _group_pending(units: List[CaptureUnit]) -> List[List[int]]:
    """Partition pending units into fused groups, preserving order.

    Units sharing a :func:`group_signature` land in one group (ordered by
    first occurrence, members in submission order); units outside the
    fused path get singleton groups. The grouping is a pure function of
    unit *content*, so any submission order of the same multiset of units
    yields the same group contents — the batch-invariance suite shuffles
    submission order to prove the outputs don't care.
    """
    grouped: Dict[str, List[int]] = {}
    order: List[List[int]] = []
    radiance_memo: Dict[int, str] = {}
    for i, unit in enumerate(units):
        signature = group_signature(unit, _radiance_memo=radiance_memo)
        if signature is None:
            order.append([i])
            continue
        bucket = grouped.get(signature)
        if bucket is None:
            bucket = grouped[signature] = [i]
            order.append(bucket)
        else:
            bucket.append(i)
    return order
