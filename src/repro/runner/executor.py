"""The fleet executor: cache short-circuit, pool fan-out, serial fallback.

``FleetExecutor.run(units)`` resolves every unit through three stages:

1. **Cache probe** — each unit's content-addressed key is looked up in
   the attached :class:`~repro.runner.cache.CaptureCache`; hits skip
   execution entirely.
2. **Execution** — misses run through
   :func:`~repro.runner.units.execute_unit`, either in-process
   (``workers <= 1``, the serial fallback — zero new dependencies, zero
   pickling) or across a ``ProcessPoolExecutor``.
3. **Reassembly** — results return in input order, and fresh results
   are written back to the cache.

Because every unit owns its RNG (see :mod:`repro.runner.seeds`) and
``execute_unit`` is pure, stage 2's scheduling cannot influence any
output bit — the property ``tests/runner/test_determinism.py`` locks in.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from .cache import CaptureCache
from .units import CaptureUnit, execute_unit, unit_cache_key

__all__ = ["FleetExecutor", "resolve_workers"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker request: ``None``/0/1 -> serial, -1 -> all cores."""
    if workers is None:
        return 0
    if workers < 0:
        return os.cpu_count() or 1
    return workers


def _pool_context():
    """Prefer fork (cheap, inherits the imported library); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class FleetExecutor:
    """Runs capture units with optional parallelism and caching.

    Parameters
    ----------
    workers:
        Process count. ``0``/``1``/``None`` use the serial in-process
        path; ``-1`` uses every core. Results are bit-identical across
        all settings.
    cache:
        Optional :class:`CaptureCache` consulted before execution and
        populated after.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        cache: Optional[CaptureCache] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache

    def run(self, units: Sequence[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
        """Execute every unit; returns payloads in input order."""
        units = list(units)
        results: List[Optional[Dict[str, np.ndarray]]] = [None] * len(units)

        if self.cache is not None:
            keys = [unit_cache_key(unit) for unit in units]
            pending = []
            for i, key in enumerate(keys):
                payload = self.cache.get(key)
                if payload is not None:
                    results[i] = payload
                else:
                    pending.append(i)
        else:
            keys = []
            pending = list(range(len(units)))

        if pending:
            fresh = self._execute([units[i] for i in pending])
            for i, payload in zip(pending, fresh):
                results[i] = payload
                if self.cache is not None:
                    self.cache.put(keys[i], payload)

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(
        self, units: List[CaptureUnit]
    ) -> List[Dict[str, np.ndarray]]:
        if self.workers <= 1 or len(units) <= 1:
            return [execute_unit(unit) for unit in units]
        max_workers = min(self.workers, len(units))
        # Chunk generously: units are ~ms-scale, so per-task IPC overhead
        # would otherwise dominate.
        chunksize = max(1, len(units) // (max_workers * 4))
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=_pool_context()
        ) as pool:
            return list(pool.map(execute_unit, units, chunksize=chunksize))
