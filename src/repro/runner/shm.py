"""Zero-copy shared-memory fan-out for fused capture groups.

The legacy pool path pickles every :class:`~repro.runner.units.CaptureUnit`
— including its full radiance buffer — into each worker, and pickles the
decoded pixel payload back out. For a fleet study the radiance fields
dominate that traffic: every repeat of every phone re-ships the same
scene. This module replaces both directions with
``multiprocessing.shared_memory`` slabs:

* the parent writes each *distinct* radiance buffer into one input slab
  and ships workers a :class:`SharedArrayRef` (name + offset + shape +
  dtype — a few hundred bytes) instead of the pixels;
* the parent preallocates one output slab with an ``(N, H, W, 3)``
  float32 region per group (shapes come from
  :func:`~repro.runner.units.photograph_output_shape`), and workers write
  their decoded pixels straight into it, returning only scalar metadata.

A :class:`GroupTask` is therefore pixel-free by construction —
``tests/runner/test_batch_invariance.py`` bounds its pickled size as a
regression test.

Worker-side attachment notes (CPython >= 3.9): ``SharedMemory(name=...)``
registers the segment with the process's ``resource_tracker`` even for
an attach-only handle. What that implies depends on the pool's start
method:

* **fork** (the default here): the worker inherits the parent's tracker
  connection, so its register is an idempotent re-add to the *shared*
  tracker set — unregistering from the worker would strip the parent's
  own registration and make the parent's ``unlink`` trip a tracker
  ``KeyError``. Do nothing; the parent's ``unlink`` settles the books.
* **spawn**: the worker boots a *private* tracker, which would unlink
  slabs it never owned when the worker exits. Here :func:`_attach`
  unregisters immediately after attaching — the parent is the sole
  owner and unlinks in its ``finally``.

:func:`_attach` tells the cases apart by whether a tracker connection
already existed before the first attach (inherited == fork). Attachments
are cached per worker process (slabs are reused across the many tasks of
one ``run``), which also sidesteps ``BufferError`` from closing a
segment while NumPy views of it are still alive: the mapping lives until
the worker process exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..devices.profiles import DeviceProfile
from .units import CaptureUnit, execute_unit_group, execute_unit_group_observed

__all__ = ["SharedArrayRef", "GroupTask", "run_group_task", "detach_all"]


@dataclass(frozen=True)
class SharedArrayRef:
    """An ndarray region inside a named shared-memory slab."""

    name: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass
class GroupTask:
    """Everything a worker needs to run one fused capture group.

    Deliberately pixel-free: the radiance travels as a
    :class:`SharedArrayRef`, and decoded pixels return through ``out``
    (or, when ``out`` is ``None`` because the group's output shape is not
    statically known, by pickling the payloads — the fallback path).
    """

    profile: DeviceProfile
    radiance: SharedArrayRef
    entropies: List[Tuple[int, ...]]
    options: Dict[str, Any] = field(default_factory=dict)
    kind: str = "photograph"
    out: Optional[SharedArrayRef] = None
    observed: bool = False


# Per-process attach cache: slab name -> open SharedMemory handle.
# Divergence across worker processes is the point: each worker attaches
# each slab once and keeps the mapping until process exit.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}  # lint: disable=PROC001


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        # An already-open tracker connection at this point was inherited
        # across fork; a fresh one spun up by the attach below is private
        # to this process. See the module docstring for why only the
        # private case must unregister.
        inherited = (
            getattr(resource_tracker._resource_tracker, "_fd", None) is not None
        )
        shm = shared_memory.SharedMemory(name=name)
        if not inherited:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - CPython-internal API
                pass
        _ATTACHED[name] = shm
    return shm


def _view(ref: SharedArrayRef) -> np.ndarray:
    """A zero-copy ndarray over the referenced slab region."""
    shm = _attach(ref.name)
    return np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
    )


def detach_all() -> None:
    """Drop cached attachments (for in-process tests; workers just exit)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view outlived the test
            pass
    _ATTACHED.clear()


def run_group_task(task: GroupTask):
    """Worker entry point: rebuild the group's units and run them fused.

    Returns ``(metas, span_dicts, metrics_snapshot)`` where ``metas`` is
    one small dict per unit. With an output slab the pixels are written
    in place and ``metas`` carries only ``encoded_size``; without one the
    full payloads come back pickled. ``span_dicts``/``metrics_snapshot``
    are ``None`` unless ``task.observed``.
    """
    radiance = _view(task.radiance)
    units = [
        CaptureUnit(
            kind=task.kind,
            profile=task.profile,
            radiance=radiance,
            entropy=tuple(entropy),
            options=dict(task.options),
        )
        for entropy in task.entropies
    ]
    if task.observed:
        payloads, span_dicts, metrics_snapshot = execute_unit_group_observed(units)
    else:
        payloads = execute_unit_group(units)
        span_dicts, metrics_snapshot = None, None

    if task.out is None:
        return payloads, span_dicts, metrics_snapshot

    out = _view(task.out)
    metas = []
    for i, payload in enumerate(payloads):
        out[i] = payload["pixels"]
        metas.append({"encoded_size": payload["encoded_size"]})
    return metas, span_dicts, metrics_snapshot
