"""Fleet execution: deterministic parallel capture with content caching.

The paper's end-to-end study (§4) runs every (scene, angle, device)
triple through render -> sensor -> ISP -> codec -> model. This package
turns that nested loop into a fleet of independent *work units* that can
be executed serially or fanned out across a process pool, with results
guaranteed bit-identical either way:

* :mod:`~repro.runner.seeds` derives an independent RNG per work unit
  from ``(master_seed, device, image, repeat)``, so no unit's noise
  stream depends on execution order or worker assignment;
* :mod:`~repro.runner.units` defines the picklable
  :class:`~repro.runner.units.CaptureUnit` payloads and the pure worker
  function that executes one unit;
* :mod:`~repro.runner.cache` is a content-addressed in-memory + on-disk
  cache keyed by a canonical fingerprint of everything that determines a
  unit's output (scene pixels, device profile, seed, options), letting
  repeated experiments and ablation sweeps skip redundant capture work;
* :mod:`~repro.runner.executor` schedules units over
  ``concurrent.futures`` with a serial fallback and cache short-circuit,
  fusing same-(phone, scene) repeats into vectorized group passes
  (:func:`~repro.runner.units.execute_unit_group`) by default;
* :mod:`~repro.runner.shm` ships fused groups to pooled workers as
  pixel-free shared-memory descriptors instead of pickled buffers.

The determinism contract — parallel output equals serial output
bit-for-bit for every experiment — is enforced by
``tests/runner/test_determinism.py``.

The package is instrumented with :mod:`repro.obs`: when an observer is
active, ``FleetExecutor.run`` emits ``fleet.*`` spans and counters, the
cache reports ``capture_cache.*`` hit/miss/store counts, and units
executed in worker processes serialize their spans and metrics back with
their payloads (see ``execute_unit_observed``). Observation is timing
side-band only and cannot change any payload bit.
"""

from .cache import CacheStats, CaptureCache, fingerprint
from .executor import FleetExecutor
from .seeds import derive_rng, unit_entropy
from .units import (
    CaptureUnit,
    execute_unit,
    execute_unit_group,
    group_signature,
    payload_to_raw,
    raw_to_payload,
)

__all__ = [
    "CacheStats",
    "CaptureCache",
    "CaptureUnit",
    "FleetExecutor",
    "derive_rng",
    "execute_unit",
    "execute_unit_group",
    "fingerprint",
    "group_signature",
    "payload_to_raw",
    "raw_to_payload",
    "unit_entropy",
]
