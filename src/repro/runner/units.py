"""Picklable fleet work units and the pure worker that executes them.

A :class:`CaptureUnit` is one independent slice of an experiment — one
device photographing one displayed radiance field, or one raw frame
being developed through one ISP/codec treatment. Units carry plain
arrays and dataclasses only, so they cross process boundaries cheaply,
and :func:`execute_unit` is a pure function of the unit (all randomness
comes from the unit's own seed entropy), which is what makes parallel
execution bit-identical to serial.

Unit kinds
----------
``photograph``
    Full default camera path: sensor -> vendor ISP -> codec -> OS-side
    decode. Returns the decoded pixels and the encoded file size.
``raw``
    Sensor exposure only; returns the Bayer mosaic plus calibration
    metadata (the §5/§6 raw-capture-bank corpus).
``raw_vs_jpeg``
    One exposure, two arms (§9.2): the phone's own ISP + JPEG file, and
    the same raw developed by a consistent conversion ISP.
``develop``
    No camera: an existing raw frame through a named software ISP,
    optionally round-tripped through a codec (§5 tables, §6 ISPs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..codecs.jpeg import jpeg_roundtrip_batch
from ..codecs.registry import decode_any, get_codec
from ..devices.phone import Phone
from ..devices.profiles import DeviceProfile
from ..imaging.image import ImageBuffer, RawImage
from ..isp.profiles import build_isp
from ..isp.stages import Resize
from .cache import fingerprint
from .seeds import unit_entropy  # noqa: F401  (re-exported convenience)

__all__ = [
    "CaptureUnit",
    "execute_unit",
    "execute_unit_observed",
    "execute_unit_group",
    "execute_unit_group_observed",
    "group_signature",
    "photograph_output_shape",
    "unit_cache_key",
    "raw_to_payload",
    "payload_to_raw",
]

UNIT_KINDS = ("photograph", "raw", "raw_vs_jpeg", "develop")

#: Cache-format version; bump when execute_unit's output changes shape.
_CACHE_VERSION = "unit-v1"


# ----------------------------------------------------------------------
# RawImage <-> flat array payload (cache/IPC friendly)
# ----------------------------------------------------------------------
def raw_to_payload(raw: RawImage, prefix: str = "") -> Dict[str, np.ndarray]:
    """Flatten a :class:`RawImage` into a ``{name: ndarray}`` payload."""
    return {
        f"{prefix}mosaic": raw.mosaic,
        f"{prefix}pattern": np.array(raw.pattern),
        f"{prefix}black_level": np.float64(raw.black_level),
        f"{prefix}white_level": np.float64(raw.white_level),
        f"{prefix}wb_gains": np.asarray(raw.wb_gains, dtype=np.float64),
        f"{prefix}meta_json": np.array(json.dumps(raw.metadata, sort_keys=True)),
    }


def payload_to_raw(payload: Dict[str, np.ndarray], prefix: str = "") -> RawImage:
    """Rebuild a :class:`RawImage` from :func:`raw_to_payload` output."""
    wb = np.asarray(payload[f"{prefix}wb_gains"], dtype=np.float64)
    return RawImage(
        mosaic=np.asarray(payload[f"{prefix}mosaic"], dtype=np.float32),
        pattern=str(payload[f"{prefix}pattern"]),
        black_level=float(payload[f"{prefix}black_level"]),
        white_level=float(payload[f"{prefix}white_level"]),
        wb_gains=(float(wb[0]), float(wb[1]), float(wb[2])),
        metadata=json.loads(str(payload[f"{prefix}meta_json"])),
    )


# ----------------------------------------------------------------------
# The unit
# ----------------------------------------------------------------------
@dataclass
class CaptureUnit:
    """One independent slice of fleet work.

    Attributes
    ----------
    kind:
        One of :data:`UNIT_KINDS`.
    profile:
        The capturing device (capture kinds only).
    radiance:
        ``(H, W, 3)`` float32 radiance pixels arriving at the device
        (capture kinds only).
    raw:
        A :func:`raw_to_payload` payload to develop (``develop`` only).
    entropy:
        The :func:`~repro.runner.seeds.unit_entropy` tuple seeding this
        unit's RNG (capture kinds only; ``develop`` is noise-free).
    options:
        Kind-specific knobs: ``quality``, ``format_override``, ``isp``,
        ``codec``, ``conversion_isp``.
    """

    kind: str
    profile: Optional[DeviceProfile] = None
    radiance: Optional[np.ndarray] = None
    raw: Optional[Dict[str, np.ndarray]] = None
    entropy: Tuple[int, ...] = ()
    options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise ValueError(
                f"unknown unit kind {self.kind!r}; expected one of {UNIT_KINDS}"
            )
        if self.kind == "develop":
            if self.raw is None:
                raise ValueError("develop units need a raw payload")
        else:
            if self.profile is None or self.radiance is None:
                raise ValueError(f"{self.kind} units need a profile and radiance")
            if not self.entropy:
                raise ValueError(f"{self.kind} units need seed entropy")


def unit_cache_key(unit: CaptureUnit) -> str:
    """Content-addressed cache key for one unit.

    Parameters
    ----------
    unit:
        The :class:`CaptureUnit` to key.

    Returns
    -------
    A SHA-256 hex digest over everything that determines the unit's
    output — kind, device profile, radiance/raw pixels, seed entropy,
    and options (order-insensitive) — prefixed by :data:`_CACHE_VERSION`
    so format changes can't serve stale payloads. Two units with equal
    keys produce bit-identical payloads, which is what makes the cache
    output-neutral.
    """
    return fingerprint(
        (
            _CACHE_VERSION,
            unit.kind,
            unit.profile,
            unit.radiance,
            unit.raw,
            tuple(unit.entropy),
            sorted(unit.options.items(), key=lambda kv: kv[0]),
        )
    )


# ----------------------------------------------------------------------
# Execution (runs in worker processes — must stay import-light and pure)
# ----------------------------------------------------------------------
#: Per-process Phone memo: profiles are frozen, Phones are stateless, so
#: one instance per distinct profile per worker is safe and saves the
#: ISP-pipeline construction on every unit. Divergence between workers
#: is speed-only — the memo never influences a payload bit.
_PHONE_MEMO: Dict[str, Phone] = {}  # lint: disable=PROC001


def _phone_for(profile: DeviceProfile) -> Phone:
    key = fingerprint(profile)
    phone = _PHONE_MEMO.get(key)
    if phone is None:
        phone = Phone(profile)
        _PHONE_MEMO[key] = phone
    return phone


def execute_unit(unit: CaptureUnit) -> Dict[str, np.ndarray]:
    """Run one unit to completion.

    Pure: the returned payload depends only on the unit itself (all
    randomness comes from ``unit.entropy``), which is the property the
    parallel==serial determinism suite relies on. When observability is
    active, the whole execution is wrapped in a ``unit.execute`` span
    (annotated with the unit kind and device) whose children are the
    per-stage sensor/ISP/codec spans — timing only, never affecting the
    payload.

    Parameters
    ----------
    unit:
        The work unit; see :class:`CaptureUnit` for the per-kind
        requirements.

    Returns
    -------
    A flat ``{name: ndarray}`` payload (cache- and IPC-friendly); the
    exact key set depends on ``unit.kind``.
    """
    with obs.span(
        "unit.execute",
        kind=unit.kind,
        device=unit.profile.name if unit.profile is not None else "-",
    ):
        payload = _execute_unit_inner(unit)
    obs.count("fleet.units_executed")
    return payload


def _execute_unit_inner(unit: CaptureUnit) -> Dict[str, np.ndarray]:
    if unit.kind == "develop":
        return _execute_develop(unit)

    phone = _phone_for(unit.profile)
    rng = np.random.default_rng(tuple(unit.entropy))
    radiance = ImageBuffer(unit.radiance)

    if unit.kind == "photograph":
        data = phone.photograph(
            radiance,
            rng,
            quality=unit.options.get("quality"),
            format_override=unit.options.get("format_override"),
        )
        image = decode_any(data)
        return {
            "pixels": image.pixels,
            "encoded_size": np.int64(len(data)),
        }

    if unit.kind == "raw":
        return raw_to_payload(phone.capture_raw(radiance, rng))

    if unit.kind == "raw_vs_jpeg":
        raw = phone.capture_raw(radiance, rng)
        developed = phone.develop(raw)
        quality = unit.options.get("quality", phone.profile.save_quality)
        data = get_codec("jpeg").encode(developed, quality=quality)
        conversion = build_isp(str(unit.options.get("conversion_isp", "imagemagick")))
        return {
            "jpeg_pixels": decode_any(data).pixels,
            "raw_pixels": conversion.process(raw).pixels,
            "encoded_size": np.int64(len(data)),
        }

    raise ValueError(f"unknown unit kind {unit.kind!r}")  # pragma: no cover


def group_signature(
    unit: CaptureUnit, _radiance_memo: Optional[Dict[int, str]] = None
) -> Optional[str]:
    """Fingerprint of a unit's fusable inputs (everything but entropy).

    Units sharing a signature are repeat captures of the same (phone,
    scene, options) triple: their execution differs only in the per-unit
    RNG stream, which is exactly what :func:`execute_unit_group`
    vectorizes over. Returns ``None`` for kinds the fused path does not
    cover (they stay on the per-unit path).

    ``_radiance_memo`` lets a caller grouping many units amortize the
    radiance digest across the (typical) case where every repeat of a
    scene shares one buffer object. Keyed by ``id``; only valid while the
    caller keeps the buffers alive, which is why it is caller-supplied
    rather than a module-level cache.
    """
    if unit.kind != "photograph" or unit.profile is None:
        return None
    if _radiance_memo is None:
        radiance_fp = fingerprint(unit.radiance)
    else:
        radiance_fp = _radiance_memo.get(id(unit.radiance))
        if radiance_fp is None:
            radiance_fp = fingerprint(unit.radiance)
            _radiance_memo[id(unit.radiance)] = radiance_fp
    return fingerprint(
        (
            unit.kind,
            unit.profile,
            radiance_fp,
            sorted(unit.options.items(), key=lambda kv: kv[0]),
        )
    )


def photograph_output_shape(profile: DeviceProfile) -> Optional[Tuple[int, int]]:
    """The ``(H, W)`` of a photograph unit's decoded pixels, if static.

    Derived from the profile ISP's Resize stage; the shared-memory
    fan-out uses it to preallocate output slabs. ``None`` when the ISP
    has no Resize stage (output then depends on the radiance size, and
    the fan-out falls back to pickled returns).
    """
    phone = _phone_for(profile)
    for stage in reversed(phone.isp.stages):
        if isinstance(stage, Resize):
            return (stage.height, stage.width)
    return None


def _group_is_fusable(units: Sequence[CaptureUnit]) -> bool:
    first = units[0]
    if first.kind != "photograph" or first.profile is None or first.radiance is None:
        return False
    for u in units[1:]:
        if u.kind != "photograph":
            return False
        if u.profile is not first.profile and u.profile != first.profile:
            return False
        if u.radiance is not first.radiance and not np.array_equal(
            u.radiance, first.radiance
        ):
            return False
        if u.options != first.options:
            return False
    return True


def execute_unit_group(units: Sequence[CaptureUnit]) -> List[Dict[str, np.ndarray]]:
    """Run a group of same-(phone, scene) photograph units in one pass.

    All units must share kind/profile/radiance/options and differ only in
    seed entropy (i.e. be repeats of one capture); anything else falls
    back to per-unit :func:`execute_unit`. Payload ``i`` is bit-identical
    to ``execute_unit(units[i])`` — the sensor fans one shared exposure
    front end out over the per-unit RNGs, the ISP develops the stack as
    ``(N, H, W, C)``, and JPEG devices use the fused
    :func:`~repro.codecs.jpeg.jpeg_roundtrip_batch` encode+reconstruct.
    A single-unit group still wins: the fused roundtrip skips the decode
    marker parse and Huffman walk entirely.
    """
    units = list(units)
    if not units:
        return []
    if not _group_is_fusable(units):
        return [execute_unit(u) for u in units]

    first = units[0]
    phone = _phone_for(first.profile)
    with obs.span(
        "unit.execute_group",
        kind=first.kind,
        device=first.profile.name,
        units=len(units),
    ):
        rngs = [np.random.default_rng(tuple(u.entropy)) for u in units]
        radiance = ImageBuffer(first.radiance)
        raws = phone.capture_raw_batch(radiance, rngs)
        images = phone.develop_batch(raws)

        fmt = first.options.get("format_override")
        codec = get_codec(str(fmt)) if fmt else phone.codec
        quality = first.options.get("quality")
        q = quality if quality is not None else phone.profile.save_quality
        if codec.name == "jpeg":
            pairs = jpeg_roundtrip_batch(images, quality=q)
            for data, _img in pairs:
                obs.count("codec.bytes_encoded", len(data))
                obs.count("codec.encoded.jpeg")
                obs.observe("codec.encoded_size", len(data))
                obs.count("codec.bytes_decoded", len(data))
        else:
            # Non-JPEG codecs have no fused roundtrip; the batched
            # sensor+ISP still carries the group, encode/decode loop here.
            pairs = []
            for img in images:
                if codec.default_quality is None:
                    data = codec.encode(img)
                else:
                    data = codec.encode(img, quality=q)
                pairs.append((data, decode_any(data)))

    payloads = [
        {"pixels": img.pixels, "encoded_size": np.int64(len(data))}
        for data, img in pairs
    ]
    for _ in units:
        obs.count("fleet.units_executed")
    return payloads


def execute_unit_group_observed(units: Sequence[CaptureUnit]):
    """Worker-side :func:`execute_unit_group` under a local observer.

    Returns ``(payloads, span_dicts, metrics_snapshot)``; see
    :func:`execute_unit_observed` for the merge protocol.
    """
    with obs.observed() as ob:
        payloads = execute_unit_group(units)
    return payloads, ob.tracer.to_dicts(), ob.metrics.snapshot()


def execute_unit_observed(unit: CaptureUnit):
    """Worker-side entry point when the parent is observing.

    Runs :func:`execute_unit` under a fresh, process-local observer and
    returns ``(payload, span_dicts, metrics_snapshot)`` so the spans and
    counters recorded inside the worker survive the process-pool
    boundary; the parent merges them via
    :meth:`~repro.obs.trace.Tracer.absorb` and
    :meth:`~repro.obs.metrics.MetricsRegistry.merge`. The payload is the
    exact object :func:`execute_unit` returns — observation adds
    side-band data, never changes results.
    """
    with obs.observed() as ob:
        payload = execute_unit(unit)
    return payload, ob.tracer.to_dicts(), ob.metrics.snapshot()


def _execute_develop(unit: CaptureUnit) -> Dict[str, np.ndarray]:
    raw = payload_to_raw(unit.raw)
    image = build_isp(str(unit.options["isp"])).process(raw)
    codec_name = unit.options.get("codec")
    if not codec_name:
        return {"pixels": image.pixels, "encoded_size": np.int64(0)}
    codec = get_codec(str(codec_name))
    quality = unit.options.get("quality")
    if codec.default_quality is None:
        data = codec.encode(image)
    else:
        q = int(quality) if quality is not None else codec.default_quality
        data = codec.encode(image, quality=q)
    return {
        "pixels": codec.decode(data).pixels,
        "encoded_size": np.int64(len(data)),
    }
