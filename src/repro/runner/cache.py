"""Content-addressed capture cache: in-memory LRU plus on-disk ``.npz``.

Keys are SHA-256 fingerprints of a canonical byte encoding of everything
that determines a payload — scene/radiance pixels, device profile
dataclasses, seed entropy, ISP/codec options — so two units that would
produce the same bytes share one cache slot regardless of which
experiment (or which process) asked first. Values are flat
``{name: ndarray}`` payloads, which covers every artifact the fleet
executor moves around (decoded pixels, raw mosaics, scalar sizes,
JSON-encoded metadata strings).

The disk layer shards by key prefix (``ab/abcdef....npz``) and writes
atomically (temp file + ``os.replace``), so concurrent runs sharing a
``--cache-dir`` never observe torn files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .. import obs

__all__ = ["fingerprint", "CacheStats", "CaptureCache"]

Payload = Dict[str, np.ndarray]


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------
def _feed(hasher, obj) -> None:
    """Feed one object's canonical encoding into ``hasher``.

    Every branch writes a type tag before its content so that, e.g.,
    the string ``"1"`` and the integer ``1`` can never collide.
    """
    if obj is None:
        hasher.update(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        hasher.update(b"B" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        hasher.update(b"I" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        hasher.update(b"F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        hasher.update(b"S" + repr(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        hasher.update(b"Y" + repr(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        hasher.update(
            b"A" + arr.dtype.str.encode() + repr(arr.shape).encode() + arr.tobytes()
        )
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        hasher.update(b"D" + type(obj).__qualname__.encode())
        for f in dataclasses.fields(obj):
            _feed(hasher, f.name)
            _feed(hasher, getattr(obj, f.name))
    elif isinstance(obj, dict):
        hasher.update(b"M" + repr(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _feed(hasher, key)
            _feed(hasher, obj[key])
    elif isinstance(obj, (list, tuple)):
        hasher.update(b"L" + repr(len(obj)).encode())
        for item in obj:
            _feed(hasher, item)
    elif callable(obj):
        hasher.update(
            b"C"
            + getattr(obj, "__module__", "?").encode()
            + b"."
            + getattr(obj, "__qualname__", repr(obj)).encode()
        )
    else:
        raise TypeError(f"cannot fingerprint object of type {type(obj).__name__!r}")


def fingerprint(obj) -> str:
    """Content-address an object: SHA-256 of its canonical encoding.

    Parameters
    ----------
    obj:
        Any composition of ``None``, bools, ints, floats, strings,
        bytes, numpy arrays, dataclass instances, dicts, lists/tuples,
        and named callables. Encoding is type-tagged and
        layout-insensitive (dict order, array contiguity don't matter).

    Returns
    -------
    A 64-character hex digest; equal digests imply the canonical
    encodings (and therefore the cache-relevant content) are equal.

    Raises
    ------
    TypeError:
        For objects outside the supported composition.
    """
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Per-instance hit/miss/store counters.

    Kept on the cache itself (independent of the global
    :mod:`repro.obs` metrics) so tests and benchmarks can assert cache
    behavior without activating observability.

    Attributes
    ----------
    hits:
        Lookups served from the memory or disk layer.
    misses:
        Lookups that found nothing (including torn disk files).
    stores:
        Payloads written via :meth:`CaptureCache.put`.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        """Zero all three counters."""
        self.hits = self.misses = self.stores = 0


class CaptureCache:
    """Two-level content-addressed store for fleet artifacts.

    Parameters
    ----------
    cache_dir:
        Optional directory for the persistent layer; created eagerly
        (``exist_ok``, so concurrent constructions race safely).
        ``None`` keeps the cache purely in-memory.
    max_memory_items:
        LRU bound on the in-memory layer. Payloads are ~100 KiB each at
        the working 96x96 resolution, so the default bounds memory at
        a few hundred MiB.

    Raises
    ------
    ValueError:
        If ``max_memory_items`` is not positive, or ``cache_dir`` exists
        and is not a directory.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_memory_items: int = 2048,
    ) -> None:
        if max_memory_items < 1:
            raise ValueError("max_memory_items must be positive")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self._ensure_dir(self.cache_dir)
        self.max_memory_items = max_memory_items
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Payload]" = OrderedDict()

    # -- internals ------------------------------------------------------
    @staticmethod
    def _ensure_dir(path: Path) -> None:
        """Create ``path`` as a directory, tolerating concurrent creators.

        ``mkdir(exist_ok=True)`` alone still raises ``FileExistsError``
        when a racing process creates the directory between the internal
        existence check and the ``mkdir`` syscall on some platforms, so
        that error is swallowed iff the path ended up being a directory.
        """
        try:
            path.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            pass
        if not path.is_dir():
            raise ValueError(f"cache path {path} exists and is not a directory")

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.npz"

    @staticmethod
    def _copy(payload: Payload) -> Payload:
        return {name: np.array(value, copy=True) for name, value in payload.items()}

    def _remember(self, key: str, payload: Payload) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_items:
            self._memory.popitem(last=False)

    # -- public API -----------------------------------------------------
    def get(self, key: str) -> Optional[Payload]:
        """Look up a payload by its content-addressed key.

        Parameters
        ----------
        key:
            A :func:`fingerprint` hex digest (see
            :func:`~repro.runner.units.unit_cache_key`).

        Returns
        -------
        A defensive *copy* of the stored ``{name: ndarray}`` payload
        (mutating it cannot corrupt the cache), or ``None`` on a miss.
        Disk-layer hits are promoted into the memory LRU; torn or
        unreadable disk files count as misses, never as errors.
        """
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            obs.count("capture_cache.hit")
            obs.count("capture_cache.memory_hit")
            return self._copy(cached)
        if self.cache_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                try:
                    with obs.span("cache.disk_read"):
                        with np.load(path, allow_pickle=False) as data:
                            payload = {name: data[name] for name in data.files}
                except (OSError, ValueError, zipfile.BadZipFile):
                    # A torn or stale file is a miss, never an error.
                    self.stats.misses += 1
                    obs.count("capture_cache.miss")
                    return None
                self._remember(key, payload)
                self.stats.hits += 1
                obs.count("capture_cache.hit")
                obs.count("capture_cache.disk_hit")
                return self._copy(payload)
        self.stats.misses += 1
        obs.count("capture_cache.miss")
        return None

    def put(self, key: str, payload: Payload) -> None:
        """Store a payload under ``key`` in both layers.

        Parameters
        ----------
        key:
            Content-addressed key the payload will be retrievable under.
        payload:
            Flat ``{name: ndarray}`` mapping; values are normalized with
            ``np.asarray`` and copied, so later mutation of the caller's
            arrays cannot corrupt the cache. The disk write is atomic
            (temp file + ``os.replace``) and shard directories are
            created race-safely, so concurrent runs may share a
            ``cache_dir``.
        """
        normalized = {name: np.asarray(value) for name, value in payload.items()}
        self._remember(key, self._copy(normalized))
        self.stats.stores += 1
        obs.count("capture_cache.store")
        if self.cache_dir is not None:
            path = self._disk_path(key)
            self._ensure_dir(path.parent)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            try:
                with obs.span("cache.disk_write"):
                    with os.fdopen(fd, "wb") as fh:
                        np.savez_compressed(fh, **normalized)
                    os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._disk_path(key).exists()

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer is untouched)."""
        self._memory.clear()
