"""Model graph: sequential container, inverted residual blocks, and the
MicroMobileNet architecture.

MicroMobileNet is a laptop-scale stand-in for MobileNetV2 (Sandler et
al. 2018), preserving the architectural features that matter here:
inverted residual blocks (1x1 expand -> depthwise 3x3 -> 1x1 project,
with a residual skip at stride 1), ReLU6 activations, batch norm
everywhere, a global-average-pool *embedding layer* feeding a dense
classifier head. The embedding is exposed directly because the paper's
embedding-distance stability loss (§9.1) is defined on "the input to the
last fully-connected layer of the model".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..lint.contracts import tensor_contract
from .functional import softmax
from .layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    Layer,
    ReLU,
    ReLU6,
)

__all__ = ["InvertedResidual", "Model", "micro_mobilenet"]


class InvertedResidual(Layer):
    """MobileNetV2's building block: expand, depthwise filter, project.

    With ``stride == 1`` and matching channel counts the block adds a
    residual connection around itself.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expand_ratio: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Deterministic fallback for layers constructed standalone (unit
        # tests, ad-hoc probes). Every real model path threads the rng
        # from micro_mobilenet's seed, so this literal never reaches
        # capture results.
        rng = rng or np.random.default_rng(0)  # lint: disable=SEED001
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        self.sublayers: List[Layer] = [
            Conv2D(in_channels, hidden, kernel=1, pad=0, bias=False, rng=rng),
            BatchNorm2D(hidden),
            ReLU6(),
            DepthwiseConv2D(hidden, kernel=3, stride=stride, bias=False, rng=rng),
            BatchNorm2D(hidden),
            ReLU6(),
            Conv2D(hidden, out_channels, kernel=1, pad=0, bias=False, rng=rng),
            BatchNorm2D(out_channels),
        ]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.sublayers:
            out = layer.forward(out, training)
        if self.use_residual:
            out = out + x
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dx = dy
        for layer in reversed(self.sublayers):
            dx = layer.backward(dx)
        if self.use_residual:
            dx = dx + dy
        return dx

    def zero_grad(self) -> None:
        for layer in self.sublayers:
            layer.zero_grad()

    @property
    def num_params(self) -> int:
        return sum(l.num_params for l in self.sublayers)


def _flatten(layers: Iterable[Layer]) -> List[Layer]:
    flat: List[Layer] = []
    for layer in layers:
        sub = getattr(layer, "sublayers", None)
        if sub is not None:
            flat.extend(_flatten(sub))
        else:
            flat.append(layer)
    return flat


class Model:
    """A sequential model with an exposed embedding tap.

    ``layers[: embedding_index + 1]`` compute the embedding;
    the remaining layers are the classifier head. ``forward`` returns
    ``(logits, embedding)`` and ``backward`` accepts gradients for both,
    which is exactly the interface stability training needs.
    """

    def __init__(self, layers: List[Layer], embedding_index: int) -> None:
        if not 0 <= embedding_index < len(layers) - 1:
            raise ValueError(
                "embedding_index must leave at least one head layer after it"
            )
        self.layers = layers
        self.embedding_index = embedding_index

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, training: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        out = x.astype(np.float32, copy=False)
        embedding = None
        for i, layer in enumerate(self.layers):
            out = layer.forward(out, training)
            if i == self.embedding_index:
                embedding = out
        assert embedding is not None
        return out, embedding

    def backward(
        self, dlogits: np.ndarray, dembedding: Optional[np.ndarray] = None
    ) -> np.ndarray:
        grad = dlogits
        for i in range(len(self.layers) - 1, -1, -1):
            grad = self.layers[i].backward(grad)
            if i == self.embedding_index + 1 and dembedding is not None:
                grad = grad + dembedding
        return grad

    # ------------------------------------------------------------------
    @tensor_contract("(N, ?, ?, ?) float32, _ -> (N, ?) float32")
    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities in inference mode, mini-batched."""
        outputs = []
        for start in range(0, len(x), batch_size):
            logits, _ = self.forward(x[start : start + batch_size], training=False)
            outputs.append(softmax(logits))
        return np.concatenate(outputs, axis=0)

    @tensor_contract("(N, ?, ?, ?) float32, _ -> (N, ?) float32")
    def embed(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Embeddings in inference mode."""
        outputs = []
        for start in range(0, len(x), batch_size):
            _, emb = self.forward(x[start : start + batch_size], training=False)
            outputs.append(emb)
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------
    def trainable_layers(self) -> List[Layer]:
        return [l for l in _flatten(self.layers) if l.params]

    def zero_grad(self) -> None:
        for layer in _flatten(self.layers):
            layer.zero_grad()

    @property
    def num_params(self) -> int:
        return sum(l.num_params for l in _flatten(self.layers))

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters and batch-norm running stats, keyed by path."""
        state: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(_flatten(self.layers)):
            for key, value in layer.params.items():
                state[f"layer{i:03d}.{key}"] = value.copy()
            if isinstance(layer, BatchNorm2D):
                state[f"layer{i:03d}.running_mean"] = layer.running_mean.copy()
                state[f"layer{i:03d}.running_var"] = layer.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        flat = _flatten(self.layers)
        for i, layer in enumerate(flat):
            for key in layer.params:
                full = f"layer{i:03d}.{key}"
                if full not in state:
                    raise KeyError(f"missing parameter {full}")
                if state[full].shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {full}: "
                        f"{state[full].shape} vs {layer.params[key].shape}"
                    )
                layer.params[key] = state[full].astype(np.float32).copy()
            if isinstance(layer, BatchNorm2D):
                layer.running_mean = state[f"layer{i:03d}.running_mean"].copy()
                layer.running_var = state[f"layer{i:03d}.running_var"].copy()

    def copy(self) -> "Model":
        """A deep copy with independent parameters (same architecture)."""
        import copy as _copy

        clone = _copy.deepcopy(self)
        clone.zero_grad()
        return clone


def micro_mobilenet(
    num_classes: int = 8,
    seed: int = 0,
    embed_dim: int = 64,
    extra_embedding_layer: bool = False,
) -> Model:
    """Build the MicroMobileNet classifier.

    Input is ``(N, 3, 32, 32)``. With ``extra_embedding_layer=True`` an
    additional Dense+ReLU is inserted between the pooled features and the
    head — the modification the paper makes to evaluate the
    embedding-distance stability loss.
    """
    rng = np.random.default_rng(seed)
    layers: List[Layer] = [
        Conv2D(3, 16, kernel=3, stride=2, bias=False, rng=rng),  # 32 -> 16
        BatchNorm2D(16),
        ReLU6(),
        InvertedResidual(16, 24, stride=2, expand_ratio=4, rng=rng),  # 16 -> 8
        InvertedResidual(24, 24, stride=1, expand_ratio=4, rng=rng),
        InvertedResidual(24, 32, stride=2, expand_ratio=4, rng=rng),  # 8 -> 4
        InvertedResidual(32, 32, stride=1, expand_ratio=4, rng=rng),
        Conv2D(32, embed_dim, kernel=1, pad=0, bias=False, rng=rng),
        BatchNorm2D(embed_dim),
        ReLU6(),
        GlobalAvgPool(),
    ]
    if extra_embedding_layer:
        layers.append(Dense(embed_dim, embed_dim, rng=rng))
        layers.append(ReLU())
    embedding_index = len(layers) - 1
    layers.append(Dense(embed_dim, num_classes, rng=rng))
    return Model(layers, embedding_index=embedding_index)
