"""Trainable layers with explicit forward/backward passes.

Layers hold their parameters (``params``) and accumulated gradients
(``grads``) as dicts of arrays; forward passes cache whatever backward
needs. Gradients *accumulate* across backward calls until
``zero_grad()`` — stability training (paper §9.1) relies on this, since
its loss backpropagates two related inputs through the same weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .functional import (
    conv2d_backward,
    conv2d_forward,
    depthwise_conv2d_backward,
    depthwise_conv2d_forward,
    global_avg_pool_backward,
    global_avg_pool_forward,
)

__all__ = [
    "Layer",
    "Conv2D",
    "DepthwiseConv2D",
    "BatchNorm2D",
    "ReLU6",
    "ReLU",
    "Dense",
    "GlobalAvgPool",
    "Flatten",
]


class Layer:
    """Base class for trainable layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def _accumulate(self, key: str, grad: np.ndarray) -> None:
        if key not in self.grads:
            self.grads[key] = np.zeros_like(self.params[key])
        self.grads[key] += grad.astype(self.params[key].dtype, copy=False)

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params.values()))


def _he_init(rng: np.random.Generator, shape, fan_in: int) -> np.ndarray:
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, shape).astype(np.float32)


class Conv2D(Layer):
    """Standard 2-D convolution, NCHW, square kernel."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Deterministic fallback for layers constructed standalone (unit
        # tests, ad-hoc probes). Every real model path threads the rng
        # from micro_mobilenet's seed, so this literal never reaches
        # capture results.
        rng = rng or np.random.default_rng(0)  # lint: disable=SEED001
        self.stride = stride
        self.pad = pad if pad is not None else kernel // 2
        fan_in = in_channels * kernel * kernel
        self.params["weight"] = _he_init(
            rng, (out_channels, in_channels, kernel, kernel), fan_in
        )
        if bias:
            self.params["bias"] = np.zeros(out_channels, dtype=np.float32)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y, self._cache = conv2d_forward(
            x, self.params["weight"], self.params.get("bias"), self.stride, self.pad
        )
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dx, dw, db = conv2d_backward(dy, self._cache)
        self._accumulate("weight", dw)
        if "bias" in self.params:
            self._accumulate("bias", db)
        return dx


class DepthwiseConv2D(Layer):
    """Depthwise (per-channel) convolution — MobileNet's workhorse."""

    def __init__(
        self,
        channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Deterministic fallback for layers constructed standalone (unit
        # tests, ad-hoc probes). Every real model path threads the rng
        # from micro_mobilenet's seed, so this literal never reaches
        # capture results.
        rng = rng or np.random.default_rng(0)  # lint: disable=SEED001
        self.stride = stride
        self.pad = pad if pad is not None else kernel // 2
        self.params["weight"] = _he_init(rng, (channels, kernel, kernel), kernel * kernel)
        if bias:
            self.params["bias"] = np.zeros(channels, dtype=np.float32)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y, self._cache = depthwise_conv2d_forward(
            x, self.params["weight"], self.params.get("bias"), self.stride, self.pad
        )
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dx, dw, db = depthwise_conv2d_backward(dy, self._cache)
        self._accumulate("weight", dw)
        if "bias" in self.params:
            self._accumulate("bias", db)
        return dx


class BatchNorm2D(Layer):
    """Batch normalization over (N, H, W) per channel, with running stats."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(channels, dtype=np.float32)
        self.params["beta"] = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, training, x.shape)
        return (
            self.params["gamma"][None, :, None, None] * x_hat
            + self.params["beta"][None, :, None, None]
        )

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std, training, x_shape = self._cache
        n, c, h, w = x_shape
        m = n * h * w
        dgamma = (dy * x_hat).sum(axis=(0, 2, 3))
        dbeta = dy.sum(axis=(0, 2, 3))
        self._accumulate("gamma", dgamma)
        self._accumulate("beta", dbeta)
        gamma = self.params["gamma"][None, :, None, None]
        if not training:
            return dy * gamma * inv_std[None, :, None, None]
        dx_hat = dy * gamma
        term1 = dx_hat
        term2 = dx_hat.mean(axis=(0, 2, 3), keepdims=True)
        term3 = x_hat * (dx_hat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        return inv_std[None, :, None, None] * (term1 - term2 - term3)


class ReLU6(Layer):
    """min(max(x, 0), 6) — MobileNetV2's activation."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = (x > 0) & (x < 6)
        return np.clip(x, 0.0, 6.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._cache


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = x > 0
        return np.maximum(x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._cache


class Dense(Layer):
    """Fully connected layer over (N, F) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Deterministic fallback for layers constructed standalone (unit
        # tests, ad-hoc probes). Every real model path threads the rng
        # from micro_mobilenet's seed, so this literal never reaches
        # capture results.
        rng = rng or np.random.default_rng(0)  # lint: disable=SEED001
        self.params["weight"] = _he_init(rng, (out_features, in_features), in_features)
        if bias:
            self.params["bias"] = np.zeros(out_features, dtype=np.float32)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = x
        y = x @ self.params["weight"].T
        if "bias" in self.params:
            y += self.params["bias"]
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._cache
        self._accumulate("weight", dy.T @ x)
        if "bias" in self.params:
            self._accumulate("bias", dy.sum(axis=0))
        return dy @ self.params["weight"]


class GlobalAvgPool(Layer):
    """(N, C, H, W) -> (N, C)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y, self._cache = global_avg_pool_forward(x)
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return global_avg_pool_backward(dy, self._cache)


class Flatten(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._cache = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._cache)
