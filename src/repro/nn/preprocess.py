"""Model input preprocessing.

One canonical path from any :class:`~repro.imaging.image.ImageBuffer` to
the tensor MicroMobileNet consumes: bilinear resize to the model
resolution, scale to ``[-1, 1]`` (MobileNet's convention), and transpose
to NCHW. Keeping this in exactly one place matters for the reproduction:
the paper's §7 shows instability can enter through *loading* differences,
so everything that is *not* under test must be byte-identical across
devices and experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..imaging.image import ImageBuffer
from ..imaging.ops import bilinear_resize
from ..lint.contracts import tensor_contract

__all__ = ["MODEL_INPUT_SIZE", "to_model_input"]

#: Spatial resolution MicroMobileNet was designed for.
MODEL_INPUT_SIZE = 32


@tensor_contract("_, _ -> (N, 3, S, S) float32")
def to_model_input(
    images: Sequence[ImageBuffer] | ImageBuffer,
    size: int = MODEL_INPUT_SIZE,
) -> np.ndarray:
    """Convert image buffer(s) to a ``(N, 3, size, size)`` float32 tensor.

    Accepts a single buffer or a sequence; always returns a batched
    tensor. Inputs are quantized through uint8 first — the model only
    ever sees what survived an 8-bit image file, as on a real phone.
    """
    if isinstance(images, ImageBuffer):
        images = [images]
    batch: List[np.ndarray] = []
    for buf in images:
        pixels = buf.to_uint8().astype(np.float32) / 255.0
        resized = bilinear_resize(pixels, size, size)
        batch.append(resized.transpose(2, 0, 1))
    stacked = np.stack(batch, axis=0)
    return ((stacked - 0.5) / 0.5).astype(np.float32)
