"""Optimizers operating on a model's trainable layers."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer bound to a fixed set of layers."""

    def __init__(self, layers: List[Layer], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.layers = layers
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def _items(self):
        for li, layer in enumerate(self.layers):
            for key in layer.params:
                grad = layer.grads.get(key)
                if grad is not None:
                    yield (li, key), layer, grad


class SGD(Optimizer):
    """SGD with classical momentum and optional weight decay."""

    def __init__(
        self,
        layers: List[Layer],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(layers, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self) -> None:
        for key, layer, grad in self._items():
            if self.weight_decay and key[1] == "weight":
                grad = grad + self.weight_decay * layer.params[key[1]]
            vel = self._velocity.get(key)
            if vel is None:
                vel = np.zeros_like(grad)
            vel = self.momentum * vel - self.lr * grad
            self._velocity[key] = vel
            layer.params[key[1]] += vel.astype(np.float32)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        layers: List[Layer],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(layers, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for key, layer, grad in self._items():
            if self.weight_decay and key[1] == "weight":
                grad = grad + self.weight_decay * layer.params[key[1]]
            m = self._m.get(key, np.zeros_like(grad))
            v = self._v.get(key, np.zeros_like(grad))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            layer.params[key[1]] -= (self.lr * update).astype(np.float32)
