"""Low-level neural-network primitives (NCHW layout, float32).

Convolutions are expressed as im2col + GEMM so the heavy lifting happens
inside BLAS, per the vectorize-first rule for NumPy ML systems. Depthwise
convolution uses a patch-extraction einsum instead (im2col would shred
its channel-diagonal structure).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "global_avg_pool_forward",
    "global_avg_pool_backward",
    "softmax",
    "log_softmax",
]


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * k * k)`` columns.

    Returns the column matrix and the output spatial size.
    """
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, pad)
    out_w = _out_size(w, kernel, stride, pad)
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv output collapsed: input {h}x{w}, kernel {kernel}, stride {stride}"
        )
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel * kernel
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold column gradients back to the input shape (adjoint of im2col)."""
    n, c, h, w = x_shape
    out_h = _out_size(h, kernel, stride, pad)
    out_w = _out_size(w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols6[:, :, :, :, ky, kx]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, pad: int
):
    """Standard convolution. ``weight`` is ``(out_c, in_c, k, k)``.

    Returns ``(y, cache)``; pass the cache to :func:`conv2d_backward`.
    """
    out_c, in_c, k, _ = weight.shape
    n = x.shape[0]
    cols, (out_h, out_w) = im2col(x, k, stride, pad)
    w_mat = weight.reshape(out_c, -1)
    y = cols @ w_mat.T
    if bias is not None:
        y += bias
    y = y.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)
    cache = (cols, x.shape, weight, stride, pad)
    return np.ascontiguousarray(y), cache


def conv2d_backward(dy: np.ndarray, cache):
    """Gradients of conv2d w.r.t. input, weight, and bias."""
    cols, x_shape, weight, stride, pad = cache
    out_c, _, k, _ = weight.shape
    dy_mat = dy.transpose(0, 2, 3, 1).reshape(-1, out_c)
    dw = (dy_mat.T @ cols).reshape(weight.shape)
    db = dy_mat.sum(axis=0)
    dcols = dy_mat @ weight.reshape(out_c, -1)
    dx = col2im(dcols, x_shape, k, stride, pad)
    return dx, dw, db


def depthwise_conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, pad: int
):
    """Depthwise convolution. ``weight`` is ``(C, k, k)``."""
    c, k, _ = weight.shape
    n, xc, h, w = x.shape
    if xc != c:
        raise ValueError(f"depthwise channel mismatch: input {xc}, weight {c}")
    out_h = _out_size(h, k, stride, pad)
    out_w = _out_size(w, k, stride, pad)
    if pad:
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    else:
        xp = x
    s_n, s_c, s_h, s_w = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, out_h, out_w, k, k),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    y = np.einsum("nchwkl,ckl->nchw", windows, weight, optimize=True)
    if bias is not None:
        y += bias[None, :, None, None]
    cache = (windows, x.shape, weight, stride, pad)
    return y.astype(x.dtype, copy=False), cache


def depthwise_conv2d_backward(dy: np.ndarray, cache):
    """Gradients of depthwise conv w.r.t. input, weight, bias."""
    windows, x_shape, weight, stride, pad = cache
    c, k, _ = weight.shape
    n, _, h, w = x_shape
    dw = np.einsum("nchwkl,nchw->ckl", windows, dy, optimize=True)
    db = dy.sum(axis=(0, 2, 3))

    # dx: scatter dy * weight back over the windows.
    out_h, out_w = dy.shape[2], dy.shape[3]
    dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=dy.dtype)
    contrib = np.einsum("nchw,ckl->nchwkl", dy, weight, optimize=True)
    for ky in range(k):
        y_end = ky + stride * out_h
        for kx in range(k):
            x_end = kx + stride * out_w
            dxp[:, :, ky:y_end:stride, kx:x_end:stride] += contrib[:, :, :, :, ky, kx]
    dx = dxp[:, :, pad : pad + h, pad : pad + w] if pad else dxp
    return dx, dw, db


def global_avg_pool_forward(x: np.ndarray):
    """Mean over the spatial dims: ``(N, C, H, W) -> (N, C)``."""
    y = x.mean(axis=(2, 3))
    return y, x.shape


def global_avg_pool_backward(dy: np.ndarray, x_shape):
    n, c, h, w = x_shape
    return np.broadcast_to(dy[:, :, None, None], x_shape) / (h * w)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
