"""NumPy deep-learning substrate: layers, models, losses, optimizers."""

from .functional import log_softmax, softmax
from .layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    Layer,
    ReLU,
    ReLU6,
)
from .losses import cross_entropy, embedding_stability_loss, kl_stability_loss
from .model import InvertedResidual, Model, micro_mobilenet
from .optim import SGD, Adam, Optimizer
from .preprocess import MODEL_INPUT_SIZE, to_model_input
from .pretrained import (
    PretrainConfig,
    load_pretrained,
    render_training_set,
    train_base_model,
)
from .train import TrainConfig, evaluate_accuracy, fit, iterate_minibatches

__all__ = [
    "Adam",
    "BatchNorm2D",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Flatten",
    "GlobalAvgPool",
    "InvertedResidual",
    "Layer",
    "MODEL_INPUT_SIZE",
    "Model",
    "Optimizer",
    "PretrainConfig",
    "ReLU",
    "ReLU6",
    "SGD",
    "TrainConfig",
    "cross_entropy",
    "embedding_stability_loss",
    "evaluate_accuracy",
    "fit",
    "iterate_minibatches",
    "kl_stability_loss",
    "load_pretrained",
    "log_softmax",
    "micro_mobilenet",
    "render_training_set",
    "softmax",
    "to_model_input",
    "train_base_model",
]
