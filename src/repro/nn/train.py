"""Plain supervised training loop (stability training lives in
:mod:`repro.mitigation.stability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .losses import cross_entropy
from .model import Model
from .optim import Optimizer

__all__ = ["TrainConfig", "fit", "evaluate_accuracy", "iterate_minibatches"]


@dataclass
class TrainConfig:
    """Hyperparameters for plain classification training."""

    epochs: int = 10
    batch_size: int = 64
    shuffle: bool = True
    seed: int = 0
    #: Called after each epoch with (epoch, mean_loss, accuracy-or-None).
    on_epoch_end: Optional[Callable[[int, float, Optional[float]], None]] = None


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
):
    """Yield (x_batch, y_batch); shuffled when an RNG is supplied."""
    n = len(x)
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


def fit(
    model: Model,
    optimizer: Optimizer,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
) -> List[float]:
    """Train ``model`` with cross entropy; returns the per-epoch loss trace."""
    if len(x) != len(y):
        raise ValueError("x and y lengths differ")
    rng = np.random.default_rng(config.seed)
    losses: List[float] = []
    for epoch in range(config.epochs):
        epoch_losses = []
        batch_rng = rng if config.shuffle else None
        for xb, yb in iterate_minibatches(x, y, config.batch_size, batch_rng):
            model.zero_grad()
            logits, _ = model.forward(xb, training=True)
            loss, dlogits = cross_entropy(logits, yb)
            model.backward(dlogits)
            optimizer.step()
            epoch_losses.append(loss)
        mean_loss = float(np.mean(epoch_losses))
        losses.append(mean_loss)
        if config.on_epoch_end is not None:
            val_acc = (
                evaluate_accuracy(model, x_val, y_val)
                if x_val is not None and y_val is not None
                else None
            )
            config.on_epoch_end(epoch, mean_loss, val_acc)
    return losses


def evaluate_accuracy(model: Model, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy in inference mode."""
    proba = model.predict_proba(x)
    return float((proba.argmax(axis=1) == y).mean())
