"""The deterministic "pretrained" base model.

The paper evaluates a MobileNetV2 pretrained on ImageNet — a model whose
training distribution (web photos) differs from its test distribution
(phone photos of a monitor). We reproduce that structure: the base
MicroMobileNet is trained on scenes photographed through a *generic*
camera (not any fleet phone) with photometric augmentation, never on the
evaluation phones themselves. Each fleet phone's photos are then
in-family but individually skewed, which puts a realistic fraction of
them near the decision boundary.

Training is seeded and the resulting weights are cached on disk
(``.cache/repro/`` by default), so every experiment and benchmark shares
one base model, like the paper's single fixed-weight MobileNetV2 (§3.2).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..scenes.dataset import SceneDataset, build_dataset
from .model import Model, micro_mobilenet
from .optim import Adam
from .preprocess import to_model_input
from .train import TrainConfig, fit

__all__ = ["PretrainConfig", "render_training_set", "load_pretrained", "train_base_model"]


@dataclass(frozen=True)
class PretrainConfig:
    """Everything that determines the base model's weights."""

    per_class: int = 44
    scenes_per_object: int = 2
    epochs: int = 26
    batch_size: int = 64
    lr: float = 2.5e-3
    seed: int = 7
    augment_copies: int = 3
    extra_embedding_layer: bool = False

    def cache_key(self) -> str:
        text = (
            f"v3|{self.per_class}|{self.scenes_per_object}|{self.epochs}|"
            f"{self.batch_size}|{self.lr}|{self.seed}|{self.augment_copies}|"
            f"{self.extra_embedding_layer}"
        )
        return hashlib.sha256(text.encode()).hexdigest()[:16]


def _augment(
    x: np.ndarray, rng: np.random.Generator, copies: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Generic photometric augmentation (brightness / noise / shift).

    Deliberately *not* phone-specific: the base model must not have seen
    the capture pipelines it will be evaluated on, mirroring how ImageNet
    pretraining never saw the paper's five phones.
    """
    from scipy import ndimage

    outs = [x]
    for _ in range(copies):
        aug = x.copy()
        # Global and per-channel gain (exposure / white balance drift).
        gains = rng.uniform(0.85, 1.15, (len(x), 1, 1, 1)).astype(np.float32)
        channel_gains = rng.uniform(0.92, 1.08, (len(x), 3, 1, 1)).astype(np.float32)
        aug = aug * gains * channel_gains
        # Mild defocus (camera-like softness, applied per batch for speed).
        sigma = float(rng.uniform(0.0, 0.8))
        if sigma > 0.1:
            aug = ndimage.gaussian_filter1d(aug, sigma, axis=2, mode="nearest")
            aug = ndimage.gaussian_filter1d(aug, sigma, axis=3, mode="nearest")
        aug = aug + rng.normal(0.0, 0.05, aug.shape).astype(np.float32)
        shift = rng.integers(-2, 3, size=2)
        aug = np.roll(aug, (int(shift[0]), int(shift[1])), axis=(2, 3))
        outs.append(np.clip(aug, -1.0, 1.0).astype(np.float32))
    factor = copies + 1
    return np.concatenate(outs, axis=0), factor


def render_training_set(
    config: PretrainConfig, dataset: Optional[SceneDataset] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Render the base model's training tensors (pre-augmentation).

    Every scene is photographed through a *generic* camera (a sensor and
    neutral ISP that belong to no phone in either fleet) before being
    tensorized. This mirrors ImageNet pretraining: the paper's base
    MobileNetV2 learned from camera photographs in general, so photos
    from any particular phone are in-family but individually skewed —
    which is what confines prediction flips to genuinely borderline
    inputs rather than making every capture out-of-distribution.
    """
    from ..devices.phone import Phone
    from ..devices.profiles import DeviceProfile, _sensor
    from ..codecs.registry import decode_any
    from ..scenes.screen import Screen

    ds = dataset or build_dataset(
        per_class=config.per_class,
        scenes_per_object=config.scenes_per_object,
        include_distractors=True,
        seed=config.seed,
    )
    generic = DeviceProfile(
        name="generic_pretrain_camera",
        model_code="N/A",
        sensor=_sensor(
            sensitivity=(0.57, 1.0, 0.63),
            exposure=0.85,
            full_well=25000,
            read_noise=0.002,
            vignetting=0.08,
            blur=0.6,
            chroma_ab=0.001,
            seed=99,
        ),
        isp="imagemagick",
        save_format="jpeg",
        save_quality=88,
    )
    camera = Phone(generic)
    screen = Screen(seed=config.seed)
    rng = np.random.default_rng(config.seed + 2)
    images = []
    for item in ds:
        radiance = screen.display(item.scene.render(96, 96))
        images.append(decode_any(camera.photograph(radiance, rng)))
    x = to_model_input(images)
    y = ds.labels()
    return x, y


def train_base_model(
    config: PretrainConfig, verbose: bool = False
) -> Model:
    """Train the base model from scratch (no cache)."""
    x, y = render_training_set(config)
    rng = np.random.default_rng(config.seed + 1)
    x_aug, factor = _augment(x, rng, config.augment_copies)
    y_aug = np.tile(y, factor)

    model = micro_mobilenet(
        num_classes=8,
        seed=config.seed,
        extra_embedding_layer=config.extra_embedding_layer,
    )
    optimizer = Adam(model.trainable_layers(), lr=config.lr)

    def report(epoch, loss, _acc):  # pragma: no cover - logging only
        if verbose:
            print(f"  epoch {epoch + 1}/{config.epochs}: loss={loss:.4f}")

    fit(
        model,
        optimizer,
        x_aug,
        y_aug,
        TrainConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            seed=config.seed,
            on_epoch_end=report,
        ),
    )
    return model


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".cache" / "repro"


def load_pretrained(
    config: Optional[PretrainConfig] = None, verbose: bool = False
) -> Model:
    """Load the cached base model, training and caching it if absent."""
    config = config or PretrainConfig()
    cache_dir = _cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"base_{config.cache_key()}.npz"

    model = micro_mobilenet(
        num_classes=8,
        seed=config.seed,
        extra_embedding_layer=config.extra_embedding_layer,
    )
    if path.exists():
        with np.load(path) as data:
            model.load_state_dict({k: data[k] for k in data.files})
        return model

    trained = train_base_model(config, verbose=verbose)
    np.savez_compressed(path, **trained.state_dict())
    return trained
