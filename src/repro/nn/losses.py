"""Loss functions, each returning ``(value, gradient)`` pairs.

Implements the paper's §9.1 objective

    L(x, x', theta) = L0(x, theta) + alpha * Ls(x, x', theta)

where ``L0`` is standard cross entropy on the clean image and ``Ls`` is
one of the two stability losses:

* relative entropy (KL divergence) between the prediction on the clean
  image and the prediction on its noisy counterpart, and
* Euclidean distance between the two images' embeddings.

Each function returns the scalar loss averaged over the batch and the
gradient(s) with respect to its *logit/embedding* inputs, ready to feed
``Model.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .functional import log_softmax, softmax

__all__ = [
    "cross_entropy",
    "kl_stability_loss",
    "embedding_stability_loss",
]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Softmax cross entropy; labels are integer class ids.

    Returns ``(mean_loss, dlogits)``.
    """
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
    log_p = log_softmax(logits)
    loss = -float(log_p[np.arange(n), labels].mean())
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def kl_stability_loss(
    logits_clean: np.ndarray, logits_noisy: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """KL(P(.|x) || P(.|x')) averaged over the batch.

    Returns ``(loss, dlogits_clean, dlogits_noisy)``. Both inputs receive
    gradient: the clean branch because P(.|x) is itself a function of
    theta (this distinguishes stability training from distillation with a
    frozen teacher).
    """
    if logits_clean.shape != logits_noisy.shape:
        raise ValueError("logit shapes must match")
    n = logits_clean.shape[0]
    p = softmax(logits_clean)
    log_p = log_softmax(logits_clean)
    log_q = log_softmax(logits_noisy)
    loss = float((p * (log_p - log_q)).sum(axis=1).mean())

    # d/dz_clean [ sum_j p_j (log p_j - log q_j) ] with p = softmax(z_clean)
    # reduces to p * (a - sum_j p_j a_j) for a = log p - log q (the
    # d(p log p) terms cancel through the softmax Jacobian).
    a = log_p - log_q
    dclean = p * (a - (p * a).sum(axis=1, keepdims=True))

    # d/dz_noisy [ -sum p log q ] = q * sum_j p_j - p = q - p.
    q = softmax(logits_noisy)
    dnoisy = q - p

    return loss, dclean / n, dnoisy / n


def embedding_stability_loss(
    embed_clean: np.ndarray, embed_noisy: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Mean Euclidean distance between paired embeddings.

    The paper uses ``||f(x) - f(x')||_2`` (not squared); the gradient is
    the normalized difference vector. Returns
    ``(loss, dembed_clean, dembed_noisy)``.
    """
    if embed_clean.shape != embed_noisy.shape:
        raise ValueError("embedding shapes must match")
    n = embed_clean.shape[0]
    diff = embed_clean - embed_noisy
    norms = np.sqrt((diff**2).sum(axis=1, keepdims=True))
    loss = float(norms.mean())
    safe = np.maximum(norms, 1e-8)
    dclean = diff / safe / n
    return loss, dclean, -dclean
