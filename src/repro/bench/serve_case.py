"""Serving macro benchmark: sustained captures/sec and tail latency.

``python -m repro bench --serve`` stands up an in-process
:class:`~repro.serve.IngestService` (untrained seed-1 model, so the run
is hermetic — no pretraining step in the timed path), drives it with the
seeded open-loop schedule ``repro.loadgen`` would send over the wire,
drains, and reports sustained captures/sec plus p50/p95/p99 latency.
The request mix is fully determined by ``(seed, rate, count)``, so
successive ``BENCH_serve.json`` files are comparable run over run and
PR over PR — only the timing columns may differ.

The offered rate is held *below* the single-process capture capacity on
purpose: tail latency is only meaningful for a stable queue. Capacity
itself is measured separately by the ``saturation`` phase, which submits
the same mix unpaced (infinite offered rate) and reports pure
completion throughput.
"""

from __future__ import annotations

import asyncio
from typing import Dict

from ..loadgen import build_schedule, drive_inproc
from ..serve import IngestService, ServeConfig

__all__ = ["run_serve_bench"]

#: Fixed benchmark operating point (full / --quick).
RATE_PER_S = 40.0
COUNT = 200
QUICK_COUNT = 40
SATURATION_COUNT = 120
QUICK_SATURATION_COUNT = 30


def _service(seed: int, workers: int) -> IngestService:
    return IngestService(
        ServeConfig(
            fleet_size=16,
            scenes=4,
            seed=seed,
            queue_capacity=4096,  # sized so the paced phase never sheds
            batch_max=64,
            batch_window_s=0.02,
            request_timeout_s=120.0,
            workers=workers,
            window_s=0.0,  # windows roll at drain; no mid-run timer noise
            model="untrained",
        )
    )


async def _drive(service: IngestService, count: int, rate: float, paced: bool) -> Dict:
    await service.start()
    schedule = build_schedule(
        count=count,
        rate=rate,
        devices=service.config.fleet_size,
        scenes=service.config.scenes,
        seed=service.config.seed,
        repeats=2,
    )
    report = await drive_inproc(service, schedule, paced=paced)
    accounting = await service.drain()
    report.pop("responses")
    report["accounting"] = accounting
    return report


def run_serve_bench(quick: bool = False, seed: int = 0, workers: int = 0) -> Dict:
    """Run both serving phases; returns the JSON-serializable report."""
    count = QUICK_COUNT if quick else COUNT
    sat_count = QUICK_SATURATION_COUNT if quick else SATURATION_COUNT
    paced = asyncio.run(_drive(_service(seed, workers), count, RATE_PER_S, True))
    saturation = asyncio.run(
        _drive(_service(seed, workers), sat_count, RATE_PER_S, False)
    )
    return {
        "bench": "serve",
        "quick": quick,
        "seed": seed,
        "workers": workers,
        "model": "untrained",
        "offered_rate_per_s": RATE_PER_S,
        "paced": paced,
        "saturation": saturation,
    }


def format_serve_report(report: Dict) -> str:
    """Render the serving report as a short text block."""
    lines = []
    for phase in ("paced", "saturation"):
        entry = report[phase]
        latency = entry["latency"]
        lines.append(
            f"{phase}: {entry['captures_per_sec']:.1f} captures/s "
            f"({entry['answered']}/{entry['planned']} answered in "
            f"{entry['elapsed_s']:.2f}s)"
        )
        if latency.get("count"):
            lines.append(
                "  latency p50/p95/p99: "
                f"{latency['p50_ms']:.1f} / {latency['p95_ms']:.1f} / "
                f"{latency['p99_ms']:.1f} ms"
            )
        accounting = entry["accounting"]
        lines.append(
            f"  accounting: accepted={accounting['accepted']} "
            f"completed={accounting['completed']} shed={accounting['shed']} "
            f"balanced={accounting['balanced']}"
        )
    return "\n".join(lines)
