"""Benchmark case definitions.

Each case packages a deterministic input builder (seeded RNG, no wall
clock) and a zero-argument callable to time. ``dispatched=True`` marks
cases whose hot path flows through :mod:`repro.kernels` — the runner
times those once per backend and reports the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass(frozen=True)
class BenchCase:
    name: str
    prepare: Callable[[], Callable[[], object]]
    items: int
    item_unit: str
    nbytes: int
    dispatched: bool = False


def _smooth_image(rng: np.random.Generator, size: int) -> np.ndarray:
    """A photograph-like RGB uint8 test image: smooth gradients + noise.

    Pure noise is the worst case for entropy coding (no zero runs); box-
    blurred noise has JPEG-typical AC sparsity, so throughput numbers
    reflect realistic symbol streams.
    """
    rgb = rng.random((size, size, 3))
    kernel = np.ones(8) / 8.0
    for axis in (0, 1):
        rgb = np.apply_along_axis(
            lambda v: np.convolve(v, kernel, mode="same"), axis, rgb
        )
    rgb = rgb + 0.1 * rng.random((size, size, 3))
    rgb -= rgb.min()
    rgb /= max(rgb.max(), 1e-9)
    return (rgb * 255.0).astype(np.uint8)


def build_cases(quick: bool = False, seed: int = 0) -> List[BenchCase]:
    """The benchmark suite; ``quick`` shrinks inputs for CI smoke runs."""
    size = 128 if quick else 512
    pixels = size * size
    cases: List[BenchCase] = []

    # -- macro: JPEG encode/decode of a capture-sized image ------------
    def prep_jpeg_encode():
        from ..codecs.jpeg import encode_jpeg
        from ..imaging.image import ImageBuffer

        image = ImageBuffer.from_uint8(_smooth_image(np.random.default_rng(seed), size))
        return lambda: encode_jpeg(image, quality=85)

    cases.append(
        BenchCase(
            name=f"jpeg_encode_{size}",
            prepare=prep_jpeg_encode,
            items=pixels,
            item_unit="px",
            nbytes=pixels * 3,
            dispatched=True,
        )
    )

    def prep_jpeg_decode():
        from ..codecs.jpeg import decode_jpeg, encode_jpeg
        from ..imaging.image import ImageBuffer

        image = ImageBuffer.from_uint8(_smooth_image(np.random.default_rng(seed), size))
        data = encode_jpeg(image, quality=85)
        return lambda: decode_jpeg(data)

    cases.append(
        BenchCase(
            name=f"jpeg_decode_{size}",
            prepare=prep_jpeg_decode,
            items=pixels,
            item_unit="px",
            nbytes=pixels * 3,
            dispatched=True,
        )
    )

    # -- micro: entropy kernels in isolation ---------------------------
    n_units = (size // 8) * (size // 8)

    def _scan_inputs():
        from ..codecs.huffman import STD_AC_LUMA, STD_DC_LUMA
        from ..codecs.jpeg import _plane_to_quantized_blocks, quality_scaled_tables
        from .. import kernels

        rng = np.random.default_rng(seed)
        plane = _smooth_image(rng, size)[..., 0].astype(np.float64)
        blocks = _plane_to_quantized_blocks(plane, quality_scaled_tables(85)[0])
        comp_of_unit, block_of_unit = kernels.scan_layout(
            size // 8, size // 8, ((1, 1),)
        )
        return blocks, comp_of_unit, block_of_unit, (STD_DC_LUMA,), (STD_AC_LUMA,)

    def prep_entropy_encode():
        from .. import kernels

        blocks, comp, block, dc, ac = _scan_inputs()
        return lambda: kernels.encode_jpeg_scan([blocks], comp, block, dc, ac)

    cases.append(
        BenchCase(
            name="entropy_encode",
            prepare=prep_entropy_encode,
            items=n_units,
            item_unit="block",
            nbytes=n_units * 64 * 8,
            dispatched=True,
        )
    )

    def prep_entropy_decode():
        from ..codecs.bitio import BitReader
        from .. import kernels

        blocks, comp, block, dc, ac = _scan_inputs()
        data = kernels.encode_jpeg_scan([blocks], comp, block, dc, ac)

        def run():
            reader = BitReader(data, unstuff_ff=True)
            return kernels.decode_jpeg_scan(
                reader, comp, block, dc, ac, [blocks.shape[0]]
            )

        return run

    cases.append(
        BenchCase(
            name="entropy_decode",
            prepare=prep_entropy_decode,
            items=n_units,
            item_unit="block",
            nbytes=n_units * 64 * 8,
            dispatched=True,
        )
    )

    def prep_png_filter():
        from .. import kernels

        raw = _smooth_image(np.random.default_rng(seed), size).reshape(size, size * 3)
        return lambda: kernels.png_filter_scanlines(raw)

    cases.append(
        BenchCase(
            name="png_filter",
            prepare=prep_png_filter,
            items=size,
            item_unit="row",
            nbytes=pixels * 3,
            dispatched=True,
        )
    )

    # -- micro: backend-independent pipeline stages --------------------
    def prep_dct():
        from ..codecs.dct import block_dct, blockify

        plane = _smooth_image(np.random.default_rng(seed), size)[..., 0]
        blocks = blockify(plane.astype(np.float64) - 128.0, 8)
        return lambda: block_dct(blocks)

    cases.append(
        BenchCase(
            name="dct",
            prepare=prep_dct,
            items=n_units,
            item_unit="block",
            nbytes=pixels * 8,
        )
    )

    def prep_isp():
        from ..imaging.image import RawImage
        from ..isp.profiles import build_isp

        rng = np.random.default_rng(seed)
        mosaic = (rng.random((size, size), dtype=np.float32) * 0.8) + 0.1
        raw = RawImage(mosaic=mosaic)
        isp = build_isp("samsung_s10", out_height=96, out_width=96)
        return lambda: isp.process(raw)

    cases.append(
        BenchCase(
            name="isp_samsung_s10",
            prepare=prep_isp,
            items=pixels,
            item_unit="px",
            nbytes=pixels * 4,
        )
    )

    def prep_conv():
        from ..nn.functional import conv2d_forward

        rng = np.random.default_rng(seed)
        batch = 2 if quick else 8
        x = rng.standard_normal((batch, 3, 32, 32))
        weight = rng.standard_normal((16, 3, 3, 3))
        bias = rng.standard_normal(16)
        return lambda: conv2d_forward(x, weight, bias, stride=1, pad=1)

    conv_batch = 2 if quick else 8
    cases.append(
        BenchCase(
            name="conv_forward",
            prepare=prep_conv,
            items=conv_batch,
            item_unit="image",
            nbytes=conv_batch * 3 * 32 * 32 * 8,
        )
    )

    # -- macro: raw capture -> ISP -> JPEG, the paper's device path ----
    def prep_capture():
        from ..codecs.jpeg import encode_jpeg
        from ..imaging.image import RawImage
        from ..isp.profiles import build_isp

        rng = np.random.default_rng(seed)
        mosaic = (rng.random((size, size), dtype=np.float32) * 0.8) + 0.1
        raw = RawImage(mosaic=mosaic)
        isp = build_isp("samsung_s10", out_height=96, out_width=96)
        return lambda: encode_jpeg(isp.process(raw), quality=85)

    cases.append(
        BenchCase(
            name="capture_pipeline",
            prepare=prep_capture,
            items=pixels,
            item_unit="px",
            nbytes=pixels * 4,
            dispatched=True,
        )
    )

    return cases
