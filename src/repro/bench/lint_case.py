"""Lint macro benchmark: whole-program analysis, cold vs warm cache.

``python -m repro bench --lint`` runs the full lint gate (all module
and whole-program rules) over the shipped ``src/repro`` tree twice per
timed sample: once *cold* into a fresh summary-cache directory and once
*warm* against the cache the cold run just primed. The report pins the
two wall times side by side, so ``BENCH_lint.json`` tracks both the
raw analysis cost and how much of it the sha-keyed
:class:`~repro.lint.callgraph.SummaryCache` recovers.

The timed work is deterministic — the lint target is the package's own
source, the rule set is fixed, and the report carries measurements plus
structural facts (files, nodes, edges, hit counts) but never
timestamps — so successive files differ only in the seconds columns.
The run also self-checks the cache contract: warm findings must equal
cold findings and the warm run must be served entirely from cache.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict

from ..lint import lint_paths

__all__ = ["run_lint_bench", "format_lint_report"]

#: The benchmark target is the shipped package itself.
PACKAGE_ROOT = Path(__file__).resolve().parents[1]

REPEATS = 3
QUICK_REPEATS = 1


def _lint_once(cache_dir: Path) -> Dict:
    started = time.perf_counter()
    report = lint_paths(
        [PACKAGE_ROOT], root=PACKAGE_ROOT, cache_dir=cache_dir
    )
    elapsed = time.perf_counter() - started
    graph = dict(report.stats.get("callgraph", {}))
    return {
        "wall_s": elapsed,
        "files": report.files,
        "findings": [f.render() for f in report.findings],
        "suppressed": report.suppressed,
        "callgraph": graph,
    }


def run_lint_bench(quick: bool = False, repeats: int = 0) -> Dict:
    """Run the cold/warm lint pair; returns the JSON-serializable report."""
    repeats = repeats or (QUICK_REPEATS if quick else REPEATS)
    best_cold: Dict = {}
    best_warm: Dict = {}
    for _ in range(repeats):
        workdir = Path(tempfile.mkdtemp(prefix="repro-bench-lint-"))
        try:
            cold = _lint_once(workdir)
            warm = _lint_once(workdir)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if warm["findings"] != cold["findings"]:
            raise RuntimeError("summary cache changed the findings")
        graph = warm["callgraph"]
        if graph.get("cache_misses"):
            raise RuntimeError(f"warm lint run missed the cache: {graph}")
        if not best_cold or cold["wall_s"] < best_cold["wall_s"]:
            best_cold = cold
        if not best_warm or warm["wall_s"] < best_warm["wall_s"]:
            best_warm = warm

    for entry in (best_cold, best_warm):
        entry["wall_s"] = round(entry["wall_s"], 4)
    cold_s = best_cold["wall_s"]
    warm_s = best_warm["wall_s"]
    return {
        "bench": "lint",
        "quick": quick,
        "repeats": repeats,
        "target": "src/repro",
        "cold": best_cold,
        "warm": best_warm,
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2) if warm_s > 0 else None,
    }


def format_lint_report(report: Dict) -> str:
    """Render the lint bench report as a short text block."""
    lines = []
    for phase in ("cold", "warm"):
        entry = report[phase]
        graph = entry["callgraph"]
        lines.append(
            f"{phase}: {entry['wall_s'] * 1e3:.0f} ms over {entry['files']} "
            f"files ({len(entry['findings'])} finding(s), "
            f"{entry['suppressed']} suppressed)"
        )
        lines.append(
            f"  callgraph: {graph.get('nodes', 0)} nodes / "
            f"{graph.get('edges', 0)} edges, cache "
            f"{graph.get('cache_hits', 0)} hit(s) / "
            f"{graph.get('cache_misses', 0)} miss(es)"
        )
    speedup = report.get("speedup_warm_vs_cold")
    if speedup:
        lines.append(f"warm-vs-cold speedup: {speedup:.2f}x")
    return "\n".join(lines)
