"""End-to-end capture-path macro benchmark: fused batched vs per-capture.

``python -m repro bench --e2e`` measures fleet throughput (captures/s)
for the full sensor -> ISP -> encode -> decode path on the macro case the
fleet studies run: every phone in the capture fleet photographing a set
of displayed scenes several times each. Two executors resolve the *same*
unit list:

* **per_capture** — ``FleetExecutor(batched=False)``, the legacy path:
  one ``execute_unit`` per capture, including a full parse-and-decode of
  the encoded file;
* **fused** — ``FleetExecutor(batched=True)`` (the default), which
  groups the repeats of each (phone, scene) pair into one vectorized
  ``execute_unit_group`` pass.

Both passes run serially on a cold capture cache (no cache attached at
all) with the model out of the loop, so the ratio isolates the capture
path itself. A warm-up pass outside the clock populates the per-process
phone cache and the kernel LUTs for both arms alike.

The report also carries ``identity_ok``: a byte-level comparison of
every payload between the two arms. The speedup claim is only meaningful
because the fused path is bit-identical — a fast-but-different batch
path would be a correctness bug, not an optimization (see
``tests/runner/test_batch_invariance.py``).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .. import kernels
from ..devices.profiles import capture_fleet
from ..runner.executor import FleetExecutor
from ..runner.seeds import unit_entropy
from ..runner.units import CaptureUnit
from . import _time_once

__all__ = ["run_e2e_bench", "format_e2e_report"]


def _synthetic_scenes(count: int, size: int, seed: int) -> List[np.ndarray]:
    """Smooth seeded radiance fields, one per displayed scene."""
    from scipy import ndimage

    scenes = []
    for index in range(count):
        rng = np.random.default_rng((seed, index))
        field = rng.uniform(0.05, 0.95, size=(size, size, 3)).astype(np.float32)
        field = ndimage.gaussian_filter(field, sigma=(size / 24, size / 24, 0))
        scenes.append(np.ascontiguousarray(field, dtype=np.float32))
    return scenes


def _build_units(
    scenes: List[np.ndarray], repeats: int, seed: int
) -> List[CaptureUnit]:
    units = []
    for profile in capture_fleet():
        for scene_id, radiance in enumerate(scenes):
            for repeat in range(repeats):
                units.append(
                    CaptureUnit(
                        kind="photograph",
                        profile=profile,
                        radiance=radiance,
                        entropy=unit_entropy(
                            seed, profile.name, f"bench_scene_{scene_id}", repeat
                        ),
                    )
                )
    return units


def _payloads_identical(a: List[Dict], b: List[Dict]) -> bool:
    if len(a) != len(b):
        return False
    for pa, pb in zip(a, b):
        if pa.keys() != pb.keys():
            return False
        for key in pa:
            va, vb = np.asarray(pa[key]), np.asarray(pb[key])
            if va.dtype != vb.dtype or va.shape != vb.shape:
                return False
            if va.tobytes() != vb.tobytes():
                return False
    return True


def run_e2e_bench(quick: bool = False, repeats: int = 1, seed: int = 0) -> Dict:
    """Run the macro benchmark; returns the JSON-serializable report."""
    scene_count, capture_repeats, size = (2, 4, 96) if quick else (4, 8, 160)
    scenes = _synthetic_scenes(scene_count, size, seed)
    units = _build_units(scenes, capture_repeats, seed)

    per_capture = FleetExecutor(workers=0, batched=False)
    fused = FleetExecutor(workers=0, batched=True)

    # Warm-up outside the clock: one scene's worth through both arms
    # (phone construction, kernel LUTs, scipy imports).
    warm = [u for u in units if u.radiance is scenes[0]][: len(capture_fleet())]
    per_capture.run(warm)
    fused.run(warm)

    baseline_payloads = per_capture.run(units)
    fused_payloads = fused.run(units)
    identity_ok = _payloads_identical(baseline_payloads, fused_payloads)

    baseline_s = _time_once(lambda: per_capture.run(units), repeats)
    fused_s = _time_once(lambda: fused.run(units), repeats)

    def arm(seconds: float) -> Dict:
        return {
            "seconds": seconds,
            "captures_per_s": len(units) / seconds if seconds > 0 else None,
            "ms_per_capture": 1e3 * seconds / len(units),
        }

    return {
        "quick": quick,
        "seed": seed,
        "repeats": repeats,
        "backend": kernels.current_backend(),
        "units": len(units),
        "phones": len(capture_fleet()),
        "scenes": scene_count,
        "repeats_per_scene": capture_repeats,
        "radiance_hw": [size, size],
        "per_capture": arm(baseline_s),
        "fused": arm(fused_s),
        "speedup_fused_vs_per_capture": (
            baseline_s / fused_s if fused_s > 0 else None
        ),
        "identity_ok": identity_ok,
    }


def format_e2e_report(report: Dict) -> str:
    """Render the e2e report as aligned text lines."""
    lines = [
        f"e2e capture path ({report['units']} units: {report['phones']} phones "
        f"x {report['scenes']} scenes x {report['repeats_per_scene']} repeats, "
        f"{report['radiance_hw'][0]}x{report['radiance_hw'][1]} radiance, "
        f"backend {report['backend']})",
    ]
    for name in ("per_capture", "fused"):
        arm = report[name]
        lines.append(
            f"  {name:12s} {arm['seconds'] * 1e3:9.1f} ms  "
            f"{arm['captures_per_s']:8.1f} captures/s  "
            f"{arm['ms_per_capture']:6.2f} ms/capture"
        )
    speedup = report["speedup_fused_vs_per_capture"]
    lines.append(f"  speedup      {speedup:.2f}x fused vs per-capture")
    lines.append(
        "  identity     "
        + ("byte-identical payloads" if report["identity_ok"] else "MISMATCH")
    )
    return "\n".join(lines)
