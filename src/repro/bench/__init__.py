"""Deterministic micro/macro benchmarks for the kernel dispatch layer.

``python -m repro bench`` runs every case in :mod:`repro.bench.cases`
and writes a JSON report (default ``BENCH_kernels.json``). Kernel-
dispatched cases run under **both** ``repro.kernels`` backends and
report the fast-vs-reference speedup; backend-independent cases (DCT,
ISP, conv) run once under the key ``"default"``.

Timing uses ``time.perf_counter`` (min over ``--repeats`` runs — the
standard way to suppress scheduler noise). The *timed work* is fully
deterministic: inputs come from seeded generators and the report
contains measurements only, never wall-clock timestamps, so two runs
differ only in the seconds columns.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from .. import kernels
from .cases import BenchCase, build_cases

__all__ = ["BenchCase", "build_cases", "run_bench", "format_report", "write_report"]


def _time_once(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return float(best)


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    only: Optional[List[str]] = None,
    seed: int = 0,
) -> Dict:
    """Run the benchmark suite; returns the JSON-serializable report."""
    cases = build_cases(quick=quick, seed=seed)
    if only:
        unknown = sorted(set(only) - {c.name for c in cases})
        if unknown:
            known = ", ".join(c.name for c in cases)
            raise ValueError(f"unknown bench case(s) {unknown}; known: {known}")
        cases = [c for c in cases if c.name in only]

    report: Dict = {"quick": quick, "repeats": repeats, "cases": {}}
    for case in cases:
        fn = case.prepare()
        entry: Dict = {
            "items": case.items,
            "item_unit": case.item_unit,
            "bytes": case.nbytes,
            "backends": {},
        }
        backends = kernels.BACKENDS if case.dispatched else ("default",)
        for backend in backends:
            if case.dispatched:
                with kernels.use_backend(backend):
                    fn()  # warm caches (LUTs, code arrays) outside the clock
                    seconds = _time_once(fn, repeats)
            else:
                fn()
                seconds = _time_once(fn, repeats)
            entry["backends"][backend] = {
                "seconds": seconds,
                "ops_per_s": case.items / seconds if seconds > 0 else None,
                "mb_per_s": (
                    case.nbytes / seconds / 1e6 if seconds > 0 else None
                ),
            }
        if case.dispatched:
            ref = entry["backends"]["reference"]["seconds"]
            fst = entry["backends"]["fast"]["seconds"]
            entry["speedup_fast_vs_reference"] = ref / fst if fst > 0 else None
        report["cases"][case.name] = entry
    return report


def format_report(report: Dict) -> str:
    """Render the report as an aligned text table."""
    rows = []
    for name, entry in report["cases"].items():
        for backend, stats in entry["backends"].items():
            rows.append(
                [
                    name,
                    backend,
                    f"{stats['seconds'] * 1e3:.2f} ms",
                    f"{stats['ops_per_s']:,.0f} {entry['item_unit']}/s",
                    f"{stats['mb_per_s']:.1f} MB/s",
                    (
                        f"{entry['speedup_fast_vs_reference']:.1f}x"
                        if backend == "fast"
                        and entry.get("speedup_fast_vs_reference")
                        else ""
                    ),
                ]
            )
    headers = ["case", "backend", "time", "throughput", "bandwidth", "speedup"]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
