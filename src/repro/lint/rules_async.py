"""ASY001-ASY003: async-safety analysis for the serving path.

The streaming service (``serve/``) and its load generator (``loadgen/``)
run a single event loop; one synchronous stall anywhere under an
``async def`` freezes every in-flight request. The per-module rules
cannot see this — the blocking call usually sits several frames below
the coroutine, in perfectly reasonable synchronous code. These passes
walk the call graph instead:

* **ASY001** — a blocking primitive (``time.sleep``, sync file/socket
  IO, ``Future.result()``, ``numpy`` IO) or a transitively-blocking
  project function is reachable from an ``async def`` without an
  executor shim (``run_in_executor`` / ``to_thread``). The finding
  message carries the sync call chain down to the primitive.
* **ASY002** — a lock/semaphore is held across an ``await``: every
  other handler queues behind the critical section, and a slow peer
  turns into whole-service head-of-line blocking.
* **ASY003** — fire-and-forget ``create_task`` / ``ensure_future``:
  the loop keeps only a weak reference, so the task can be garbage
  collected mid-flight and its exception is silently dropped.
"""

from __future__ import annotations

from typing import Iterator

from .callgraph import Program
from .findings import Finding
from .registry import ProgramRule, register

__all__ = ["NoBlockingInAsync", "NoLockAcrossAwait", "NoBareTask"]


@register
class NoBlockingInAsync(ProgramRule):
    """ASY001: nothing reachable from a coroutine may block the loop."""

    name = "ASY001"
    summary = (
        "no blocking calls (time.sleep, sync IO, Future.result, "
        "transitively blocking functions) reachable inside async def "
        "without a run_in_executor/to_thread shim"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for key in sorted(program.functions):
            fn = program.functions[key]
            if not fn.is_async:
                continue
            for fact in fn.blocking:
                if fact.shielded:
                    continue
                yield self.program_finding(
                    fn,
                    fact.line,
                    fact.col,
                    f"blocking call {fact.what} inside async def "
                    f"{fn.qual}; the event loop stalls until it returns "
                    "— await an async equivalent or wrap it in "
                    "loop.run_in_executor(...)",
                )
            for site, callee in program.callees(key):
                if callee is None or site.shielded or site.awaited:
                    continue
                target = program.functions[callee]
                if target.is_async:
                    continue
                chain = program.blocking_chain(callee)
                if chain is None:
                    continue
                yield self.program_finding(
                    fn,
                    site.line,
                    site.col,
                    f"call to {site.raw}() inside async def {fn.qual} "
                    "blocks the event loop: "
                    + " -> ".join((fn.display,) + chain)
                    + "; move it behind loop.run_in_executor(...)",
                )


@register
class NoLockAcrossAwait(ProgramRule):
    """ASY002: no lock/semaphore held across an await point."""

    name = "ASY002"
    summary = (
        "no locks/semaphores held across await in async code; awaits "
        "inside the critical section serialize every handler"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for key in sorted(program.functions):
            fn = program.functions[key]
            for fact in fn.lock_awaits:
                yield self.program_finding(
                    fn,
                    fact.line,
                    fact.col,
                    f"{fact.what}: lock held across an await in "
                    f"{fn.qual}; every other task queues behind this "
                    "critical section while the awaited IO is in flight "
                    "— keep awaits outside the lock or shrink the "
                    "guarded region",
                )


@register
class NoBareTask(ProgramRule):
    """ASY003: no fire-and-forget tasks without exception handling."""

    name = "ASY003"
    summary = (
        "no fire-and-forget create_task/ensure_future; keep a reference "
        "and consume the exception, or the task may vanish mid-flight"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for key in sorted(program.functions):
            fn = program.functions[key]
            for fact in fn.bare_tasks:
                yield self.program_finding(
                    fn,
                    fact.line,
                    fact.col,
                    f"{fact.what}(...) result discarded in {fn.qual}; "
                    "the event loop holds only a weak reference, so the "
                    "task can be garbage collected mid-flight and its "
                    "exception is silently lost — keep a reference and "
                    "handle failures (add_done_callback)",
                )
