"""SARIF 2.1.0 serialization of a lint report.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it lets CI upload the lint run as an artifact and
lets hosting platforms annotate diffs with the findings. We emit the
minimal valid document: one run, the tool's rule metadata, and one
result per finding with a physical location.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .engine import LintReport
from .findings import Severity
from .registry import Rule

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def to_sarif(report: LintReport, rules: Sequence[Rule]) -> Dict:
    """Render ``report`` as a SARIF 2.1.0 document (a plain dict)."""
    driver = {
        "name": "repro-lint",
        "rules": [
            {
                "id": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "error")
                },
            }
            for rule in rules
        ],
    }
    results = [
        {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.rel},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
