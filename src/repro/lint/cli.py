"""``python -m repro lint`` — the linter's command-line front end.

Exit status is 0 when every finding is suppressed or baselined, 1 when
any error-severity finding survives (the CI gate keys off this), and 2
on usage errors (unknown rule, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, write_baseline
from .engine import lint_paths
from .registry import all_rules, get_rules

__all__ = ["configure_parser", "run", "default_target", "default_baseline_path"]

#: src/repro — the package the linter ships inside and lints by default.
_PACKAGE_ROOT = Path(__file__).resolve().parents[1]


def default_target() -> Path:
    """The default lint target: the installed ``repro`` package source."""
    return _PACKAGE_ROOT


def default_baseline_path() -> Optional[Path]:
    """``lint-baseline.txt`` at the repo root, when running from a checkout."""
    candidate = _PACKAGE_ROOT.parents[1] / "lint-baseline.txt"
    return candidate if candidate.is_file() else None


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist whole-program summaries here (warm reruns skip "
        "re-analysis of unchanged files)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule counts, wall time, and call-graph size",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="check only this rule (repeatable, e.g. --rule DET001)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.txt at the repo root, if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}  [{rule.severity}]  {rule.summary}")
        return 0

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    try:
        baseline = (
            {} if args.no_baseline or baseline_path is None
            else load_baseline(baseline_path)
        )
    except ValueError as exc:
        print(f"repro lint: {exc}")
        return 2

    paths: List[Path] = [Path(p) for p in args.paths] or [default_target()]
    try:
        report = lint_paths(
            paths,
            rules=args.rules,
            baseline=baseline,
            cache_dir=args.cache_dir,
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}")
        return 2
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}")
        return 2

    if args.write_baseline:
        target = baseline_path or (
            _PACKAGE_ROOT.parents[1] / "lint-baseline.txt"
        )
        write_baseline(list(report.findings) + list(report.baselined), target)
        print(f"baseline with {len(report.findings) + len(report.baselined)} "
              f"entr{'y' if len(report.findings) + len(report.baselined) == 1 else 'ies'} "
              f"written to {target}")
        return 0

    if args.format == "sarif":
        from .sarif import to_sarif

        selected = get_rules(args.rules)
        print(json.dumps(to_sarif(report, selected), indent=2, sort_keys=True))
        return report.exit_code

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in report.findings],
                    "baselined": len(report.baselined),
                    "suppressed": report.suppressed,
                    "files": report.files,
                    "stale_baseline": [
                        {"rel": rel, "rule": rule, "count": count}
                        for rel, rule, count in report.stale_baseline
                    ],
                    "unknown_baseline": [
                        {"rel": rel, "rule": rule, "count": count}
                        for rel, rule, count in report.unknown_baseline
                    ],
                    "stats": report.stats,
                    "exit_code": report.exit_code,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return report.exit_code

    for finding in report.findings:
        print(finding.render())
    for rel, rule, count in report.stale_baseline:
        print(
            f"note: baseline entry {rel}:{rule} has {count} unused "
            "allowance(s); trim lint-baseline.txt"
        )
    for rel, rule, count in report.unknown_baseline:
        print(
            f"note: baseline entry {rel}:{rule} names an unknown rule "
            f"({count} allowance(s) can never match); delete the line"
        )
    if args.stats:
        _print_stats(report.stats)
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.baselined)} baselined, {report.suppressed} suppressed) "
        f"across {report.files} file(s)"
    )
    print(("FAIL: " if report.exit_code else "ok: ") + summary)
    return report.exit_code


def _print_stats(stats: dict) -> None:
    """Render the ``--stats`` block (analysis cost over time in CI logs)."""
    print(f"stats: {stats.get('files', 0)} file(s) analyzed "
          f"in {stats.get('wall_s', 0.0):.3f}s")
    rule_counts = stats.get("rule_counts") or {}
    for rule, count in sorted(rule_counts.items()):
        print(f"stats:   {rule}: {count} finding(s)")
    graph = stats.get("callgraph") or {}
    if graph:
        total = graph.get("cache_hits", 0) + graph.get("cache_misses", 0)
        rate = graph.get("cache_hits", 0) / total if total else 0.0
        print(
            f"stats:   call graph: {graph.get('nodes', 0)} node(s), "
            f"{graph.get('edges', 0)} edge(s); summary cache "
            f"{graph.get('cache_hits', 0)}/{total} hit(s) ({rate:.0%})"
        )
