"""Committed baseline of grandfathered findings.

The baseline lets the CI gate fail only on *new* findings: entries name
``<rel-path>:<RULE>`` pairs (with an optional ``:<count>`` for multiple
occurrences in one file) that are tolerated, each justified by a ``#``
comment. Line numbers are deliberately absent — they churn with every
edit — so a baseline survives unrelated refactors.

Format, one entry per line::

    # why this is grandfathered
    core/legacy.py:DET003:2  # pre-dates the sorted-iteration invariant

``python -m repro lint --write-baseline`` regenerates the file from the
current findings (without justifications — add those by hand).
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, Set, Tuple, Union

from .findings import Finding

__all__ = [
    "load_baseline",
    "parse_baseline",
    "format_baseline",
    "write_baseline",
    "split_unknown_rules",
]

BaselineKey = Tuple[str, str]  # (rel path, rule name)


def parse_baseline(text: str) -> Dict[BaselineKey, int]:
    """Parse baseline text into ``{(rel, rule): allowed_count}``."""
    allowed: Dict[BaselineKey, int] = Counter()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":")
        if len(parts) == 2:
            rel, rule = parts
            count = 1
        elif len(parts) == 3:
            rel, rule = parts[0], parts[1]
            try:
                count = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"baseline line {lineno}: bad count in {line!r}"
                ) from None
        else:
            raise ValueError(
                f"baseline line {lineno}: expected '<path>:<RULE>[:<count>]', "
                f"got {line!r}"
            )
        if count < 1:
            raise ValueError(f"baseline line {lineno}: count must be >= 1")
        allowed[(rel.strip(), rule.strip().upper())] += count
    return dict(allowed)


def load_baseline(path: Union[str, Path]) -> Dict[BaselineKey, int]:
    """Load a baseline file (missing file -> empty baseline)."""
    path = Path(path)
    if not path.is_file():
        return {}
    return parse_baseline(path.read_text())


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as baseline text, grouped and counted."""
    counts: Counter = Counter((f.rel, f.rule) for f in findings)
    lines = [
        "# repro lint baseline - grandfathered findings.",
        "# Each entry must carry a justification comment; new code must",
        "# lint clean. Regenerate with: python -m repro lint --write-baseline",
        "# Format: <rel-path>:<RULE>[:<count>]  # justification",
    ]
    for (rel, rule), count in sorted(counts.items()):
        suffix = f":{count}" if count > 1 else ""
        lines.append(f"{rel}:{rule}{suffix}")
    return "\n".join(lines) + "\n"


def split_unknown_rules(
    allowed: Dict[BaselineKey, int], known_rules: Set[str]
) -> Tuple[Tuple[str, str, int], ...]:
    """Remove and report entries naming rules that do not exist.

    A deleted or renamed rule leaves baseline entries that can never
    match a finding; before this check they hid inside the "stale"
    bucket with a misleading "unused allowance" note. The caller passes
    the *full* rule registry (never a ``--rule`` selection), so
    narrowing a run does not misreport valid entries. Mutates
    ``allowed`` in place and returns the removed ``(rel, rule, count)``
    triples sorted by key.
    """
    unknown = tuple(
        (rel, rule, count)
        for (rel, rule), count in sorted(allowed.items())
        if rule not in known_rules
    )
    for rel, rule, _count in unknown:
        del allowed[(rel, rule)]
    return unknown


def write_baseline(findings: Iterable[Finding], path: Union[str, Path]) -> None:
    Path(path).write_text(format_baseline(findings))
