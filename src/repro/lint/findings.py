"""Finding and severity types shared by the whole linter.

A :class:`Finding` is one rule violation at one source location. The
engine (:mod:`repro.lint.engine`) collects them, applies inline
suppressions and the committed baseline, and the CLI renders what is
left as ``file:line:col RULE message`` lines or JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class Severity(enum.Enum):
    """Per-rule severity: only ``ERROR`` findings fail the CI gate."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the display path (as the file was given to the engine);
    ``rel`` is the scope key — the path relative to the linted package
    root — which rules use for targeting and the baseline uses for
    matching, so baselines stay valid when the checkout moves.
    """

    rule: str
    path: str
    rel: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-representable form (for ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "rel": self.rel,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
        }

    def sort_key(self):
        return (self.rel, self.line, self.col, self.rule)
