"""Abstract domains for the tensor dataflow analysis (NUM/SHAPE rules).

Two small lattices, joined pointwise into :class:`AbstractValue`:

* **Dtype** — the chain ``bottom < bool < intN < float32 < float64 <
  top``. All integer widths collapse onto ``intN``: the drift vector
  the paper characterizes is float-precision divergence, and collapsing
  keeps the join a total order (trivially commutative, associative, and
  idempotent — pinned by hypothesis in ``tests/lint/test_lattice.py``).
* **Shape** — either "rank unknown" (the top element) or a tuple of
  dims, each a known ``int``, a symbolic axis name (``"H"``, ``"N"``),
  or unknown (``None``). A *leading symbolic* ``N`` marks the batch
  axis the SHAPE001 rule protects.

Values also carry a ``weak`` flag mirroring NumPy scalar promotion:
a Python ``float`` literal is a *weak* float64 — ``float32_array + 0.5``
stays float32 under both value-based casting and NEP 50 — whereas
``np.float64(0.5)`` or a default-dtype ``np.array([0.5])`` is *strong*
and silently widens a float32 array. Only strong meetings are
promotions worth flagging.

Everything here is plain data with a total ``join``; the interpreter
that produces these values lives in :mod:`repro.lint.dataflow`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "DType",
    "Shape",
    "AbstractValue",
    "BATCH_AXIS",
    "TOP_VALUE",
    "decode_value",
    "encode_value",
]

#: The symbolic axis name that marks a batch dimension in contracts.
BATCH_AXIS = "N"

#: One shape dimension: a known extent, a symbolic axis, or unknown.
Dim = Union[int, str, None]


@dataclass(frozen=True, order=True)
class DType:
    """One element of the dtype chain, ordered by ``level``."""

    level: int
    name: str

    def join(self, other: "DType") -> "DType":
        return self if self.level >= other.level else other

    @property
    def is_float(self) -> bool:
        return self in (FLOAT32, FLOAT64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DType({self.name})"


BOTTOM = DType(0, "bottom")
BOOL = DType(1, "bool")
INTN = DType(2, "intN")
FLOAT32 = DType(3, "float32")
FLOAT64 = DType(4, "float64")
TOP = DType(5, "top")

#: The chain, bottom to top, for iteration and parsing.
DTYPES: Tuple[DType, ...] = (BOTTOM, BOOL, INTN, FLOAT32, FLOAT64, TOP)

_BY_NAME = {d.name: d for d in DTYPES}
#: NumPy dtype spellings mapped onto the chain.
_NUMPY_NAMES = {
    "bool": BOOL, "bool_": BOOL,
    "int8": INTN, "int16": INTN, "int32": INTN, "int64": INTN,
    "uint8": INTN, "uint16": INTN, "uint32": INTN, "uint64": INTN,
    "intp": INTN, "int_": INTN, "intc": INTN, "byte": INTN, "ubyte": INTN,
    "intN": INTN, "int": INTN,
    "float32": FLOAT32, "single": FLOAT32,
    "float64": FLOAT64, "double": FLOAT64, "float": FLOAT64, "float_": FLOAT64,
    "half": FLOAT32, "float16": FLOAT32,  # narrow floats: treat as f32 tier
}


def dtype_from_name(name: str) -> DType:
    """Chain element for a dtype spelling (``"uint8"`` -> ``intN``);
    unknown spellings map to ``top``."""
    name = name.rsplit(".", 1)[-1].strip()
    return _BY_NAME.get(name) or _NUMPY_NAMES.get(name, TOP)


@dataclass(frozen=True)
class Shape:
    """Rank/axis knowledge: ``dims is None`` means rank unknown (top)."""

    dims: Optional[Tuple[Dim, ...]] = None

    @classmethod
    def unknown(cls) -> "Shape":
        return cls(None)

    @classmethod
    def scalar(cls) -> "Shape":
        return cls(())

    @property
    def rank(self) -> Optional[int]:
        return None if self.dims is None else len(self.dims)

    @property
    def leading_batch(self) -> bool:
        """True when the first axis is the symbolic batch axis ``N``."""
        return bool(self.dims) and self.dims[0] == BATCH_AXIS

    def join(self, other: "Shape") -> "Shape":
        if self.dims is None or other.dims is None:
            return Shape(None)
        if len(self.dims) != len(other.dims):
            return Shape(None)
        return Shape(tuple(
            a if a == b else None for a, b in zip(self.dims, other.dims)
        ))

    def drop_axis(self, axis: int) -> "Shape":
        if self.dims is None:
            return self
        if not -len(self.dims) <= axis < len(self.dims):
            return Shape(None)
        axis %= len(self.dims)
        return Shape(self.dims[:axis] + self.dims[axis + 1:])


@dataclass(frozen=True)
class AbstractValue:
    """One abstract ndarray/scalar: dtype x shape x scalar weakness."""

    dtype: DType = TOP
    shape: Shape = Shape(None)
    weak: bool = False  #: Python scalar literal (non-promoting)

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(
            dtype=self.dtype.join(other.dtype),
            shape=self.shape.join(other.shape),
            weak=self.weak and other.weak,
        )

    @property
    def is_scalar(self) -> bool:
        return self.shape.dims == ()

    def with_dtype(self, dtype: DType) -> "AbstractValue":
        return AbstractValue(dtype=dtype, shape=self.shape, weak=False)

    def with_shape(self, shape: Shape) -> "AbstractValue":
        return AbstractValue(dtype=self.dtype, shape=shape, weak=self.weak)


TOP_VALUE = AbstractValue(TOP, Shape(None))


# ----------------------------------------------------------------------
# Compact text encoding (for summaries.json and finding messages)
# ----------------------------------------------------------------------
def _dim_text(dim: Dim) -> str:
    if dim is None:
        return "?"
    return str(dim)


def encode_shape(shape: Shape) -> str:
    if shape.dims is None:
        return "*"
    return "(" + ",".join(_dim_text(d) for d in shape.dims) + ")"


def decode_shape(text: str) -> Shape:
    text = text.strip()
    if text in ("*", ""):
        return Shape(None)
    if not (text.startswith("(") and text.endswith(")")):
        return Shape(None)
    inner = text[1:-1].strip()
    if not inner:
        return Shape(())
    dims: Tuple[Dim, ...] = tuple(
        None if part == "?" else (int(part) if part.lstrip("-").isdigit() else part)
        for part in (p.strip() for p in inner.split(","))
    )
    return Shape(dims)


def encode_value(value: AbstractValue) -> str:
    """``"float32:(N,H,W,3)"`` / ``"float64:()~"`` (weak) / ``"top:*"``."""
    return (
        f"{value.dtype.name}:{encode_shape(value.shape)}"
        + ("~" if value.weak else "")
    )


def decode_value(text: str) -> AbstractValue:
    text = text.strip()
    weak = text.endswith("~")
    if weak:
        text = text[:-1]
    dtype_name, _, shape_text = text.partition(":")
    return AbstractValue(
        dtype=dtype_from_name(dtype_name or "top"),
        shape=decode_shape(shape_text),
        weak=weak,
    )
