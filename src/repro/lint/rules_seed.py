"""SEED001: whole-program seed-provenance taint analysis.

Every output bit must be a pure function of (unit identity, seed); the
per-module DET001 rule catches *global* RNG draws, but says nothing
about a generator seeded with ``default_rng(0)`` three modules away
from the capture path. This pass classifies every RNG construction site
in the program by the provenance of its seed expression:

* ``derived`` — seeded through the blessed family in
  :mod:`repro.runner.seeds` (``derive_rng`` / ``unit_entropy`` /
  ``seed_component``);
* ``tracked`` — seeded from a parameter or attribute, i.e. provenance
  is threaded in by the caller (entry points passing a literal master
  seed are the deliberate top of that chain);
* ``literal`` / ``wallclock`` / ``untracked`` — flagged: the stream is
  either the same everywhere, different every run, or unaccounted for.

Functions that *accept* an RNG parameter and still construct their own
generator are flagged too: the second stream silently decouples from
the identity-derived one the caller threaded in.

When a flagged birth is reachable from the capture/serving paths
(``runner/``, ``fleet/``, ``lab/``, ``serve/``), the finding message
carries the shortest call chain so the report shows *how* the bad
stream reaches results.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .callgraph import Program
from .findings import Finding
from .registry import ProgramRule, register

__all__ = ["SeedProvenance"]

#: Call-path roots whose transitive callees feed captured results.
_ROOT_PREFIXES = ("runner/", "fleet/", "lab/", "serve/")


@register
class SeedProvenance(ProgramRule):
    """SEED001: RNG seeds must trace to identity-derived entropy."""

    name = "SEED001"
    summary = (
        "RNG births must trace to derive_rng/unit identity through the "
        "call graph; no literal, wall-clock, or untracked seeds"
    )

    #: The derivation site itself constructs generators from raw parts.
    exempt = ("runner/seeds.py",)

    def check_program(self, program: Program) -> Iterator[Finding]:
        roots = [
            key
            for key, fn in sorted(program.functions.items())
            if fn.rel.startswith(_ROOT_PREFIXES)
        ]
        for key in sorted(program.functions):
            fn = program.functions[key]
            if fn.rel in self.exempt:
                continue
            for birth in fn.births:
                message = self._diagnose(fn, birth)
                if message is None:
                    continue
                chain = program.trace(roots, key)
                if chain is not None and len(chain) > 1:
                    message += (
                        "; reachable from the capture path via "
                        + " -> ".join(chain)
                    )
                yield self.program_finding(fn, birth.line, birth.col, message)

    @staticmethod
    def _diagnose(fn, birth):
        where = f"in {fn.qual}" if fn.qual != "<module>" else "at module level"
        if birth.kind == "literal":
            return (
                f"RNG born from a literal seed {where}: {birth.detail}; "
                "every device would replay the same stream — derive it "
                "from unit identity (repro.runner.seeds.derive_rng) or "
                "thread a generator parameter through"
            )
        if birth.kind == "wallclock":
            return (
                f"RNG seeded from the wall clock {where}: {birth.detail}; "
                "results would differ every run — derive the seed from "
                "unit identity instead"
            )
        if birth.kind == "untracked":
            return (
                f"RNG seed with untracked provenance {where}: "
                f"{birth.detail}; the seed is neither a parameter, an "
                "attribute, nor derive_rng output, so nothing ties this "
                "stream to unit identity"
            )
        if birth.kind == "bare-derive":
            return f"{birth.detail} ({where})"
        if birth.kind in ("tracked", "derived") and fn.rng_params:
            param = fn.rng_params[0]
            return (
                f"{fn.qual} accepts an RNG parameter ({param!r}) but also "
                f"constructs a second generator: {birth.detail}; draws "
                "from the two streams interleave unpredictably — use the "
                "threaded generator (or split it via spawn) instead"
            )
        return None
