"""NUM001/NUM002/SHAPE001: numeric-drift and batch-axis safety rules.

These three passes consume the per-function :class:`TensorEvent` streams
the abstract interpreter (:mod:`repro.lint.dataflow`) left in the
summaries, and gate them on whole-program reachability:

* **NUM001** — an implicit float32 -> float64 promotion (a strong
  float64 met a float32 array with no ``astype``/``dtype=``) in code
  reachable from the capture roots. Precision widening mid-pipeline is
  exactly the cross-device drift vector the paper characterizes: the
  same stage computed at two precisions on two devices diverges in the
  low-order bits, and the classifier flips.
* **NUM002** — an order-sensitive axis-free float reduction (``sum`` /
  ``mean`` / ``cumsum`` / ``nansum`` / ``nanmean`` over a flattened
  rank>=2 array) reachable from the parallel fan-out. Like DET003 for
  dict ordering, the accumulation order over a flattened buffer is an
  implementation detail — two BLAS builds or a future chunked executor
  may sum in different orders. ``dot``/``matmul`` are deliberately out
  of scope: their contraction axis is pinned by the operand shapes, and
  the bit-identical kernels invariant already locks their kernels.
* **SHAPE001** — a function whose :func:`tensor_contract` declares a
  leading symbolic batch axis ``N`` must never reduce, reshape across,
  boolean-mask, or integer-index that axis; each such proof certifies
  one stage as safe for the ROADMAP's ``(N, H, W, C)`` batch lift.
  SHAPE001 also reports contract violations and stale contracts
  (declared return disagreeing with the inferred lattice value), chasing
  single-return forwards across modules at link time.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .callgraph import FunctionSummary, Program
from .contracts import ContractError, parse_contract
from .dataflow import _contract_mismatch
from .findings import Finding
from .lattice import AbstractValue, decode_value
from .registry import ProgramRule, register

__all__ = ["ImplicitPromotion", "OrderSensitiveReduction", "BatchAxisSafety"]

#: Functions transitively feeding captured results: promotions here
#: change pixels/logits; promotions in dead utilities do not.
_CAPTURE_ROOTS = ("runner/", "fleet/", "serve/", "lab/")

#: Functions reachable from the parallel fan-out: accumulation order
#: here can differ per worker split.
_FANOUT_ROOTS = ("runner/", "fleet/", "serve/")


def _roots(program: Program, prefixes) -> list:
    return [
        key
        for key, fn in sorted(program.functions.items())
        if fn.rel.startswith(prefixes)
    ]


def _where(fn: FunctionSummary) -> str:
    return f"in {fn.qual}" if fn.qual != "<module>" else "at module level"


class _EventRule(ProgramRule):
    """Shared scaffolding: emit findings for one event kind, with the
    shortest root-to-site chain when the site is reachable."""

    kinds = ()
    root_prefixes = ()
    chain_label = "capture path"

    def check_program(self, program: Program) -> Iterator[Finding]:
        roots = _roots(program, self.root_prefixes)
        reachable = program.reachable(roots)
        for key in sorted(program.functions):
            fn = program.functions[key]
            if not fn.rel.startswith(self.root_prefixes) \
                    and key not in reachable:
                continue
            for event in fn.tensor.events:
                if event.kind not in self.kinds:
                    continue
                message = self.describe(fn, event)
                chain = program.trace(roots, key)
                if chain is not None and len(chain) > 1:
                    message += (
                        f"; reachable from the {self.chain_label} via "
                        + " -> ".join(chain)
                    )
                yield self.program_finding(fn, event.line, event.col, message)

    def describe(self, fn, event) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@register
class ImplicitPromotion(_EventRule):
    """NUM001: no silent float32 -> float64 widening on capture paths."""

    name = "NUM001"
    summary = (
        "no implicit float32 -> float64 promotion reachable from the "
        "capture roots; widen or narrow explicitly (astype/dtype=)"
    )

    kinds = ("promotion",)
    root_prefixes = _CAPTURE_ROOTS

    def describe(self, fn, event) -> str:
        return (
            f"implicit dtype promotion {_where(fn)}: {event.detail}; the "
            "silent precision change diverges across devices — make the "
            "widening explicit (astype) or keep the operand float32"
        )


@register
class OrderSensitiveReduction(_EventRule):
    """NUM002: float reductions need stable-axis discipline."""

    name = "NUM002"
    summary = (
        "order-sensitive float reductions (sum/mean/cumsum without an "
        "axis) must not be reachable from the parallel fan-out"
    )

    kinds = ("reduction",)
    root_prefixes = _FANOUT_ROOTS
    chain_label = "parallel fan-out"

    def describe(self, fn, event) -> str:
        return (
            f"order-sensitive reduction {_where(fn)}: {event.detail} — "
            "accumulate along an explicit axis (then reduce the rest in "
            "a fixed order) so the float sum order is pinned"
        )


@register
class BatchAxisSafety(ProgramRule):
    """SHAPE001: contracted batch axes stay independent; contracts stay
    honest."""

    name = "SHAPE001"
    summary = (
        "a @tensor_contract with a leading batch axis N must not be "
        "reduced, masked, indexed, or reshaped across; declared "
        "contracts must match the inferred dtype/shape"
    )

    _BATCH_KINDS = ("batch-reduce", "batch-mask", "batch-index",
                    "batch-reshape")

    def check_program(self, program: Program) -> Iterator[Finding]:
        for key in sorted(program.functions):
            fn = program.functions[key]
            for event in fn.tensor.events:
                if event.kind in self._BATCH_KINDS:
                    yield self.program_finding(
                        fn, event.line, event.col,
                        f"batch-axis violation {_where(fn)}: "
                        f"{event.detail}; the contract "
                        f"{fn.tensor.contract!r} promises batch items "
                        "stay independent",
                    )
                elif event.kind in ("contract", "contract-parse"):
                    yield self.program_finding(
                        fn, event.line, event.col,
                        f"tensor contract {_where(fn)}: {event.detail}",
                    )
            finding = self._check_forwarded_return(program, fn)
            if finding is not None:
                yield finding

    def _check_forwarded_return(
        self, program: Program, fn: FunctionSummary
    ) -> Optional[Finding]:
        """Link-time contract check for ``return other_module_call(...)``.

        Summaries are per-module, so a forwarded cross-module return is
        ``top`` at summary time; here every summary is in hand and the
        chain can be chased to a concrete inferred value.
        """
        info = fn.tensor
        if info.contract is None or info.returns_call is None:
            return None
        try:
            declared = parse_contract(info.contract).returns
        except ContractError:
            return None  # already reported as a contract-parse event
        if declared is None:
            return None
        inferred = self._chase(program, info.returns_call)
        if inferred is None:
            return None
        mismatch = _contract_mismatch(declared, inferred)
        if mismatch is None:
            return None
        return self.program_finding(
            fn, fn.line, fn.col,
            f"tensor contract {_where(fn)}: declared return of "
            f"{info.contract!r} disagrees with the value forwarded from "
            f"{info.returns_call} ({mismatch}); fix the code or the "
            "stale contract",
        )

    @staticmethod
    def _chase(program: Program, target: str) -> Optional[AbstractValue]:
        for _ in range(8):  # bounded: forward chains are short
            key = program._resolve_name(target, program.functions)
            if key is None:
                return None
            info = program.functions[key].tensor
            if info.returns_call is None:
                return decode_value(info.returns)
            target = info.returns_call
        return None
