"""PUR002: cross-module effect inference for observability sinks.

PR 2's contract is that observability can *describe* a computation but
never *change* it: tracing on vs. off must be bit-identical. OBS001
enforces the local half (obs helpers used as statements/contexts, never
in return position). This pass closes the cross-module loop: starting
from every function defined in the pure pixel/byte modules (``codecs/``,
``isp/``, ``sensor/``, ``kernels/``), it walks the call graph and flags
any reachable function — wherever it lives — that consumes an obs
helper's return value. Traversal stops at functions defined inside
``obs/`` (and ``lint/``) itself: the sink's internals legitimately
handle their own values; what matters is that nothing *outside* the
sink reads them back into computation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .callgraph import Program
from .findings import Finding
from .registry import ProgramRule, register

__all__ = ["ObsWriteOnly"]

#: Modules whose outputs must be pure functions of (inputs, seed).
_PURE_PREFIXES = ("codecs/", "isp/", "sensor/", "kernels/")

#: The sink boundary: traversal does not descend into these.
_SINK_PREFIXES = ("obs/", "lint/")


@register
class ObsWriteOnly(ProgramRule):
    """PUR002: obs reachable from pure modules is a write-only sink."""

    name = "PUR002"
    summary = (
        "obs hooks reachable from codecs/, isp/, sensor/, kernels/ must "
        "be write-only sinks; no obs return value may feed computation"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for key in sorted(program.functions):
            if program.functions[key].rel.startswith(_PURE_PREFIXES):
                parents[key] = None
                queue.append(key)
        while queue:
            current = queue.pop(0)
            for _site, callee in program.callees(current):
                if callee is None or callee in parents:
                    continue
                if program.functions[callee].rel.startswith(_SINK_PREFIXES):
                    continue
                parents[callee] = current
                queue.append(callee)

        for key in sorted(parents):
            fn = program.functions[key]
            for use in fn.obs_uses:
                chain: List[str] = []
                cursor: Optional[str] = key
                while cursor is not None:
                    chain.append(program.functions[cursor].display)
                    cursor = parents[cursor]
                yield self.program_finding(
                    fn,
                    use.line,
                    use.col,
                    f"observability value {use.what} feeds computation in "
                    f"{fn.qual}, reachable from a pure module via "
                    + " -> ".join(reversed(chain))
                    + "; obs must stay a write-only sink (statement or "
                    "with-context) on pixel/byte paths",
                )
