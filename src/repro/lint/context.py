"""Per-module analysis context: parsed AST, import aliases, helpers.

Every rule receives one :class:`ModuleContext` per file. The context
owns the pieces rules keep needing:

* the parsed ``ast`` tree and raw source lines;
* ``rel``, the module's path relative to the linted package root, which
  rules use to scope themselves (e.g. DET001 exempts
  ``runner/seeds.py``);
* an import-alias map so ``np.random.rand`` and
  ``numpy.random.rand`` resolve to the same canonical dotted name, and
  ``from .. import obs`` is recognized as :mod:`repro.obs` regardless of
  the importing module's depth.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from .findings import Finding, Severity

__all__ = ["ModuleContext", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The ``("np", "random", "rand")`` chain of a Name/Attribute, if any."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _package_parts(rel: str) -> list:
    """Package path of the module at ``rel``, as parts under ``repro``.

    ``"runner/seeds.py"`` lives in package ``["runner"]``;
    ``"runner/__init__.py"`` *is* package ``["runner"]``; a top-level
    ``"cli.py"`` lives in the root package ``[]``.
    """
    parts = (rel[:-3] if rel.endswith(".py") else rel).split("/")
    parts = [p for p in parts if p]
    if parts and parts[-1] == "__init__":
        return parts[:-1]
    return parts[:-1]


def _collect_aliases(tree: ast.AST, rel: str = "") -> Dict[str, str]:
    """Map locally bound names to canonical dotted module paths.

    Relative imports are rooted at ``repro`` by convention (the linter
    targets this one package) and resolved against the importing
    module's own package depth: in ``runner/seeds.py``, ``from . import
    cache`` binds ``repro.runner.cache`` and ``from ..obs import span``
    binds ``repro.obs.span``. Without ``rel`` (scratch parses), level-1
    imports anchor at the root package — the pre-existing behaviour.
    """
    package = _package_parts(rel)
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname or name.name.split(".", 1)[0]
                canonical = name.name if name.asname else name.name.split(".", 1)[0]
                aliases[bound] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                keep = max(len(package) - (node.level - 1), 0)
                parts = ["repro"] + package[:keep]
                if node.module:
                    parts.append(node.module)
                base = ".".join(parts)
            else:
                base = node.module or ""
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                aliases[bound] = f"{base}.{name.name}" if base else name.name
    return aliases


@dataclass
class ModuleContext:
    """Everything a rule needs to check one module."""

    path: str  #: display path, as given to the engine
    rel: str  #: posix path relative to the linted package root
    tree: ast.Module
    lines: Tuple[str, ...]
    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, rel: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            rel=rel,
            tree=tree,
            lines=tuple(source.splitlines()),
            aliases=_collect_aliases(tree, rel),
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``np.random.rand`` resolves to ``"numpy.random.rand"`` when the
        module did ``import numpy as np``; unimported bare chains pass
        through verbatim.
        """
        parts = dotted_name(node)
        if parts is None:
            return None
        head = self.aliases.get(parts[0], parts[0])
        return ".".join((head,) + parts[1:])

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule=rule,
            path=self.path,
            rel=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=severity,
        )

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)
