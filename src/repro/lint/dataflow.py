"""Intraprocedural abstract interpreter over ndarray values.

This is the engine under the NUM001/NUM002/SHAPE001 rules: it walks one
function body, tracking an :class:`~repro.lint.lattice.AbstractValue`
(dtype x shape x scalar-weakness) per local name, and records
:class:`TensorEvent` s at the sites the rules care about:

``promotion``
    A *strong* float32 value met a *strong* float64 value with no
    explicit ``astype``/``dtype=`` — the silent widening the paper's
    drift characterization starts from. Python float literals are weak
    scalars and do not fire (``f32 * 0.5`` stays float32 under both
    value-based casting and NEP 50); ``np.float64(x)``, default-dtype
    constructors (``np.array([0.5])``, ``np.zeros``, ``np.linspace``)
    and rng draws are strong and do.
``reduction``
    An axis-free order-sensitive float reduction (``sum`` / ``mean`` /
    ``cumsum`` / ``nansum`` / ``nanmean``) on a known rank>=2 strong
    float array — accumulation order over a flattened buffer is exactly
    the DET003 analogue for floats. ``dot``/``matmul`` are deliberately
    *not* events: their contraction axis is fixed by the shapes, so
    there is no axis discipline to forget (reordering them is a kernel
    choice, which the bit-identical kernels invariant already pins).
``batch-reduce`` / ``batch-mask`` / ``batch-index`` / ``batch-reshape``
    An operation that reduces, boolean-masks, integer-indexes, or
    reshapes across a *leading symbolic batch axis* ``N`` declared by a
    :func:`~repro.lint.contracts.tensor_contract` — the four ways a
    stage can couple items of a batch and break per-item equivalence
    with the serial path.
``contract`` / ``contract-parse``
    The declared contract disagrees with the inferred return value
    (stale or wrong contract), or the spec string does not parse.

Only same-module knowledge feeds the interpreter (contracted local
callees return their declared value; cross-module calls are ``top``),
so a function's :class:`TensorInfo` depends on its own module's source
alone and is safe to cache by content sha. A single-return forward of
an unresolved ``repro.*`` call is recorded in ``returns_call`` so the
SHAPE001 pass can chase the chain at link time, where every module's
summary is in hand.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .context import ModuleContext, dotted_name
from .lattice import (
    AbstractValue,
    BATCH_AXIS,
    BOOL,
    FLOAT32,
    FLOAT64,
    INTN,
    TOP,
    TOP_VALUE,
    Shape,
    dtype_from_name,
    encode_value,
)
from .contracts import Contract, ContractError, parse_contract

__all__ = [
    "TensorEvent",
    "TensorInfo",
    "analyze_function",
    "analyze_module",
    "contract_spec",
]

#: Axis-free reductions whose float accumulation order is unspecified.
_ORDER_SENSITIVE = frozenset({"sum", "mean", "cumsum", "nansum", "nanmean"})

#: All reduction-shaped methods/functions we model (shape effects).
_REDUCTIONS = _ORDER_SENSITIVE | frozenset(
    {"prod", "std", "var", "max", "min", "amax", "amin", "any", "all",
     "argmax", "argmin", "median", "nanmax", "nanmin"}
)

#: Reductions that keep the input shape instead of dropping the axis.
_SHAPE_KEEPING = frozenset({"cumsum"})

#: numpy constructors that default to float64 when no dtype is given.
_F64_CONSTRUCTORS = frozenset(
    {"zeros", "ones", "empty", "full", "linspace", "eye", "identity",
     "geomspace", "logspace"}
)

#: Generator draw methods returning float64 (strong) by default.
_RNG_FLOAT_DRAWS = frozenset(
    {"normal", "uniform", "random", "standard_normal", "beta", "gamma",
     "exponential", "poisson_lam", "lognormal", "laplace"}
)
_RNG_INT_DRAWS = frozenset({"integers", "poisson", "binomial", "choice",
                            "permutation"})

#: Elementwise ufuncs that return true floats even on integer input.
_FLOAT_UFUNCS = frozenset(
    {"sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan", "arctan2",
     "hypot", "expm1", "log1p", "cbrt", "reciprocal"}
)
#: Elementwise ufuncs preserving the input dtype.
_PASSTHROUGH_UFUNCS = frozenset(
    {"abs", "absolute", "negative", "positive", "rint", "sign", "floor",
     "ceil", "trunc", "round", "around", "nan_to_num", "ascontiguousarray",
     "copy", "squeeze", "sort", "flip", "roll"}
)
#: Binary elementwise numpy functions (promotion can fire inside).
_BINARY_UFUNCS = frozenset(
    {"add", "subtract", "multiply", "divide", "true_divide", "minimum",
     "maximum", "power", "mod", "remainder", "fmin", "fmax", "arctan2",
     "hypot", "clip"}
)
#: Contractions: dtype promotes like a binary op, shape is lost.
_CONTRACTIONS = frozenset({"dot", "matmul", "tensordot", "inner", "outer",
                           "vdot", "einsum"})


@dataclass(frozen=True)
class TensorEvent:
    """One located dataflow fact a numeric rule may turn into a finding."""

    kind: str  #: promotion | reduction | batch-* | contract | contract-parse
    line: int
    col: int
    detail: str


@dataclass(frozen=True)
class TensorInfo:
    """Per-function dataflow result, serialized into the summary cache.

    ``params``/``returns`` are :func:`~repro.lint.lattice.encode_value`
    strings (JSON-stable); ``returns_call`` names an unresolved
    ``repro.*`` call the function forwards its return from, for
    link-time contract chasing.
    """

    contract: Optional[str] = None
    params: Tuple[str, ...] = ()
    returns: str = "top:*"
    returns_call: Optional[str] = None
    events: Tuple[TensorEvent, ...] = ()


def contract_spec(node: ast.AST, ctx: ModuleContext) -> Optional[str]:
    """The ``@tensor_contract("...")`` spec on a def, read syntactically."""
    for deco in getattr(node, "decorator_list", ()):
        if not isinstance(deco, ast.Call):
            continue
        canon = ctx.resolve(deco.func) or ""
        if canon.rsplit(".", 1)[-1] != "tensor_contract":
            continue
        if deco.args and isinstance(deco.args[0], ast.Constant) \
                and isinstance(deco.args[0].value, str):
            return deco.args[0].value
    return None


def _broadcast(a: Shape, b: Shape) -> Shape:
    """NumPy broadcasting on the shape lattice (conservative)."""
    if a.dims == ():
        return b
    if b.dims == ():
        return a
    if a.dims is None or b.dims is None:
        return Shape(None)
    small, big = sorted((a.dims, b.dims), key=len)
    pad = len(big) - len(small)
    out = list(big[:pad])
    for da, db in zip(big[pad:], small):
        if da == db:
            out.append(da)
        elif da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        else:
            out.append(None)
    return Shape(tuple(out))


def _dtype_from_node(node: Optional[ast.AST], ctx: ModuleContext):
    """Dtype named by an ``astype``/``dtype=`` argument, or ``None``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.lstrip("<>=|")  # struct spellings: "<i2", "<f4"
        struct = {"i": INTN, "u": INTN, "f": FLOAT32, "d": FLOAT64, "b": BOOL}
        if text[:1] in struct and text[1:].isdigit():
            if text[:1] == "f":
                return FLOAT64 if text[1:] == "8" else FLOAT32
            return struct[text[:1]]
        return dtype_from_name(text)
    canon = ctx.resolve(node)
    if canon is not None:
        dt = dtype_from_name(canon)
        if dt is not TOP:
            return dt
        if canon in ("float", "int", "bool"):  # builtins as dtype args
            return {"float": FLOAT64, "int": INTN, "bool": BOOL}[canon]
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _Interp:
    """One pass over one function body; flow-sensitive on locals."""

    def __init__(
        self,
        ctx: ModuleContext,
        module_env: Dict[str, AbstractValue],
        local_contracts: Dict[str, Contract],
    ):
        self.ctx = ctx
        self.module_env = module_env
        self.local_contracts = local_contracts
        self.env: Dict[str, AbstractValue] = {}
        self.events: List[TensorEvent] = []
        self.returned: Optional[AbstractValue] = None
        self.return_calls: List[str] = []
        self.return_count = 0

    # -- events --------------------------------------------------------
    def _event(self, kind: str, node: ast.AST, detail: str) -> None:
        self.events.append(
            TensorEvent(kind, getattr(node, "lineno", 1),
                        getattr(node, "col_offset", 0) + 1, detail)
        )

    # -- statements ----------------------------------------------------
    def exec_body(self, body) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self.env[stmt.name] = TOP_VALUE
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            current = TOP_VALUE
            if isinstance(stmt.target, ast.Name):
                current = self._load(stmt.target.id)
            value = self._combine(current, self._eval(stmt.value), stmt)
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.return_count += 1
            if stmt.value is None:
                value = AbstractValue(TOP, Shape(None))
            else:
                value = self._eval(stmt.value)
                if isinstance(stmt.value, ast.Call):
                    canon = self.ctx.resolve(stmt.value.func)
                    if canon and canon.startswith("repro.") \
                            and value is TOP_VALUE:
                        self.return_calls.append(canon)
            self.returned = value if self.returned is None \
                else self.returned.join(value)
        elif isinstance(stmt, ast.If):
            before = dict(self.env)
            self._eval(stmt.test)
            self.exec_body(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.exec_body(stmt.orelse)
            self._merge_env(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter)
            item = AbstractValue(
                iter_value.dtype, iter_value.shape.drop_axis(0),
                weak=iter_value.weak,
            ) if iter_value.shape.dims else TOP_VALUE
            self._bind(stmt.target, item)
            # Two passes approximate the loop fixpoint on this chain
            # lattice (joins only ever move up, so twice is enough for
            # values fed back through the loop header).
            for _ in range(2):
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, TOP_VALUE)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = TOP_VALUE
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Delete, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _merge_env(self, other: Dict[str, AbstractValue]) -> None:
        for name in sorted(set(self.env) | set(other)):
            a = self.env.get(name, TOP_VALUE)
            b = other.get(name, TOP_VALUE)
            self.env[name] = a.join(b)

    def _bind(self, target: ast.AST, value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Starred):
            self._bind(target.value, TOP_VALUE)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, TOP_VALUE)
        elif isinstance(target, ast.Subscript):
            # Writing through a batch-coupling index is as unsafe as
            # reading through one; _subscript records the events.
            self._eval(target)

    def _load(self, name: str) -> AbstractValue:
        if name in self.env:
            return self.env[name]
        return self.module_env.get(name, TOP_VALUE)

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return AbstractValue(BOOL, Shape.scalar(), weak=True)
            if isinstance(v, int):
                return AbstractValue(INTN, Shape.scalar(), weak=True)
            if isinstance(v, float):
                return AbstractValue(FLOAT64, Shape.scalar(), weak=True)
            return TOP_VALUE
        if isinstance(node, ast.Name):
            return self._load(node.id)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(node.op, (ast.MatMult,)):
                out = self._combine(left, right, node)
                return out.with_shape(Shape(None))
            out = self._combine(left, right, node)
            if isinstance(node.op, ast.Div) and out.dtype in (BOOL, INTN):
                out = out.with_dtype(FLOAT64)
            return out
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand)
            if isinstance(node.op, ast.Not):
                return AbstractValue(BOOL, Shape.scalar(), weak=True)
            return operand
        if isinstance(node, ast.Compare):
            shapes = [self._eval(node.left).shape]
            shapes += [self._eval(c).shape for c in node.comparators]
            shape = shapes[0]
            for s in shapes[1:]:
                shape = _broadcast(shape, s)
            return AbstractValue(BOOL, shape)
        if isinstance(node, ast.BoolOp):
            value = self._eval(node.values[0])
            for v in node.values[1:]:
                value = value.join(self._eval(v))
            return value
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).join(self._eval(node.orelse))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._sequence(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.NamedExpr)):
            inner = self._eval(node.value)
            if isinstance(node, ast.NamedExpr):
                self._bind(node.target, inner)
            return inner
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            # Events inside comprehensions still count (e.g. a promotion
            # inside [f32 * strong64 for ...]); targets bind to top.
            for gen in node.generators:
                self._eval(gen.iter)
                self._bind(gen.target, TOP_VALUE)
                for cond in gen.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                self._eval(node.key)
                self._eval(node.value)
            else:
                self._eval(node.elt)
            return TOP_VALUE
        if isinstance(node, ast.Lambda):
            return TOP_VALUE
        if isinstance(node, ast.JoinedStr):
            return TOP_VALUE
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return TOP_VALUE

    def _sequence(self, node) -> AbstractValue:
        if not node.elts:
            return AbstractValue(TOP, Shape((0,)), weak=True)
        values = [self._eval(e) for e in node.elts]
        joined = values[0]
        for v in values[1:]:
            joined = joined.join(v)
        inner = joined.shape.dims
        dims: Tuple = (len(node.elts),)
        if inner is not None:
            dims = dims + inner
            shape = Shape(dims)
        else:
            shape = Shape(None)
        return AbstractValue(joined.dtype, shape, weak=True)

    # -- promotion-aware combine ---------------------------------------
    def _combine(self, lv: AbstractValue, rv: AbstractValue,
                 node: ast.AST) -> AbstractValue:
        if lv.dtype is TOP or rv.dtype is TOP:
            dtype = TOP
        else:
            la, lb = lv.dtype, rv.dtype
            l_weak = lv.weak and lv.is_scalar
            r_weak = rv.weak and rv.is_scalar
            promoted = (
                (la is FLOAT32 and lb is FLOAT64 and not r_weak)
                or (lb is FLOAT32 and la is FLOAT64 and not l_weak)
            )
            if promoted:
                self._event(
                    "promotion", node,
                    "float32 meets strong float64 without astype/dtype=",
                )
            ea = FLOAT32 if (l_weak and la is FLOAT64 and lb is FLOAT32) else la
            eb = FLOAT32 if (r_weak and lb is FLOAT64 and la is FLOAT32) else lb
            dtype = ea.join(eb)
        return AbstractValue(
            dtype=dtype,
            shape=_broadcast(lv.shape, rv.shape),
            weak=lv.weak and rv.weak,
        )

    # -- attribute access ----------------------------------------------
    def _attribute(self, node: ast.Attribute) -> AbstractValue:
        canon = self.ctx.resolve(node)
        if canon is not None and canon.startswith("numpy."):
            tail = canon.rsplit(".", 1)[-1]
            if tail in ("pi", "e", "euler_gamma", "inf", "nan"):
                # Module float constants are np.float64 scalars: strong.
                return AbstractValue(FLOAT64, Shape.scalar())
        value = self._eval(node.value)
        if node.attr == "T":
            dims = value.shape.dims
            if dims is not None:
                return value.with_shape(Shape(tuple(reversed(dims))))
            return value
        if node.attr in ("real", "imag"):
            return value
        if node.attr in ("shape", "ndim", "size", "dtype", "nbytes"):
            return TOP_VALUE
        return TOP_VALUE

    # -- calls -----------------------------------------------------------
    def _args(self, call: ast.Call) -> List[AbstractValue]:
        return [self._eval(a) for a in call.args]

    def _call(self, call: ast.Call) -> AbstractValue:
        for kw in call.keywords:
            if kw.arg not in ("dtype", "axis"):
                self._eval(kw.value)
        canon = self.ctx.resolve(call.func)
        if canon is not None:
            out = self._numpy_call(call, canon)
            if out is not None:
                return out
            out = self._local_call(call, canon)
            if out is not None:
                return out
            if canon in ("len",):
                self._args(call)
                return AbstractValue(INTN, Shape.scalar(), weak=True)
            if canon in ("float", "int", "bool", "round", "sum", "min",
                         "max", "abs"):
                args = self._args(call)
                builtin = {"float": FLOAT64, "int": INTN, "bool": BOOL}
                if canon in builtin:
                    return AbstractValue(builtin[canon], Shape.scalar(),
                                         weak=True)
                if args and canon in ("round", "abs", "min", "max"):
                    return args[0]
                return TOP_VALUE
        if isinstance(call.func, ast.Attribute):
            return self._method_call(call)
        self._args(call)
        return TOP_VALUE

    def _local_call(self, call: ast.Call, canon: str) -> Optional[AbstractValue]:
        """Same-module contracted callee: trust (and check) its contract."""
        name = canon.rsplit(".", 1)[-1]
        contract = self.local_contracts.get(name)
        if contract is None:
            return None  # caller evaluates args on its fallback path
        args = self._args(call)
        for declared, got in zip(contract.params, args):
            if declared is None or got.weak:
                continue
            if TOP not in (declared.dtype, got.dtype) \
                    and declared.dtype is not got.dtype:
                self._event(
                    "contract", call,
                    f"argument to {name} is {got.dtype.name}, contract "
                    f"declares {declared.dtype.name}",
                )
            elif declared.shape.rank is not None \
                    and got.shape.rank is not None \
                    and declared.shape.rank != got.shape.rank:
                self._event(
                    "contract", call,
                    f"argument to {name} has rank {got.shape.rank}, "
                    f"contract declares rank {declared.shape.rank}",
                )
        return contract.returns if contract.returns is not None else TOP_VALUE

    def _numpy_call(self, call: ast.Call, canon: str) -> Optional[AbstractValue]:
        if not canon.startswith("numpy."):
            return None
        parts = canon.split(".")
        name = parts[-1]
        dtype_kw = _dtype_from_node(_keyword(call, "dtype"), self.ctx)
        if name in ("array", "asarray", "asanyarray", "ascontiguousarray"):
            arg = self._eval(call.args[0]) if call.args else TOP_VALUE
            dtype = dtype_kw or arg.dtype
            # np.array of python floats is a strong float64 array.
            return AbstractValue(dtype, arg.shape)
        if name in _F64_CONSTRUCTORS:
            shape = Shape(None)
            if name in ("eye", "identity"):
                shape = Shape((None, None))
            elif name in ("linspace", "geomspace", "logspace"):
                shape = Shape((None,))
            elif call.args:
                shape = self._shape_arg(call.args[0])
            self._args(call)
            return AbstractValue(dtype_kw or FLOAT64, shape)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            like = self._eval(call.args[0]) if call.args else TOP_VALUE
            return AbstractValue(dtype_kw or like.dtype, like.shape)
        if name == "arange":
            args = self._args(call)
            dtype = dtype_kw
            if dtype is None:
                dtype = INTN
                for a in args:
                    if a.dtype is FLOAT64:
                        dtype = FLOAT64
            return AbstractValue(dtype, Shape((None,)))
        if name == "frombuffer":
            self._args(call)
            dtype = dtype_kw
            if dtype is None and len(call.args) > 1:
                dtype = _dtype_from_node(call.args[1], self.ctx)
            return AbstractValue(dtype or FLOAT64, Shape((None,)))
        if name in ("float16", "float32", "float64", "int8", "int16",
                    "int32", "int64", "uint8", "uint16", "uint32",
                    "uint64", "bool_", "intp"):
            self._args(call)
            return AbstractValue(dtype_from_name(name), Shape.scalar())
        if name in ("stack", "concatenate", "vstack", "hstack", "dstack"):
            if call.args and isinstance(call.args[0], (ast.Tuple, ast.List)):
                elems = [self._eval(e) for e in call.args[0].elts]
                joined = elems[0] if elems else TOP_VALUE
                for v in elems[1:]:
                    joined = self._combine(joined, v, call)
                if name == "stack" and joined.shape.dims is not None:
                    shape = Shape((len(call.args[0].elts),) + joined.shape.dims)
                else:
                    shape = Shape(None)
                return AbstractValue(joined.dtype, shape)
            self._args(call)
            return TOP_VALUE
        if name in _REDUCTIONS:
            target = self._eval(call.args[0]) if call.args else TOP_VALUE
            axis = _keyword(call, "axis") or (
                call.args[1] if len(call.args) > 1 else None
            )
            return self._reduction(name, call, target, axis)
        if name in _CONTRACTIONS:
            args = self._args(call)
            out = TOP_VALUE
            arrays = [a for a in args if a.dtype is not TOP] or args
            if len(arrays) >= 2:
                out = self._combine(arrays[0], arrays[1], call)
            elif arrays:
                out = arrays[0]
            return out.with_shape(Shape(None))
        if name == "where":
            args = self._args(call)
            if len(args) == 3:
                return self._combine(args[1], args[2], call)
            return TOP_VALUE
        if name in _BINARY_UFUNCS:
            args = self._args(call)
            if len(args) >= 2:
                return self._combine(args[0], args[1], call)
            return args[0] if args else TOP_VALUE
        if name in _FLOAT_UFUNCS:
            args = self._args(call)
            if not args:
                return TOP_VALUE
            v = args[0]
            dtype = v.dtype if v.dtype in (FLOAT32, FLOAT64) else (
                TOP if v.dtype is TOP else FLOAT64
            )
            return AbstractValue(dtype, v.shape, weak=v.weak)
        if name in _PASSTHROUGH_UFUNCS:
            args = self._args(call)
            return args[0] if args else TOP_VALUE
        if name == "transpose":
            args = self._args(call)
            if args and args[0].shape.dims is not None:
                return args[0].with_shape(
                    Shape(tuple(reversed(args[0].shape.dims)))
                )
            return args[0] if args else TOP_VALUE
        if name == "reshape":
            target = self._eval(call.args[0]) if call.args else TOP_VALUE
            return self._reshape(call, target, call.args[1:])
        if name == "newaxis":
            return TOP_VALUE
        if parts[1] == "random":
            self._args(call)
            if name in ("default_rng", "Generator", "RandomState",
                        "SeedSequence"):
                return TOP_VALUE  # an rng object, not a draw
            if name in _RNG_INT_DRAWS:
                return AbstractValue(INTN, Shape(None))
            return AbstractValue(FLOAT64, Shape(None))
        self._args(call)
        return TOP_VALUE

    def _method_call(self, call: ast.Call) -> AbstractValue:
        attr = call.func.attr
        recv = self._eval(call.func.value)
        if attr == "astype":
            self._args(call)
            dtype = _dtype_from_node(
                call.args[0] if call.args else _keyword(call, "dtype"),
                self.ctx,
            )
            return recv.with_dtype(dtype or TOP)
        if attr in _RNG_FLOAT_DRAWS:
            self._args(call)
            return AbstractValue(FLOAT64, Shape(None))
        if attr in _RNG_INT_DRAWS:
            self._args(call)
            return AbstractValue(INTN, Shape(None))
        if attr in _REDUCTIONS:
            axis = _keyword(call, "axis") or (
                call.args[0] if call.args else None
            )
            self._args(call)
            return self._reduction(attr, call, recv, axis)
        if attr == "reshape":
            shape_args = call.args
            if len(shape_args) == 1 and isinstance(
                shape_args[0], (ast.Tuple, ast.List)
            ):
                shape_args = shape_args[0].elts
            return self._reshape(call, recv, shape_args)
        if attr in ("ravel", "flatten"):
            if recv.shape.leading_batch:
                self._event(
                    "batch-reshape", call,
                    f".{attr}() flattens across the leading batch axis N",
                )
            return recv.with_shape(Shape((None,)))
        if attr == "transpose":
            self._args(call)
            if recv.shape.dims is not None:
                return recv.with_shape(Shape(tuple(reversed(recv.shape.dims))))
            return recv
        if attr in ("copy", "clip", "round", "squeeze", "view"):
            self._args(call)
            return recv
        if attr in ("tobytes", "tolist", "item"):
            self._args(call)
            return TOP_VALUE
        if attr in ("dot", "matmul"):
            args = self._args(call)
            out = recv
            if args:
                out = self._combine(recv, args[0], call)
            return out.with_shape(Shape(None))
        if attr == "fill":
            args = self._args(call)
            if args:
                self._combine(recv, args[0], call)
            return TOP_VALUE
        self._args(call)
        return TOP_VALUE

    def _shape_arg(self, node: ast.AST) -> Shape:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return Shape((node.value,))
        if isinstance(node, (ast.Tuple, ast.List)):
            dims = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                    dims.append(elt.value)
                else:
                    self._eval(elt)
                    dims.append(None)
            return Shape(tuple(dims))
        self._eval(node)
        return Shape(None)

    # -- reductions ------------------------------------------------------
    def _axis_value(self, axis_node: Optional[ast.AST]) -> Tuple[bool, Optional[int]]:
        """(axis given?, constant axis if single int)."""
        if axis_node is None:
            return False, None
        if isinstance(axis_node, ast.Constant):
            if axis_node.value is None:
                return False, None  # axis=None is axis-free
            if isinstance(axis_node.value, int):
                return True, axis_node.value
        if isinstance(axis_node, ast.UnaryOp) \
                and isinstance(axis_node.op, ast.USub) \
                and isinstance(axis_node.operand, ast.Constant) \
                and isinstance(axis_node.operand.value, int):
            return True, -axis_node.operand.value
        return True, None

    def _reduction(self, name: str, call: ast.Call, target: AbstractValue,
                   axis_node: Optional[ast.AST]) -> AbstractValue:
        has_axis, axis = self._axis_value(axis_node)
        rank = target.shape.rank
        if not has_axis:
            if (
                name in _ORDER_SENSITIVE
                and target.dtype in (FLOAT32, FLOAT64)
                and not target.weak
                and rank is not None
                and rank >= 2
            ):
                self._event(
                    "reduction", call,
                    f"axis-free {name}() flattens a rank-{rank} "
                    f"{target.dtype.name} array; accumulation order is "
                    f"unspecified",
                )
            if target.shape.leading_batch:
                self._event(
                    "batch-reduce", call,
                    f"axis-free {name}() reduces over the leading batch "
                    f"axis N",
                )
            if name in _SHAPE_KEEPING:
                return target.with_shape(Shape((None,)))
            dtype = self._reduced_dtype(name, target)
            return AbstractValue(dtype, Shape.scalar())
        covers_batch = target.shape.leading_batch and (
            axis == 0 or (axis is not None and rank is not None
                          and axis % rank == 0)
        )
        if covers_batch:
            self._event(
                "batch-reduce", call,
                f"{name}(axis=0) reduces the leading batch axis N",
            )
        if name in _SHAPE_KEEPING:
            return target
        shape = target.shape.drop_axis(axis) if axis is not None \
            else Shape(None)
        return AbstractValue(self._reduced_dtype(name, target), shape)

    def _reduced_dtype(self, name: str, target: AbstractValue):
        if target.dtype is TOP:
            return TOP
        if name in ("any", "all"):
            return BOOL
        if name in ("argmax", "argmin"):
            return INTN
        if name in ("mean", "std", "var", "median", "nanmean") \
                and target.dtype in (BOOL, INTN):
            return FLOAT64
        if name in ("sum", "nansum", "cumsum", "prod") \
                and target.dtype is BOOL:
            return INTN
        return target.dtype

    # -- reshape ---------------------------------------------------------
    def _batch_preserving(self, dim_node: ast.AST, recv_node: ast.AST) -> bool:
        """First new dim provably keeps the batch extent: ``x.shape[0]``
        or ``len(x)`` (syntactic — anything else is unproven)."""
        if isinstance(dim_node, ast.Subscript):
            base = dim_node.value
            index = dim_node.slice
            if (
                isinstance(base, ast.Attribute) and base.attr == "shape"
                and isinstance(index, ast.Constant) and index.value == 0
            ):
                return True
        if isinstance(dim_node, ast.Call) \
                and isinstance(dim_node.func, ast.Name) \
                and dim_node.func.id == "len" and dim_node.args:
            return True
        return False

    def _reshape(self, call: ast.Call, recv: AbstractValue,
                 shape_args) -> AbstractValue:
        shape_args = list(shape_args)
        if len(shape_args) == 1 and isinstance(
            shape_args[0], (ast.Tuple, ast.List)
        ):
            shape_args = list(shape_args[0].elts)
        for node in shape_args:
            self._eval(node)
        if recv.shape.leading_batch:
            if shape_args and self._batch_preserving(shape_args[0], call):
                dims: Tuple = (BATCH_AXIS,) + tuple(
                    [None] * (len(shape_args) - 1)
                )
                return recv.with_shape(Shape(dims))
            self._event(
                "batch-reshape", call,
                "reshape does not provably preserve the leading batch "
                "axis N (first dim must be x.shape[0] or len(x))",
            )
            return recv.with_shape(Shape(None))
        dims = []
        for node in shape_args:
            if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                    and node.value >= 0:
                dims.append(node.value)
            else:
                dims.append(None)
        return recv.with_shape(Shape(tuple(dims)) if dims else Shape(None))

    # -- subscripts ------------------------------------------------------
    def _subscript(self, node: ast.Subscript) -> AbstractValue:
        value = self._eval(node.value)
        items = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        if value.shape.dims is None:
            for item in items:
                if not isinstance(item, (ast.Slice, ast.Constant)):
                    self._eval(item)
            return AbstractValue(value.dtype, Shape(None))
        dims = list(value.shape.dims)
        out: List = []
        axis = 0
        batch = value.shape.leading_batch
        for item in items:
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                remaining = sum(
                    1 for it in items[items.index(item) + 1:]
                    if not (isinstance(it, ast.Constant)
                            and it.value is None)
                )
                while axis < len(dims) - remaining:
                    out.append(dims[axis])
                    axis += 1
                continue
            if isinstance(item, ast.Constant) and item.value is None:
                out.append(1)
                continue
            canon = self.ctx.resolve(item) if isinstance(
                item, (ast.Name, ast.Attribute)
            ) else None
            if canon == "numpy.newaxis":
                out.append(1)
                continue
            if axis >= len(dims):
                return AbstractValue(value.dtype, Shape(None))
            if isinstance(item, ast.Slice):
                for part in (item.lower, item.upper, item.step):
                    if part is not None:
                        self._eval(part)
                full = item.lower is None and item.upper is None \
                    and item.step is None
                out.append(dims[axis] if full else None)
                axis += 1
                continue
            if isinstance(item, ast.Constant) and isinstance(item.value, int):
                if axis == 0 and batch:
                    self._event(
                        "batch-index", node,
                        "integer index selects within the leading batch "
                        "axis N (couples batch items)",
                    )
                axis += 1
                continue
            index = self._eval(item)
            if index.dtype is BOOL and index.shape.rank not in (0, None):
                if axis == 0 and batch:
                    self._event(
                        "batch-mask", node,
                        "boolean mask filters the leading batch axis N "
                        "(result depends on batch composition)",
                    )
                span = index.shape.rank or 1
                axis += span
                out.append(None)
                continue
            if index.dtype in (INTN, BOOL) and index.shape.dims == ():
                if axis == 0 and batch:
                    self._event(
                        "batch-index", node,
                        "integer index selects within the leading batch "
                        "axis N (couples batch items)",
                    )
                axis += 1
                continue
            if index.shape.rank not in (0, None) or index.dtype is INTN:
                # Fancy integer-array index.
                if axis == 0 and batch:
                    self._event(
                        "batch-index", node,
                        "array index re-orders the leading batch axis N",
                    )
                out.append(None)
                axis += 1
                continue
            # Unknown index expression: unknown result shape.
            return AbstractValue(value.dtype, Shape(None))
        out.extend(dims[axis:])
        return AbstractValue(value.dtype, Shape(tuple(out)))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
@dataclass
class ModuleDataflow:
    """Same-module inputs to per-function analysis (never cached alone)."""

    env: Dict[str, AbstractValue] = field(default_factory=dict)
    contracts: Dict[str, Contract] = field(default_factory=dict)
    module_events: Tuple[TensorEvent, ...] = ()


def analyze_module(ctx: ModuleContext) -> ModuleDataflow:
    """Pre-pass: parse every contract and evaluate top-level assigns."""
    contracts: Dict[str, Contract] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        spec = contract_spec(node, ctx)
        if spec is None:
            continue
        try:
            contracts[node.name] = parse_contract(spec)
        except ContractError:
            pass  # recorded as a contract-parse event per function
    interp = _Interp(ctx, {}, contracts)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            interp._stmt(stmt)
    return ModuleDataflow(
        env=dict(interp.env),
        contracts=contracts,
        module_events=tuple(interp.events),
    )


def analyze_function(
    node, ctx: ModuleContext, flow: ModuleDataflow
) -> TensorInfo:
    """Run the interpreter over one def and package its TensorInfo."""
    spec = contract_spec(node, ctx)
    contract: Optional[Contract] = None
    parse_event: Optional[TensorEvent] = None
    if spec is not None:
        try:
            contract = parse_contract(spec)
        except ContractError as exc:
            parse_event = TensorEvent(
                "contract-parse", node.lineno, node.col_offset + 1,
                f"unparseable tensor contract {spec!r}: {exc}",
            )
    interp = _Interp(ctx, flow.env, flow.contracts)
    params: List[str] = []
    arg_nodes = (
        list(node.args.posonlyargs) + list(node.args.args)
        + list(node.args.kwonlyargs)
    )
    declared = list(contract.params) if contract else []
    offset = 0
    if arg_nodes and arg_nodes[0].arg in ("self", "cls"):
        interp.env[arg_nodes[0].arg] = TOP_VALUE
        params.append(encode_value(TOP_VALUE))
        offset = 1
    for i, arg in enumerate(arg_nodes[offset:]):
        value = TOP_VALUE
        if i < len(declared) and declared[i] is not None:
            value = declared[i]
        interp.env[arg.arg] = value
        params.append(encode_value(value))
    for extra in (node.args.vararg, node.args.kwarg):
        if extra is not None:
            interp.env[extra.arg] = TOP_VALUE
    interp.exec_body(node.body)

    events = list(interp.events)
    if parse_event is not None:
        events.append(parse_event)
    returns = interp.returned
    returns_call = None
    if interp.return_calls and interp.return_count == len(interp.return_calls):
        returns_call = interp.return_calls[0]
    if contract is not None and contract.returns is not None \
            and returns is not None and returns_call is None:
        mismatch = _contract_mismatch(contract.returns, returns)
        if mismatch:
            events.append(TensorEvent(
                "contract", node.lineno, node.col_offset + 1,
                f"declared return {_describe(contract.returns)} but "
                f"inferred {_describe(returns)} ({mismatch}); fix the "
                f"code or the stale contract",
            ))
    encoded_returns = encode_value(returns) if returns is not None \
        else encode_value(AbstractValue(TOP, Shape(None)))
    return TensorInfo(
        contract=spec,
        params=tuple(params),
        returns=encoded_returns,
        returns_call=returns_call,
        events=tuple(events),
    )


def _describe(value: AbstractValue) -> str:
    return encode_value(value)


def _contract_mismatch(
    declared: AbstractValue, inferred: AbstractValue
) -> Optional[str]:
    """Concrete disagreement between a declared and inferred value.

    Only both-known facts count: ``top``/unknown on either side is not
    evidence, so the check reports high-confidence staleness only.
    """
    if TOP not in (declared.dtype, inferred.dtype) \
            and declared.dtype is not inferred.dtype:
        return f"dtype {inferred.dtype.name} != {declared.dtype.name}"
    dr, ir = declared.shape.rank, inferred.shape.rank
    if dr is not None and ir is not None:
        if dr != ir:
            return f"rank {ir} != {dr}"
        for d, i in zip(declared.shape.dims, inferred.shape.dims):
            if isinstance(d, int) and isinstance(i, int) and d != i:
                return f"dim {i} != {d}"
    return None
