"""The lint engine: walk files, run rules, apply suppressions + baseline.

One :class:`LintEngine` parses each file once per content version (a
shared AST cache keyed by path/mtime/size serves every rule and every
repeat run), collects findings from the selected rules, drops findings
suppressed inline with ``# lint: disable=RULE`` comments, debits the
baseline, and returns a :class:`LintReport`.

Two kinds of rules run per invocation:

* per-module rules see one :class:`ModuleContext` at a time, exactly as
  before;
* whole-program rules (:class:`~repro.lint.registry.ProgramRule`) run
  once all files are parsed, against the linked
  :class:`~repro.lint.callgraph.Program`. Their per-module summaries
  are cached by source hash when ``cache_dir`` is set, so warm reruns
  skip the summary extraction walk entirely.

Both kinds feed the same suppression/baseline pipeline, so an inline
``# lint: disable=SEED001`` or a baseline entry works identically for
cross-module findings.

Scope keys (``rel``) are paths relative to the linted package root:
when a file lives under a directory named ``repro`` the root is that
package directory, so ``src/repro/core/report.py`` scopes as
``core/report.py`` no matter where the checkout sits. Files outside any
``repro`` tree (scratch files, test fixtures) scope by their path
relative to the explicit ``root`` argument, or by bare filename.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .baseline import BaselineKey, split_unknown_rules
from .callgraph import SummaryCache, build_program, source_sha
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import ProgramRule, Rule, all_rules, get_rules

__all__ = ["LintEngine", "LintReport", "lint_paths"]

#: Inline suppression: ``# lint: disable=DET001`` or ``=DET001,MUT001``
#: or ``=all``, anywhere on the flagged line.
_SUPPRESS = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]  #: live findings, sorted by location
    baselined: Tuple[Finding, ...]  #: findings absorbed by the baseline
    suppressed: int  #: count dropped by inline ``# lint: disable``
    files: int  #: files checked
    stale_baseline: Tuple[Tuple[str, str, int], ...]  #: unused (rel, rule, n)
    #: Baseline entries naming rules that no longer exist (rel, rule, n);
    #: they cannot match any finding and should be deleted from the file.
    unknown_baseline: Tuple[Tuple[str, str, int], ...] = ()
    #: Analysis cost: files, wall seconds, per-rule finding counts, and
    #: call-graph size / summary-cache hit rate (``--stats``).
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return tuple(
            f for f in self.findings if f.severity is Severity.ERROR
        )

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed rule names (``{"ALL"}`` suppresses any rule)."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS.search(line)
        if match:
            out[lineno] = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
    return out


def _relative_scope(path: Path, root: Optional[Path]) -> str:
    """The rule-scoping path for ``path`` (see module docstring)."""
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        inside = parts[anchor + 1 :]
        if inside:
            return "/".join(inside)
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.name


class LintEngine:
    """Parses, caches, and checks; reusable across runs."""

    def __init__(
        self,
        rules: Optional[Sequence[str]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.rules: Tuple[Rule, ...] = get_rules(rules)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._ast_cache: Dict[Path, Tuple[Tuple[float, int], ModuleContext]] = {}
        self._sha_cache: Dict[Path, Tuple[Tuple[float, int], str]] = {}

    def _context(self, path: Path, root: Optional[Path]) -> ModuleContext:
        stat = path.stat()
        stamp = (stat.st_mtime, stat.st_size)
        cached = self._ast_cache.get(path)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        source = path.read_text(encoding="utf-8")
        ctx = ModuleContext.parse(
            path=str(path),
            rel=_relative_scope(path, root),
            source=source,
        )
        self._ast_cache[path] = (stamp, ctx)
        self._sha_cache[path] = (stamp, source_sha(source))
        return ctx

    def run(
        self,
        paths: Iterable[Union[str, Path]],
        baseline: Optional[Dict[BaselineKey, int]] = None,
        root: Optional[Union[str, Path]] = None,
    ) -> LintReport:
        started = time.perf_counter()
        root = Path(root) if root is not None else None
        files = sorted(
            {f for p in paths for f in self._expand(Path(p))}
        )
        live: List[Finding] = []
        baselined: List[Finding] = []
        suppressed = 0
        budget = dict(baseline or {})
        # Validate against the full registry, not this run's selection:
        # see split_unknown_rules.
        known = {rule.name for rule in all_rules()} | {"PARSE"}
        unknown = split_unknown_rules(budget, known)

        module_rules = [
            r for r in self.rules if not getattr(r, "whole_program", False)
        ]
        program_rules = [
            r for r in self.rules if getattr(r, "whole_program", False)
        ]
        contexts: List[ModuleContext] = []
        muted_by_rel: Dict[str, Dict[int, Set[str]]] = {}

        def _admit(finding: Finding) -> None:
            nonlocal suppressed
            rules_here = muted_by_rel.get(finding.rel, {}).get(finding.line, ())
            if "ALL" in rules_here or finding.rule in rules_here:
                suppressed += 1
                return
            key = (finding.rel, finding.rule)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
                return
            live.append(finding)

        for path in files:
            try:
                ctx = self._context(path, root)
            except SyntaxError as exc:
                live.append(
                    Finding(
                        rule="PARSE",
                        path=str(path),
                        rel=_relative_scope(path, root),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            contexts.append(ctx)
            muted_by_rel[ctx.rel] = _suppressions(ctx.lines)
            found: List[Finding] = []
            for rule in module_rules:
                found.extend(rule.check(ctx))
            for finding in sorted(found, key=Finding.sort_key):
                _admit(finding)

        graph_stats: Dict[str, object] = {}
        if program_rules and contexts:
            cache = (
                SummaryCache(self.cache_dir)
                if self.cache_dir is not None
                else None
            )
            program = build_program(
                [(ctx, self._sha_cache[Path(ctx.path)][1]) for ctx in contexts],
                cache=cache,
            )
            graph_stats = dict(program.stats)
            found = []
            for rule in program_rules:
                found.extend(rule.check_program(program))
            for finding in sorted(found, key=Finding.sort_key):
                _admit(finding)

        stale = tuple(
            (rel, rule, count)
            for (rel, rule), count in sorted(budget.items())
            if count > 0
        )
        rule_counts: Dict[str, int] = {}
        for finding in live:
            rule_counts[finding.rule] = rule_counts.get(finding.rule, 0) + 1
        stats: Dict[str, object] = {
            "files": len(files),
            "wall_s": round(time.perf_counter() - started, 4),
            "rule_counts": dict(sorted(rule_counts.items())),
            "callgraph": graph_stats,
        }
        return LintReport(
            findings=tuple(sorted(live, key=Finding.sort_key)),
            baselined=tuple(baselined),
            suppressed=suppressed,
            files=len(files),
            stale_baseline=stale,
            unknown_baseline=unknown,
            stats=stats,
        )

    @staticmethod
    def _expand(path: Path) -> Iterable[Path]:
        if path.is_dir():
            return sorted(p for p in path.rglob("*.py") if p.is_file())
        if path.suffix == ".py" and path.is_file():
            return (path,)
        if not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
        return ()


def lint_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[BaselineKey, int]] = None,
    root: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> LintReport:
    """One-shot convenience wrapper around :class:`LintEngine`."""
    return LintEngine(rules, cache_dir=cache_dir).run(
        paths, baseline=baseline, root=root
    )
