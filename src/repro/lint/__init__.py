"""Static analysis enforcing the repo's determinism & purity invariants.

The reproduction's methodology only holds if instability comes from the
*modeled* perturbation sources — sensor noise, ISP parameterization,
codecs, OS decoders — never from hidden nondeterminism in our own code.
PR 1 and PR 2 stated those invariants (identity-derived seeds,
bit-identical serial vs. parallel runs, side-band-only observability)
and spot-checked them with a handful of tests; this package enforces
them mechanically, repo-wide, on every file, in CI.

Zero dependencies beyond the stdlib ``ast`` module. The pieces:

* :mod:`~repro.lint.registry` — rule registry with per-rule severity;
* :mod:`~repro.lint.rules_determinism` — DET001 (global RNG), DET002
  (wall clock / entropy), DET003 (hash-ordered iteration);
* :mod:`~repro.lint.rules_purity` — MUT001 (parameter mutation), OBS001
  (obs hook discipline), PROC001 (module-level mutable state);
* :mod:`~repro.lint.engine` — shared-AST-cache file walker with inline
  ``# lint: disable=RULE`` suppressions;
* :mod:`~repro.lint.baseline` — committed grandfather list so the CI
  gate (``python -m repro lint``) fails only on *new* findings;
* :mod:`~repro.lint.cli` — the ``python -m repro lint`` front end.

Programmatic use::

    from repro.lint import lint_paths

    report = lint_paths(["src/repro"], rules=("DET001",))
    assert not report.findings, report.findings[0].render()
"""

from __future__ import annotations

from .baseline import format_baseline, load_baseline, parse_baseline, write_baseline
from .context import ModuleContext
from .engine import LintEngine, LintReport, lint_paths
from .findings import Finding, Severity
from .registry import Rule, all_rules, get_rules, register

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "format_baseline",
    "get_rules",
    "lint_paths",
    "load_baseline",
    "parse_baseline",
    "register",
    "write_baseline",
]
