"""Static analysis enforcing the repo's determinism & purity invariants.

The reproduction's methodology only holds if instability comes from the
*modeled* perturbation sources — sensor noise, ISP parameterization,
codecs, OS decoders — never from hidden nondeterminism in our own code.
PR 1 and PR 2 stated those invariants (identity-derived seeds,
bit-identical serial vs. parallel runs, side-band-only observability)
and spot-checked them with a handful of tests; this package enforces
them mechanically, repo-wide, on every file, in CI.

Zero dependencies beyond the stdlib ``ast`` module. The pieces:

* :mod:`~repro.lint.registry` — rule registry with per-rule severity;
* :mod:`~repro.lint.rules_determinism` — DET001 (global RNG), DET002
  (wall clock / entropy), DET003 (hash-ordered iteration);
* :mod:`~repro.lint.rules_purity` — MUT001 (parameter mutation), OBS001
  (obs hook discipline), PROC001 (module-level mutable state);
* :mod:`~repro.lint.callgraph` — project-wide call graph with
  hash-cached per-function summaries, backing the whole-program rules;
* :mod:`~repro.lint.rules_seed` — SEED001 (seed-provenance taint);
* :mod:`~repro.lint.rules_async` — ASY001-ASY003 (event-loop safety for
  the serving path);
* :mod:`~repro.lint.rules_effects` — PUR002 (obs stays a write-only
  sink on pixel/byte paths, checked across module boundaries);
* :mod:`~repro.lint.lattice` / :mod:`~repro.lint.dataflow` — abstract
  interpreter over ndarray values (dtype chain x shape lattice), feeding
  tensor facts into the cached function summaries;
* :mod:`~repro.lint.contracts` — the zero-cost ``@tensor_contract``
  decorator stages declare dtype/shape signatures with;
* :mod:`~repro.lint.rules_numeric` — NUM001 (implicit float32->float64
  promotion), NUM002 (order-sensitive axis-free reductions), SHAPE001
  (leading-batch-axis safety + contract conformance);
* :mod:`~repro.lint.engine` — shared-AST-cache file walker with inline
  ``# lint: disable=RULE`` suppressions;
* :mod:`~repro.lint.baseline` — committed grandfather list so the CI
  gate (``python -m repro lint``) fails only on *new* findings;
* :mod:`~repro.lint.sarif` — SARIF 2.1.0 output for code-scanning UIs;
* :mod:`~repro.lint.cli` — the ``python -m repro lint`` front end.

Programmatic use::

    from repro.lint import lint_paths

    report = lint_paths(["src/repro"], rules=("DET001",))
    assert not report.findings, report.findings[0].render()
"""

from __future__ import annotations

from .baseline import (
    format_baseline,
    load_baseline,
    parse_baseline,
    split_unknown_rules,
    write_baseline,
)
from .callgraph import Program, SummaryCache, build_program
from .context import ModuleContext
from .contracts import tensor_contract
from .engine import LintEngine, LintReport, lint_paths
from .findings import Finding, Severity
from .registry import ProgramRule, Rule, all_rules, get_rules, register
from .sarif import to_sarif

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Program",
    "ProgramRule",
    "Rule",
    "Severity",
    "SummaryCache",
    "all_rules",
    "build_program",
    "format_baseline",
    "get_rules",
    "lint_paths",
    "load_baseline",
    "parse_baseline",
    "register",
    "split_unknown_rules",
    "tensor_contract",
    "to_sarif",
    "write_baseline",
]
