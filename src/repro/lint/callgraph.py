"""Project-wide call graph, per-function summaries, and the summary cache.

The whole-program rules (SEED001, ASY001-003, PUR002) need to see
*across* module boundaries: an RNG born in ``nn/`` flows through
``runner/`` into ``codecs/``, and a blocking call three frames below an
``async def`` stalls the event loop without any single-file rule firing.
This module builds that view in two stages:

1. **Summaries** — :func:`summarize_module` reduces one parsed module to
   a :class:`ModuleSummary`: per-function call sites (with ``await`` /
   executor-shim flags), RNG construction sites classified by seed
   provenance, obs value-uses, locks held across ``await``, bare
   ``create_task`` statements, and direct blocking primitives. A
   summary depends only on its own module's source, so it is cached by
   content hash (:class:`SummaryCache`) and survives across runs.
2. **Linking** — :class:`Program` indexes every summary, resolves call
   targets (import aliases, ``self.`` methods, annotated attributes and
   locals, base classes), and answers the reachability questions the
   rules ask: "does this async function transitively block?", "is this
   RNG birth reachable from a capture entry point, and via which
   chain?".

Resolution is deliberately conservative: an edge only exists when the
target is unambiguous, so the passes report high-confidence findings
instead of drowning the gate in maybes.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .context import ModuleContext, dotted_name
from .dataflow import TensorEvent, TensorInfo, analyze_function, analyze_module
from .rules_determinism import _WALL_CLOCK

__all__ = [
    "CallSite",
    "RngBirth",
    "Fact",
    "FunctionSummary",
    "ClassInfo",
    "ModuleSummary",
    "SummaryCache",
    "Program",
    "build_program",
    "module_name",
    "summarize_module",
]

#: Bump whenever summary extraction changes shape or semantics; stale
#: cache files are discarded wholesale rather than misread.
#: v2: per-function tensor dataflow info + per-module import aliases
#: (exact link-time resolution replaced the suffix index).
SUMMARY_VERSION = "repro-lint-summary-v2"

#: Canonical names that construct an RNG from a seed expression.
_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: The blessed derivation family in runner/seeds.py (matched by the
#: final segment: the same function is legitimately reachable under
#: its defining name and under package re-export names).
_DERIVE_FAMILY = frozenset({"derive_rng", "unit_entropy", "seed_component"})

#: Calls that block the calling thread (and therefore the event loop).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "numpy.load",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
    }
)

#: Method names that are synchronous IO on any plausible receiver.
_BLOCKING_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: ``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)``: calls in
#: their argument position run off-loop, so they shield blocking work.
_EXECUTOR_SHIMS = frozenset({"run_in_executor", "to_thread"})

#: Homogeneous-container annotation heads whose element type is worth
#: tracking: iterating one binds the loop variable to the element class.
_CONTAINER_NAMES = (
    "List", "Sequence", "Tuple", "Iterable", "Iterator", "Set", "FrozenSet",
    "list", "sequence", "tuple", "set", "frozenset",
)

#: obs helpers that record a measurement; their return value must never
#: be consumed (statement/with position only) — see OBS001/PUR002.
_OBS_MEASUREMENT_HELPERS = frozenset({"count", "gauge", "observe"})

#: Constructors whose instances are locks/semaphores for ASY002.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
        "asyncio.Lock",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
        "asyncio.Condition",
        "multiprocessing.Lock",
    }
)


def module_name(rel: str) -> str:
    """Canonical dotted module name for a scope-relative path.

    Every linted tree is rooted at ``repro`` by convention (matching
    how :mod:`repro.lint.context` resolves relative imports), so fixture
    packages under a tmp root link exactly like the real package.
    """
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + [p for p in parts if p])


# ----------------------------------------------------------------------
# Summary data model (JSON-serializable for the cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    raw: str  #: the call as written (display only)
    target: Optional[str]  #: canonical dotted target, if determinable
    line: int
    col: int
    awaited: bool = False  #: directly under an ``await``
    shielded: bool = False  #: inside run_in_executor/to_thread arguments


@dataclass(frozen=True)
class RngBirth:
    """One RNG constructor call, classified by seed provenance."""

    line: int
    col: int
    kind: str  #: literal | wallclock | untracked | tracked | derived | bare-derive
    detail: str


@dataclass(frozen=True)
class Fact:
    """A located single fact (obs use, lock-across-await, bare task...)."""

    line: int
    col: int
    what: str
    shielded: bool = False


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the program rules need to know about one function."""

    qual: str  #: dotted qualname within the module ("Cls.meth", "f.inner")
    rel: str
    path: str
    line: int
    col: int
    is_async: bool
    params: Tuple[str, ...]
    rng_params: Tuple[str, ...]
    calls: Tuple[CallSite, ...]
    births: Tuple[RngBirth, ...]
    obs_uses: Tuple[Fact, ...]
    lock_awaits: Tuple[Fact, ...]
    bare_tasks: Tuple[Fact, ...]
    blocking: Tuple[Fact, ...]
    tensor: TensorInfo = TensorInfo()

    @property
    def key(self) -> str:
        return f"{module_name(self.rel)}.{self.qual}"

    @property
    def display(self) -> str:
        return f"{self.rel}:{self.qual}"


@dataclass(frozen=True)
class ClassInfo:
    """Per-class resolution aids: bases and attribute types."""

    name: str
    rel: str
    bases: Tuple[str, ...]  #: canonical dotted base names
    attr_types: Tuple[Tuple[str, str], ...]  #: (attr, canonical class)
    methods: Tuple[str, ...]

    @property
    def key(self) -> str:
        return f"{module_name(self.rel)}.{self.name}"


@dataclass(frozen=True)
class ModuleSummary:
    """One module's functions and classes, cacheable by content hash."""

    rel: str
    path: str
    sha: str
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassInfo, ...]
    #: Import aliases, for exact link-time resolution of re-exports
    #: (the context is gone when a summary is reloaded from cache).
    aliases: Tuple[Tuple[str, str], ...] = ()


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _param_names(args: ast.arguments) -> Tuple[str, ...]:
    names = [
        a.arg
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.append(extra.arg)
    return tuple(names)


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotations ('Phone')
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def _rng_param_names(args: ast.arguments) -> Tuple[str, ...]:
    """Parameters that carry an RNG (by name or annotation)."""
    out = []
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        text = _annotation_text(a.annotation)
        if a.arg == "rng" or "Generator" in text or text.endswith("random.Random"):
            out.append(a.arg)
    return tuple(out)


class _ModuleExtractor:
    """Single pass turning one :class:`ModuleContext` into summaries."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.mod = module_name(ctx.rel)
        self.obs_names = {
            local for local, canon in ctx.aliases.items() if canon == "repro.obs"
        }
        self.top_defs: Dict[str, str] = {}  # name -> "func" | "class"
        self.local_returns: Dict[str, str] = {}  # top-level fn -> return ann
        self.all_quals: Set[str] = set()
        self.classes: List[ClassInfo] = []
        self.functions: List[FunctionSummary] = []
        # Statement-, with-, and return-position call ids, module-wide
        # (the OBS001 notion of where an obs value may and may not flow).
        self.stmt_calls: Set[int] = set()
        self.with_calls: Set[int] = set()
        self.return_calls: Set[int] = set()

    def run(self) -> Tuple[Tuple[FunctionSummary, ...], Tuple[ClassInfo, ...]]:
        tree = self.ctx.tree
        self.flow = analyze_module(self.ctx)
        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self.stmt_calls.add(id(node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        self.with_calls.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                for inner in ast.walk(node.value):
                    if isinstance(inner, ast.Call):
                        self.return_calls.add(id(inner))
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_defs[stmt.name] = "func"
                ann = self._canon_type(_annotation_text(stmt.returns))
                if ann:
                    self.local_returns[stmt.name] = ann
            elif isinstance(stmt, ast.ClassDef):
                self.top_defs[stmt.name] = "class"
        self._collect_quals(tree, prefix="")
        # Module-level statements form a synthetic "<module>" function so
        # import-time RNG births and calls participate in the graph.
        self._extract_function(
            node=None, qual="<module>", body=tree.body, is_async=False,
            args=None, cls=None,
        )
        self._walk_defs(tree.body, prefix="", cls=None)
        return tuple(self.functions), tuple(self.classes)

    # -- qual discovery ------------------------------------------------
    def _collect_quals(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                self.all_quals.add(qual)
                self._collect_quals(child, prefix=f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                self._collect_quals(child, prefix=f"{prefix}{child.name}.")
            else:
                self._collect_quals(child, prefix=prefix)

    # -- definition walk -----------------------------------------------
    def _walk_defs(
        self,
        body,
        prefix: str,
        cls: Optional[ast.ClassDef],
        enclosing_params: Tuple[str, ...] = (),
        enclosing_exprs: Optional[Dict[str, ast.AST]] = None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                self._extract_function(
                    node=stmt,
                    qual=qual,
                    body=stmt.body,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    args=stmt.args,
                    cls=cls,
                    enclosing_params=enclosing_params,
                    enclosing_exprs=enclosing_exprs,
                )
                # Nested defs close over this function's params/locals:
                # params stay "tracked" provenance, assigned locals carry
                # their expressions so a closed-over literal stays literal.
                exprs = dict(enclosing_exprs or {})
                for inner in self._shallow_walk(stmt.body):
                    if isinstance(inner, ast.Assign):
                        for target in inner.targets:
                            if isinstance(target, ast.Name):
                                exprs.setdefault(target.id, inner.value)
                self._walk_defs(
                    stmt.body,
                    prefix=f"{qual}.",
                    cls=cls,
                    enclosing_params=enclosing_params + _param_names(stmt.args),
                    enclosing_exprs=exprs,
                )
            elif isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt, prefix)
                self._walk_defs(
                    stmt.body,
                    prefix=f"{prefix}{stmt.name}.",
                    cls=stmt,
                    enclosing_params=enclosing_params,
                    enclosing_exprs=enclosing_exprs,
                )

    def _extract_class(self, node: ast.ClassDef, prefix: str) -> None:
        bases = []
        for base in node.bases:
            canon = self._canon_type(_annotation_text(base))
            if canon:
                bases.append(canon)
        attr_types: Dict[str, str] = {}
        methods = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                canon = self._canon_type(_annotation_text(stmt.annotation))
                if canon:
                    attr_types[stmt.target.id] = canon
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                param_types = {}
                for a in (
                    list(stmt.args.posonlyargs)
                    + list(stmt.args.args)
                    + list(stmt.args.kwonlyargs)
                ):
                    canon = self._canon_type(_annotation_text(a.annotation))
                    if canon:
                        param_types[a.arg] = canon
                for inner in ast.walk(stmt):
                    attr, canon = self._self_attr_binding(inner, param_types)
                    if attr and canon:
                        attr_types.setdefault(attr, canon)
        self.classes.append(
            ClassInfo(
                name=f"{prefix}{node.name}",
                rel=self.ctx.rel,
                bases=tuple(bases),
                attr_types=tuple(sorted(attr_types.items())),
                methods=tuple(methods),
            )
        )

    def _self_attr_binding(
        self, node: ast.AST, param_types: Optional[Dict[str, str]] = None
    ) -> Tuple[str, str]:
        """``self.x = SomeClass(...)`` / ``self.x: T`` / ``self.x = param``."""
        target = value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            ann = self._canon_type(_annotation_text(node.annotation))
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and ann
            ):
                return target.attr, ann
            value = node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if isinstance(value, ast.Call):
                canon = self._constructor_type(value)
                if canon:
                    return target.attr, canon
            if isinstance(value, ast.Name) and param_types:
                canon = param_types.get(value.id, "")
                if canon:
                    return target.attr, canon
        return "", ""

    def _constructor_type(self, call: ast.Call) -> str:
        """The class a constructor-looking call instantiates, if any."""
        func = call.func
        if isinstance(func, ast.Name) and self.top_defs.get(func.id) == "class":
            return f"{self.mod}.{func.id}"
        if isinstance(func, ast.Name) and func.id in self.local_returns:
            return self.local_returns[func.id]
        canon = self.ctx.resolve(func)
        if canon and canon.rsplit(".", 1)[-1][:1].isupper():
            return canon
        return ""

    def _canon_type(self, text: str) -> str:
        """Canonicalize an annotation/base like ``Phone`` or ``m.Cls``.

        ``Optional[X]`` / ``X | None`` unwrap to ``X``: for call-target
        binding, "maybe None" still tells us which class the attribute's
        methods come from when it is set. Homogeneous containers
        (``List[X]``, ``Sequence[X]``, ``Tuple[X, ...]``) canonicalize
        to ``X[]`` — the element type, marked so only *iteration*
        targets bind to it, never the container itself.
        """
        text = text.strip().strip("'\"")
        while True:
            for prefix in ("Optional[", "typing.Optional["):
                if text.startswith(prefix) and text.endswith("]"):
                    text = text[len(prefix):-1].strip()
                    break
            else:
                break
        for none_pattern in (" | None", "None | "):
            text = text.replace(none_pattern, "").strip()
        for container in _CONTAINER_NAMES:
            for prefix in (f"{container}[", f"typing.{container}["):
                if text.startswith(prefix) and text.endswith("]"):
                    inner = text[len(prefix):-1].strip()
                    if inner.endswith(", ..."):
                        inner = inner[:-len(", ...")].strip()
                    elem = self._canon_type(inner)
                    return f"{elem}[]" if elem else ""
        if not text or not text.replace(".", "").replace("_", "").isalnum():
            return ""
        head, _, tail = text.partition(".")
        if not tail and self.top_defs.get(head) == "class":
            return f"{self.mod}.{head}"
        resolved = self.ctx.aliases.get(head)
        if resolved is None:
            return ""
        return f"{resolved}.{tail}" if tail else resolved

    # -- per-function extraction ---------------------------------------
    def _extract_function(self, node, qual, body, is_async, args, cls,
                          enclosing_params=(), enclosing_exprs=None) -> None:
        own_params = _param_names(args) if args is not None else ()
        params = own_params + tuple(enclosing_params)
        rng_params = _rng_param_names(args) if args is not None else ()
        local_types: Dict[str, str] = {}
        local_exprs: Dict[str, ast.AST] = {}
        if args is not None:
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                canon = self._canon_type(_annotation_text(a.annotation))
                if canon:
                    local_types[a.arg] = canon
        # Pre-pass: local assignments for type binding and seed tracking.
        for stmt in self._shallow_walk(body):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_loop_element(stmt, cls, local_types)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    local_exprs.setdefault(target.id, stmt.value)
                    if isinstance(stmt.value, ast.Call):
                        canon = self._constructor_type(stmt.value)
                        if canon:
                            local_types.setdefault(target.id, canon)
        # Closed-over names resolve only where this function's own
        # params/locals don't shadow them.
        for name, expr in (enclosing_exprs or {}).items():
            if name not in own_params:
                local_exprs.setdefault(name, expr)

        facts = _FunctionFacts()
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._visit(stmt, facts, params, local_types, local_exprs,
                        qual=qual, cls=cls, shielded=False)
        anchor = node if node is not None else (body[0] if body else None)
        if node is not None:
            tensor = analyze_function(node, self.ctx, self.flow)
        else:
            # Module-level dataflow events anchor on "<module>".
            tensor = TensorInfo(events=self.flow.module_events)
        self.functions.append(
            FunctionSummary(
                qual=qual,
                rel=self.ctx.rel,
                path=self.ctx.path,
                line=getattr(anchor, "lineno", 1),
                col=getattr(anchor, "col_offset", 0) + 1,
                is_async=is_async,
                params=params,
                rng_params=rng_params,
                calls=tuple(facts.calls),
                births=tuple(facts.births),
                obs_uses=tuple(facts.obs_uses),
                lock_awaits=tuple(facts.lock_awaits),
                bare_tasks=tuple(facts.bare_tasks),
                blocking=tuple(facts.blocking),
                tensor=tensor,
            )
        )

    def _bind_loop_element(self, stmt, cls, local_types) -> None:
        """``for stage in self.stages:`` binds ``stage`` to the element
        type of the attribute's container annotation.

        Like ``self.attr.method`` calls, the binding is deferred to link
        time as ``mod.Cls.<elem>attr`` — the attribute's recorded type
        must end in ``[]`` (a container) for the element to resolve, so
        a scalar attribute never leaks a phantom type onto a loop var.
        ``enumerate(self.attr)`` with a two-name tuple target binds the
        second name.
        """
        target, source = stmt.target, stmt.iter
        if (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and source.func.id == "enumerate"
            and source.args
        ):
            source = source.args[0]
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                target = target.elts[1]
        if not isinstance(target, ast.Name):
            return
        if (
            cls is not None
            and isinstance(source, ast.Attribute)
            and isinstance(source.value, ast.Name)
            and source.value.id == "self"
        ):
            local_types.setdefault(
                target.id, f"{self.mod}.{cls.name}.<elem>{source.attr}"
            )

    def _shallow_walk(self, body) -> Iterator[ast.AST]:
        """Walk statements without descending into nested defs."""
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _visit(self, node, facts, params, local_types, local_exprs,
               qual, cls, shielded) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        awaited_call = None
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited_call = node.value
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            name = self._call_attr_name(call)
            if name in ("create_task", "ensure_future"):
                facts.bare_tasks.append(
                    Fact(call.lineno, call.col_offset + 1, name)
                )
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._check_lock_across_await(node, facts)
        if isinstance(node, ast.Call):
            self._record_call(
                node, facts, params, local_types, local_exprs,
                qual=qual, cls=cls, shielded=shielded, awaited=False,
            )
            return  # _record_call recursed into children itself
        for child in ast.iter_child_nodes(node):
            if child is awaited_call:
                self._record_call(
                    child, facts, params, local_types, local_exprs,
                    qual=qual, cls=cls, shielded=shielded, awaited=True,
                )
            else:
                self._visit(child, facts, params, local_types, local_exprs,
                            qual=qual, cls=cls, shielded=shielded)

    def _record_call(self, call, facts, params, local_types, local_exprs,
                     qual, cls, shielded, awaited) -> None:
        raw = self._call_display(call)
        target = self._call_target(call, qual, cls, local_types)
        canon = self.ctx.resolve(call.func)
        attr_name = self._call_attr_name(call)
        shim = attr_name in _EXECUTOR_SHIMS

        if target is not None or canon is not None:
            facts.calls.append(
                CallSite(
                    raw=raw,
                    target=target or canon,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    awaited=awaited,
                    shielded=shielded,
                )
            )
        self._record_birth(call, canon, facts, params, local_exprs)
        self._record_blocking(call, canon, attr_name, facts, shielded)
        self._record_obs_use(call, facts)

        child_shield = shielded or shim
        for child in ast.iter_child_nodes(call):
            self._visit(child, facts, params, local_types, local_exprs,
                        qual=qual, cls=cls, shielded=child_shield)

    def _record_birth(self, call, canon, facts, params, local_exprs) -> None:
        last = (canon or "").rsplit(".", 1)[-1]
        if last in _DERIVE_FAMILY:
            if last == "derive_rng" and len(call.args) + len(call.keywords) < 2:
                facts.births.append(
                    RngBirth(
                        call.lineno,
                        call.col_offset + 1,
                        "bare-derive",
                        "derive_rng() without identity parts yields the "
                        "same stream everywhere",
                    )
                )
            return
        if canon not in _RNG_CONSTRUCTORS:
            return
        seed = call.args[0] if call.args else None
        if seed is None:
            for kw in call.keywords:
                if kw.arg == "seed":
                    seed = kw.value
        if seed is None:
            return  # unseeded constructors are DET001's finding
        kind = _classify_seed(seed, params, local_exprs, self.ctx)
        facts.births.append(
            RngBirth(
                call.lineno,
                call.col_offset + 1,
                kind,
                f"{canon}({_expr_text(seed)})",
            )
        )

    def _record_blocking(self, call, canon, attr_name, facts, shielded) -> None:
        what = None
        func = call.func
        if canon in _BLOCKING_CALLS:
            what = canon
        elif isinstance(func, ast.Name) and func.id in ("open", "input"):
            what = func.id
        elif attr_name in _BLOCKING_ATTRS:
            what = f".{attr_name}()"
        elif attr_name == "result" and not call.args and not call.keywords:
            what = ".result()"
        if what is not None:
            facts.blocking.append(
                Fact(call.lineno, call.col_offset + 1, what, shielded=shielded)
            )

    def _record_obs_use(self, call, facts) -> None:
        """Value-uses of obs helpers, mirroring OBS001's contract.

        Holding the sink handle (``ob = obs.active()``) is how modules
        write to obs at all, so the handle accessor in plain value
        position is fine. What counts as a violation: a *measurement*
        helper's return value consumed anywhere, or any obs helper
        flowing into a ``return`` — both put observability data on a
        path that can reach computation.
        """
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.obs_names
        ):
            return
        if id(call) in self.return_calls:
            pass  # obs value flowing into a return is always a use
        elif id(call) in self.stmt_calls or id(call) in self.with_calls:
            return
        elif func.attr not in _OBS_MEASUREMENT_HELPERS:
            return
        facts.obs_uses.append(
            Fact(call.lineno, call.col_offset + 1, f"obs.{func.attr}()")
        )

    def _check_lock_across_await(self, node, facts) -> None:
        for item in node.items:
            if not self._lock_like(item.context_expr):
                continue
            for inner in self._shallow_walk(node.body):
                if isinstance(inner, ast.Await):
                    held = "with" if isinstance(node, ast.With) else "async with"
                    facts.lock_awaits.append(
                        Fact(
                            node.lineno,
                            node.col_offset + 1,
                            f"{held} {_expr_text(item.context_expr)}",
                        )
                    )
                    break

    def _lock_like(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            canon = self.ctx.resolve(expr.func) or ""
            return canon in _LOCK_CONSTRUCTORS
        parts = dotted_name(expr)
        if not parts:
            return False
        last = parts[-1].lower()
        return "lock" in last or last.startswith("sem")

    def _call_attr_name(self, call: ast.Call) -> str:
        return call.func.attr if isinstance(call.func, ast.Attribute) else ""

    def _call_display(self, call: ast.Call) -> str:
        parts = dotted_name(call.func)
        if parts:
            return ".".join(parts)
        return self._call_attr_name(call) or "<call>"

    def _call_target(self, call, qual, cls, local_types) -> Optional[str]:
        """Canonical dotted target for graph linking, when determinable."""
        parts = dotted_name(call.func)
        if parts is None:
            return None
        head = parts[0]
        if head in ("self", "cls") and cls is not None:
            if len(parts) == 2:
                return f"{self.mod}.{cls.name}.{parts[1]}"
            if len(parts) == 3:
                # "self.attr.method": the attribute's class is recorded in
                # ClassInfo.attr_types and resolved at link time.
                return f"{self.mod}.{cls.name}.<attr>{parts[1]}.{parts[2]}"
            return None
        if head in local_types and len(parts) == 2:
            return f"{local_types[head]}.{parts[1]}"
        if len(parts) == 1:
            # Bare name: enclosing nested defs first, then module scope.
            scope = qual if qual != "<module>" else ""
            while True:
                candidate = f"{scope}.{head}" if scope else head
                if candidate in self.all_quals:
                    return f"{self.mod}.{candidate}"
                if not scope:
                    break
                scope = scope.rpartition(".")[0]
            if self.top_defs.get(head) == "class":
                return f"{self.mod}.{head}.__init__"
            if head in self.ctx.aliases:
                return self.ctx.aliases[head]
            return None
        return self.ctx.resolve(call.func)


class _FunctionFacts:
    """Mutable accumulator while walking one function body."""

    def __init__(self) -> None:
        self.calls: List[CallSite] = []
        self.births: List[RngBirth] = []
        self.obs_uses: List[Fact] = []
        self.lock_awaits: List[Fact] = []
        self.bare_tasks: List[Fact] = []
        self.blocking: List[Fact] = []


def _expr_text(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse of synthetic nodes
        return "<expr>"
    return text if len(text) <= 60 else text[:57] + "..."


def _classify_seed(
    expr: ast.AST,
    params: Sequence[str],
    local_exprs: Dict[str, ast.AST],
    ctx: ModuleContext,
    _depth: int = 0,
) -> str:
    """Provenance class of a seed expression.

    ``tracked`` (parameter / attribute / derive-family) beats
    ``untracked`` beats ``literal``; ``wallclock`` beats everything.
    Attribute chains are conservatively accepted: fields like
    ``self.seed`` or ``config.seed`` are set at construction time from
    threaded configuration, which the per-call-site analysis cannot see.
    """
    if _depth > 8:
        return "untracked"
    kinds: Set[str] = set()
    for node in [expr]:
        if isinstance(node, ast.Constant):
            kinds.add("literal")
        elif isinstance(node, ast.Name):
            if node.id in params:
                kinds.add("tracked")
            elif node.id in local_exprs:
                kinds.add(
                    _classify_seed(
                        local_exprs[node.id], params, local_exprs, ctx,
                        _depth + 1,
                    )
                )
            else:
                kinds.add("untracked")
        elif isinstance(node, ast.Attribute):
            kinds.add("tracked")
        elif isinstance(node, ast.Call):
            canon = ctx.resolve(node.func) or ""
            if canon.rsplit(".", 1)[-1] in _DERIVE_FAMILY:
                kinds.add("derived")
            elif canon in _WALL_CLOCK:
                kinds.add("wallclock")
            else:
                seeds = list(node.args) + [kw.value for kw in node.keywords]
                if not seeds:
                    kinds.add("untracked")
                for arg in seeds:
                    kinds.add(
                        _classify_seed(arg, params, local_exprs, ctx, _depth + 1)
                    )
        else:
            for child in ast.iter_child_nodes(node):
                kinds.add(
                    _classify_seed(child, params, local_exprs, ctx, _depth + 1)
                )
    if "wallclock" in kinds:
        return "wallclock"
    if "derived" in kinds and not kinds & {"untracked"}:
        return "derived"
    if "tracked" in kinds:
        return "tracked"
    if "untracked" in kinds:
        return "untracked"
    return "literal"


def summarize_module(ctx: ModuleContext, sha: str) -> ModuleSummary:
    """Reduce one parsed module to its cacheable summary."""
    functions, classes = _ModuleExtractor(ctx).run()
    return ModuleSummary(
        rel=ctx.rel, path=ctx.path, sha=sha, functions=functions,
        classes=classes, aliases=tuple(sorted(ctx.aliases.items())),
    )


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Persistent summary cache
# ----------------------------------------------------------------------
class SummaryCache:
    """``summaries.json`` under ``--cache-dir``: rel -> (sha, summary)."""

    def __init__(self, directory: Path):
        self.path = Path(directory) / "summaries.json"
        self._entries: Dict[str, Dict] = self._load()
        self._dirty = False

    def _load(self) -> Dict[str, Dict]:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if payload.get("version") != SUMMARY_VERSION:
            return {}
        modules = payload.get("modules")
        return modules if isinstance(modules, dict) else {}

    def get(self, rel: str, sha: str, path: str) -> Optional[ModuleSummary]:
        entry = self._entries.get(rel)
        if entry is None or entry.get("sha") != sha or entry.get("path") != path:
            return None
        try:
            return _summary_from_dict(entry["summary"])
        except (KeyError, TypeError):
            return None

    def put(self, summary: ModuleSummary) -> None:
        self._entries[summary.rel] = {
            "sha": summary.sha,
            "path": summary.path,
            "summary": _summary_to_dict(summary),
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": SUMMARY_VERSION, "modules": self._entries}
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        self._dirty = False


def _summary_to_dict(summary: ModuleSummary) -> Dict:
    return {
        "rel": summary.rel,
        "path": summary.path,
        "sha": summary.sha,
        "functions": [
            {
                "qual": f.qual, "rel": f.rel, "path": f.path, "line": f.line,
                "col": f.col, "is_async": f.is_async,
                "params": list(f.params), "rng_params": list(f.rng_params),
                "calls": [list(astuple) for astuple in (
                    (c.raw, c.target, c.line, c.col, c.awaited, c.shielded)
                    for c in f.calls
                )],
                "births": [
                    [b.line, b.col, b.kind, b.detail] for b in f.births
                ],
                "obs_uses": [_fact_to_list(x) for x in f.obs_uses],
                "lock_awaits": [_fact_to_list(x) for x in f.lock_awaits],
                "bare_tasks": [_fact_to_list(x) for x in f.bare_tasks],
                "blocking": [_fact_to_list(x) for x in f.blocking],
                "tensor": _tensor_to_dict(f.tensor),
            }
            for f in summary.functions
        ],
        "classes": [
            {
                "name": c.name, "rel": c.rel, "bases": list(c.bases),
                "attr_types": [list(pair) for pair in c.attr_types],
                "methods": list(c.methods),
            }
            for c in summary.classes
        ],
        "aliases": [list(pair) for pair in summary.aliases],
    }


def _tensor_to_dict(info: TensorInfo) -> Dict:
    return {
        "contract": info.contract,
        "params": list(info.params),
        "returns": info.returns,
        "returns_call": info.returns_call,
        "events": [[e.kind, e.line, e.col, e.detail] for e in info.events],
    }


def _tensor_from_dict(data: Dict) -> TensorInfo:
    return TensorInfo(
        contract=data.get("contract"),
        params=tuple(data.get("params", ())),
        returns=data.get("returns", "top:*"),
        returns_call=data.get("returns_call"),
        events=tuple(
            TensorEvent(e[0], int(e[1]), int(e[2]), str(e[3]))
            for e in data.get("events", ())
        ),
    )


def _fact_to_list(fact: Fact) -> List:
    return [fact.line, fact.col, fact.what, fact.shielded]


def _fact_from_list(raw: Sequence) -> Fact:
    return Fact(int(raw[0]), int(raw[1]), str(raw[2]), bool(raw[3]))


def _summary_from_dict(data: Dict) -> ModuleSummary:
    functions = tuple(
        FunctionSummary(
            qual=f["qual"], rel=f["rel"], path=f["path"], line=f["line"],
            col=f["col"], is_async=f["is_async"],
            params=tuple(f["params"]), rng_params=tuple(f["rng_params"]),
            calls=tuple(
                CallSite(
                    raw=c[0], target=c[1], line=c[2], col=c[3],
                    awaited=c[4], shielded=c[5],
                )
                for c in f["calls"]
            ),
            births=tuple(
                RngBirth(b[0], b[1], b[2], b[3]) for b in f["births"]
            ),
            obs_uses=tuple(_fact_from_list(x) for x in f["obs_uses"]),
            lock_awaits=tuple(_fact_from_list(x) for x in f["lock_awaits"]),
            bare_tasks=tuple(_fact_from_list(x) for x in f["bare_tasks"]),
            blocking=tuple(_fact_from_list(x) for x in f["blocking"]),
            tensor=_tensor_from_dict(f["tensor"]),
        )
        for f in data["functions"]
    )
    classes = tuple(
        ClassInfo(
            name=c["name"], rel=c["rel"], bases=tuple(c["bases"]),
            attr_types=tuple((a, t) for a, t in c["attr_types"]),
            methods=tuple(c["methods"]),
        )
        for c in data["classes"]
    )
    return ModuleSummary(
        rel=data["rel"], path=data["path"], sha=data["sha"],
        functions=functions, classes=classes,
        aliases=tuple((a, b) for a, b in data.get("aliases", ())),
    )


# ----------------------------------------------------------------------
# Linking: the Program
# ----------------------------------------------------------------------
class Program:
    """Linked whole-program view over module summaries."""

    def __init__(self, modules: Sequence[ModuleSummary], stats: Dict[str, int]):
        self.modules = tuple(modules)
        self.stats = stats
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._module_aliases: Dict[str, Dict[str, str]] = {}
        for mod in self.modules:
            for fn in mod.functions:
                self.functions[fn.key] = fn
            for cls in mod.classes:
                self.classes[cls.key] = cls
            self._module_aliases[module_name(mod.rel)] = dict(mod.aliases)
        self._edges: Dict[str, List[Tuple[CallSite, Optional[str]]]] = {}
        edge_count = 0
        for key, fn in self.functions.items():
            resolved = []
            for site in fn.calls:
                target = self._resolve_site(site, fn)
                resolved.append((site, target))
                if target is not None:
                    edge_count += 1
            self._edges[key] = resolved
        self._blocking_memo: Dict[str, Optional[Tuple[str, ...]]] = {}
        self._overrides = self._override_map()
        stats["nodes"] = len(self.functions)
        stats["edges"] = edge_count

    def _override_map(self) -> Dict[str, Tuple[str, ...]]:
        """Class-hierarchy dispatch: base method key -> override keys.

        A call that statically links to ``Base.m`` may dynamically
        dispatch to any subclass override, so :meth:`reachable` fans out
        through this map. Blocking propagation deliberately does *not*:
        a may-dispatch guess is the right bias for taint reachability
        (miss nothing) and the wrong one for ASY001 (every guess risks a
        false "this blocks").
        """
        children: Dict[str, List[str]] = {}
        for key, cls in self.classes.items():
            for base in cls.bases:
                base_key = self._resolve_name(base, self.classes)
                if base_key is not None:
                    children.setdefault(base_key, []).append(key)
        overrides: Dict[str, Tuple[str, ...]] = {}
        for base_key, cls in self.classes.items():
            for method in cls.methods:
                base_method = f"{base_key}.{method}"
                if base_method not in self.functions:
                    continue
                found = []
                stack = list(children.get(base_key, []))
                seen: Set[str] = set()
                while stack:
                    sub = stack.pop()
                    if sub in seen:
                        continue
                    seen.add(sub)
                    candidate = f"{sub}.{method}"
                    if candidate in self.functions:
                        found.append(candidate)
                    stack.extend(children.get(sub, []))
                if found:
                    overrides[base_method] = tuple(sorted(found))
        return overrides

    def _chase_alias(self, target: str) -> Optional[str]:
        """One re-export hop: rebase ``target`` through the alias map of
        its longest known module prefix.

        ``repro.runner.CaptureCache.get`` is not a definition key, but
        ``repro.runner`` is a known module whose ``__init__`` binds
        ``CaptureCache`` to ``repro.runner.cache.CaptureCache`` — so the
        target rebases to ``repro.runner.cache.CaptureCache.get``.
        """
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            aliases = self._module_aliases.get(".".join(parts[:cut]))
            if aliases is None:
                continue
            resolved = aliases.get(parts[cut])
            if resolved is None:
                return None
            return ".".join([resolved] + parts[cut + 1:])
        return None

    def _resolve_name(self, target: str, index: Dict[str, object]) -> Optional[str]:
        """Exact qualified-name resolution with re-export chasing.

        A target either *is* a definition key or rebases through module
        alias maps (``from .cache import CaptureCache`` in an
        ``__init__``) until it is one — no suffix matching, so two
        same-named helpers in sibling packages can never cross-link.
        """
        seen: Set[str] = set()
        current: Optional[str] = target
        while current is not None and current not in seen:
            if current in index:
                return current
            seen.add(current)
            current = self._chase_alias(current)
        return None

    def _resolve_site(
        self, site: CallSite, owner: FunctionSummary
    ) -> Optional[str]:
        target = site.target
        if target is None:
            return None
        if "<attr>" in target:
            # "mod.Cls.<attr>name.method": resolve via the class's
            # recorded attribute types, then method resolution.
            prefix, _, rest = target.partition(".<attr>")
            attr, _, method = rest.partition(".")
            cls = self._resolve_name(prefix, self.classes)
            if cls is None:
                return None
            attr_type = dict(self.classes[cls].attr_types).get(attr)
            if attr_type is None or attr_type.endswith("[]"):
                return None
            target = f"{attr_type}.{method}"
        elif "<elem>" in target:
            # "mod.Cls.<elem>name.method": a loop variable over the
            # container attribute "name" — the method belongs to the
            # container's *element* class (recorded as "Elem[]").
            prefix, _, rest = target.partition(".<elem>")
            attr, _, method = rest.partition(".")
            cls = self._resolve_name(prefix, self.classes)
            if cls is None:
                return None
            attr_type = dict(self.classes[cls].attr_types).get(attr)
            if attr_type is None or not attr_type.endswith("[]"):
                return None
            target = f"{attr_type[:-2]}.{method}"
        hit = self._resolve_name(target, self.functions)
        if hit is not None:
            return hit
        # Method-resolution fallback: walk base classes for inherited
        # methods ("mod.Sub.meth" defined on mod.Base).
        owner_cls, _, method = target.rpartition(".")
        if not owner_cls:
            return None
        cls_key = self._resolve_name(owner_cls, self.classes)
        seen: Set[str] = set()
        while cls_key is not None and cls_key not in seen:
            seen.add(cls_key)
            hit = self._resolve_name(f"{cls_key}.{method}", self.functions)
            if hit is not None:
                return hit
            bases = self.classes[cls_key].bases
            cls_key = (
                self._resolve_name(bases[0], self.classes) if bases else None
            )
        return None

    def callees(self, key: str) -> List[Tuple[CallSite, Optional[str]]]:
        return self._edges.get(key, [])

    # -- blocking propagation ------------------------------------------
    def blocking_chain(self, key: str) -> Optional[Tuple[str, ...]]:
        """Why ``key`` blocks, as a display chain ending at a primitive.

        ``None`` means "not known to block". Propagation follows
        resolved, unshielded calls through *synchronous* functions only:
        an async callee schedules rather than blocks, and executor-shim
        arguments run off the loop.
        """
        return self._chain(key, frozenset())

    def _chain(self, key: str, stack) -> Optional[Tuple[str, ...]]:
        if key in self._blocking_memo:
            return self._blocking_memo[key]
        if key in stack:
            return None
        fn = self.functions[key]
        result: Optional[Tuple[str, ...]] = None
        direct = [f for f in fn.blocking if not f.shielded]
        if direct:
            result = (fn.display, direct[0].what)
        else:
            for site, callee in self.callees(key):
                if callee is None or site.shielded:
                    continue
                target = self.functions[callee]
                if target.is_async:
                    continue
                sub = self._chain(callee, stack | {key})
                if sub is not None:
                    result = (fn.display,) + sub
                    break
        self._blocking_memo[key] = result
        return result

    # -- reachability ---------------------------------------------------
    def reachable(self, roots: Sequence[str]) -> Dict[str, Optional[str]]:
        """BFS over resolved edges: reachable key -> predecessor key.

        Calls linked to a base-class method also fan out to every
        subclass override (see :meth:`_override_map`), so a pipeline
        dispatching ``stage.process(state)`` over ``List[ISPStage]``
        reaches each concrete stage body.
        """
        parents: Dict[str, Optional[str]] = {}
        queue = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for _site, callee in self.callees(current):
                if callee is None:
                    continue
                for nxt in (callee,) + self._overrides.get(callee, ()):
                    if nxt not in parents:
                        parents[nxt] = current
                        queue.append(nxt)
        return parents

    def trace(self, roots: Sequence[str], target: str) -> Optional[List[str]]:
        """Shortest root->target call chain as display names."""
        parents = self.reachable(roots)
        if target not in parents:
            return None
        chain = []
        cursor: Optional[str] = target
        while cursor is not None:
            chain.append(self.functions[cursor].display)
            cursor = parents[cursor]
        return list(reversed(chain))


def build_program(
    contexts: Sequence[Tuple[ModuleContext, str]],
    cache: Optional[SummaryCache] = None,
) -> Program:
    """Summarize (or reload) every module and link the program."""
    stats = {"cache_hits": 0, "cache_misses": 0}
    summaries = []
    for ctx, sha in contexts:
        summary = cache.get(ctx.rel, sha, ctx.path) if cache is not None else None
        if summary is None:
            summary = summarize_module(ctx, sha)
            stats["cache_misses"] += 1
            if cache is not None:
                cache.put(summary)
        else:
            stats["cache_hits"] += 1
        summaries.append(summary)
    if cache is not None:
        cache.save()
    return Program(summaries, stats)
