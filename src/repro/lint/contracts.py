"""Tensor contracts: declared dtype/shape signatures the analyzer checks.

A contract is one string on a function::

    @tensor_contract("(H, W) float32, _ -> (H, W, 3) float32")
    def demosaic(mosaic, pattern): ...

Grammar (whitespace-insensitive)::

    contract := [params] "->" ret
    params   := param ("," param)*          # split at paren depth 0
    param    := "_"                         # any value; not analyzed
              | [shape] dtype
    ret      := param
    shape    := "(" dims? ")"               # omitted shape = scalar "()"
              | "*"                         # any rank
    dims     := dim ("," dim)* [","]        # "(K,)" tolerates the tuple comma
    dim      := INT | IDENT | "?"           # IDENT is a symbolic axis
    dtype    := bool | intN | float32 | float64 | any

Params map positionally onto the function's parameters, skipping a
leading ``self``/``cls``. A leading symbolic ``N`` dim marks the batch
axis: SHAPE001 proves the function never reduces, reshapes across,
boolean-masks, or index-couples that axis, which is exactly the
precondition for lifting a stage to ``(N, H, W, C)`` batches.

At runtime the decorator is a no-op beyond validating the spec once at
import time and stashing it on ``__tensor_contract__`` — no wrapper, no
per-call cost. The static analyzer (:mod:`repro.lint.dataflow`) reads
the decorator *syntactically*, so contracts work on files that are
linted without ever being imported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

from .lattice import (
    AbstractValue,
    Shape,
    TOP,
    dtype_from_name,
)

__all__ = ["Contract", "ContractError", "parse_contract", "tensor_contract"]

F = TypeVar("F", bound=Callable)


class ContractError(ValueError):
    """Raised for a malformed contract spec."""


@dataclass(frozen=True)
class Contract:
    """Parsed contract: one abstract value per covered param + return.

    ``None`` entries are ``_`` placeholders (param not analyzed).
    """

    spec: str
    params: Tuple[Optional[AbstractValue], ...]
    returns: Optional[AbstractValue]


def _split_params(text: str) -> List[str]:
    """Split on commas at paren depth 0."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ContractError(f"unbalanced ')' in {text!r}")
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if depth:
        raise ContractError(f"unbalanced '(' in {text!r}")
    parts.append(text[start:])
    return parts


def _parse_dim(token: str):
    token = token.strip()
    if token == "?":
        return None
    if token.lstrip("-").isdigit():
        value = int(token)
        if value < 0:
            raise ContractError(f"negative dim {token!r}")
        return value
    if token.isidentifier():
        return token
    raise ContractError(f"bad dim {token!r}")


def _parse_one(text: str, spec: str) -> Optional[AbstractValue]:
    text = text.strip()
    if not text:
        raise ContractError(f"empty component in contract {spec!r}")
    if text == "_":
        return None
    shape = Shape.scalar()
    if text.startswith("("):
        close = text.rfind(")")
        if close < 0:
            raise ContractError(f"unbalanced '(' in contract {spec!r}")
        inner = text[1:close].strip()
        tokens = inner.split(",") if inner else []
        if tokens and not tokens[-1].strip():
            tokens.pop()  # Python-style single-dim tuple: "(K,)"
        dims = tuple(_parse_dim(t) for t in tokens)
        shape = Shape(dims)
        text = text[close + 1:].strip()
    elif text.startswith("*"):
        shape = Shape.unknown()
        text = text[1:].strip()
    if not text:
        raise ContractError(f"missing dtype in contract {spec!r}")
    if not text.replace("_", "").isalnum():
        raise ContractError(f"bad dtype {text!r} in contract {spec!r}")
    dtype = TOP if text == "any" else dtype_from_name(text)
    if dtype is TOP and text != "any":
        raise ContractError(f"unknown dtype {text!r} in contract {spec!r}")
    return AbstractValue(dtype=dtype, shape=shape)


def parse_contract(spec: str) -> Contract:
    """Parse a contract spec; raises :class:`ContractError` if malformed."""
    if spec.count("->") != 1:
        raise ContractError(f"contract needs exactly one '->': {spec!r}")
    params_text, _, ret_text = spec.partition("->")
    params_text = params_text.strip()
    params: Tuple[Optional[AbstractValue], ...] = ()
    if params_text:
        params = tuple(_parse_one(p, spec) for p in _split_params(params_text))
    returns = _parse_one(ret_text, spec)
    return Contract(spec=spec, params=params, returns=returns)


def tensor_contract(spec: str) -> Callable[[F], F]:
    """Declare a dtype/shape contract the lint gate checks statically.

    Validates ``spec`` once at import time (a typo fails fast, in any
    test that imports the module) and returns the function unchanged.
    """
    parse_contract(spec)

    def decorate(fn: F) -> F:
        fn.__tensor_contract__ = spec  # type: ignore[attr-defined]
        return fn

    return decorate
