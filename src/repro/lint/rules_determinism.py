"""Determinism rules: DET001 (RNG), DET002 (wall clock), DET003 (ordering).

These guard the invariant the whole reproduction rests on: instability
must come from *modeled* perturbation sources (sensor, ISP, codec, OS),
never from hidden nondeterminism in our own code. Every RNG is derived
from unit identity (:mod:`repro.runner.seeds`), no result path reads the
wall clock or process entropy, and nothing that feeds serialization or
report ordering iterates in hash order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .context import ModuleContext
from .findings import Finding
from .registry import Rule, register

__all__ = ["NoGlobalRng", "NoWallClock", "NoUnorderedIteration"]


#: numpy.random module-level functions that touch the *global* RNG state.
_NP_GLOBAL_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "ranf", "random_sample",
        "sample", "choice", "shuffle", "permutation", "bytes", "normal",
        "uniform", "standard_normal", "standard_exponential", "standard_gamma",
        "poisson", "binomial", "beta", "exponential", "gamma", "geometric",
        "gumbel", "laplace", "logistic", "lognormal", "multinomial",
        "multivariate_normal", "negative_binomial", "pareto", "rayleigh",
        "triangular", "vonmises", "wald", "weibull", "zipf", "chisquare",
        "dirichlet", "hypergeometric", "logseries", "power", "integers",
        "get_state", "set_state",
    }
)

#: stdlib ``random`` module functions drawing from its hidden global state.
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "seed", "getrandbits",
        "randbytes", "betavariate", "expovariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
    }
)


@register
class NoGlobalRng(Rule):
    """DET001: randomness must be derived, never drawn from global state."""

    name = "DET001"
    summary = (
        "no global RNG (np.random.* module calls, bare random, os.urandom) "
        "outside runner/seeds.py"
    )

    #: The one module allowed to construct generators from raw entropy.
    exempt = ("runner/seeds.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel in self.exempt:
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            canon = ctx.resolve(node.func)
            if canon is None:
                continue
            message = self._diagnose(canon, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _diagnose(canon: str, node: ast.Call) -> Optional[str]:
        head, _, tail = canon.rpartition(".")
        if head == "numpy.random":
            if tail in _NP_GLOBAL_FNS:
                return (
                    f"call to numpy's global RNG state ({canon}); derive a "
                    "generator via repro.runner.seeds.derive_rng instead"
                )
            if tail in ("default_rng", "SeedSequence") and not (
                node.args or node.keywords
            ):
                return (
                    f"{canon}() without a seed draws OS entropy; pass "
                    "identity-derived entropy (repro.runner.seeds)"
                )
        if tail == "RandomState" or canon == "RandomState":
            return (
                "legacy numpy RandomState; use identity-derived "
                "numpy.random.Generator streams (repro.runner.seeds)"
            )
        if head == "random" and tail in _STDLIB_RANDOM_FNS:
            return (
                f"stdlib global RNG ({canon}); thread a seeded "
                "numpy.random.Generator through instead"
            )
        if canon == "random.Random" and not (node.args or node.keywords):
            return "unseeded random.Random() draws OS entropy"
        if canon == "os.urandom" or head == "secrets":
            return f"{canon} is OS entropy; results would differ across runs"
        return None


#: Wall-clock / entropy call chains banned in result paths (DET002).
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "uuid.uuid1", "uuid.uuid4", "uuid.getnode",
    }
)


@register
class NoWallClock(Rule):
    """DET002: no wall clock, uuid, or str hash() in result paths."""

    name = "DET002"
    summary = (
        "no wall-clock/entropy (time.*, uuid, builtin hash()) in result "
        "paths outside obs/, bench/, serve/, loadgen/, lint/"
    )

    #: Observability is side-band by contract — timing belongs there.
    #: bench/ is the same kind of side-band: it measures durations and
    #: never feeds them into experiment results. serve/ and loadgen/
    #: measure latency and pace request arrivals — wall-clock there
    #: steers *scheduling* and *reported timings* only; every capture
    #: payload still flows through the pure execute_unit path, which is
    #: what the drained-service == serial-runner test pins down. lint/
    #: times its own analysis for ``--stats``; it never touches results.
    exempt_prefixes = ("obs/", "bench/", "serve/", "loadgen/", "lint/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel.startswith(self.exempt_prefixes):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "hash":
                yield self.finding(
                    ctx,
                    node,
                    "builtin hash() is PYTHONHASHSEED-dependent; use a "
                    "content hash (zlib.crc32, hashlib) for anything that "
                    "reaches results or cache keys",
                )
                continue
            canon = ctx.resolve(node.func)
            if canon in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{canon}() reads the wall clock/host entropy; results "
                    "must depend only on seeds and inputs (obs/ owns timing)",
                )


#: Builtins whose iteration order is reproduced in their output.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "reversed"})

#: Binary set-algebra operators (``a | b`` on sets yields a set).
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


@register
class NoUnorderedIteration(Rule):
    """DET003: hash-ordered iteration must not feed ordered output."""

    name = "DET003"
    summary = (
        "no iteration over sets/dict.keys() feeding serialization, "
        "cache-key, or report ordering without sorted()"
    )

    #: Modules producing canonical output (serialized results, report
    #: text): there, *any* dict-view iteration must go through sorted().
    strict = ("core/serialize.py", "core/report.py", "obs/report.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        strict = ctx.rel in self.strict
        for node in ctx.walk():
            sites = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                sites.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and node.args:
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                ) or (isinstance(func, ast.Attribute) and func.attr == "join"):
                    sites.append(node.args[0])
            for site in sites:
                reason = self._unordered(site, strict)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        site,
                        f"iterates over {reason} in hash/insertion order; "
                        "wrap the iterable in sorted(...) so output ordering "
                        "is independent of PYTHONHASHSEED and build order",
                    )

    def _unordered(self, node: ast.AST, strict: bool) -> Optional[str]:
        """Why ``node`` iterates in unordered/hash order, or ``None``."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return ".keys()"
                if strict and func.attr in ("items", "values"):
                    return f".{func.attr}()"
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left = self._unordered(node.left, strict)
            right = self._unordered(node.right, strict)
            if left is not None or right is not None:
                return "set algebra"
        return None
