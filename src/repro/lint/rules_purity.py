"""Purity rules: MUT001 (argument mutation), OBS001 (obs discipline),
PROC001 (cross-process module state).

MUT001 keeps the image-processing layers referentially transparent: the
capture cache and the parallel executor both assume that running a stage
twice on the same array yields the same bits and leaves the input
untouched. OBS001 enforces the observability contract — hooks are
side-band, their results never steer results. PROC001 guards process
fan-out: module state mutated after import diverges between the parent
and spawned workers, silently breaking the serial==parallel guarantee.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from .context import ModuleContext
from .findings import Finding
from .registry import Rule, register

__all__ = ["NoArgumentMutation", "ObsHookDiscipline", "NoModuleMutableState"]


#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "fill", "sort", "put", "resize", "itemset", "setflags", "partition",
        "append", "extend", "insert", "remove", "reverse", "clear", "update",
        "pop", "popitem", "setdefault", "add", "discard",
    }
)


@register
class NoArgumentMutation(Rule):
    """MUT001: pure-function modules must not mutate ndarray parameters."""

    name = "MUT001"
    summary = (
        "no in-place mutation of parameters (x *= ..., x[...] = ..., "
        "out=x) in isp/stages.py, codecs/, imaging/, kernels/"
    )

    #: The referentially transparent layers the capture cache relies on.
    scope = ("isp/stages.py",)
    scope_prefixes = ("codecs/", "imaging/", "kernels/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel not in self.scope and not ctx.rel.startswith(
            self.scope_prefixes
        ):
            return
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext, func) -> Iterator[Finding]:
        args = func.args
        params = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.add(extra.arg)
        params -= {"self", "cls"}
        if not params:
            return
        # Walk the body but stop at nested defs/lambdas: they shadow the
        # parameter names and get their own check() pass.
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield from self._check_node(ctx, node, params)
            stack.extend(ast.iter_child_nodes(node))

    def _check_node(
        self, ctx: ModuleContext, node: ast.AST, params: Set[str]
    ) -> Iterator[Finding]:
        def is_param(expr: Optional[ast.AST]) -> bool:
            return isinstance(expr, ast.Name) and expr.id in params

        if isinstance(node, ast.AugAssign):
            target = node.target
            if is_param(target):
                yield self.finding(
                    ctx,
                    node,
                    f"augmented assignment mutates parameter "
                    f"{target.id!r} in place; rebind a new value instead",
                )
            elif isinstance(target, ast.Subscript) and is_param(target.value):
                yield self.finding(
                    ctx,
                    node,
                    f"writes into parameter {target.value.id!r} via "
                    "subscript; operate on a copy",
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and is_param(target.value):
                    yield self.finding(
                        ctx,
                        target,
                        f"writes into parameter {target.value.id!r} via "
                        "subscript; operate on a copy",
                    )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out" and is_param(kw.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"out={kw.value.id} writes the result into a "
                        "parameter; allocate a fresh array",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and is_param(func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.value.id}.{func.attr}() mutates a parameter "
                    "in place; copy first",
                )


#: obs helpers that must be bare expression statements (fire and forget).
_OBS_STATEMENT_ONLY = frozenset({"count", "gauge", "observe"})


@register
class ObsHookDiscipline(Rule):
    """OBS001: obs hooks are side-band — with-blocks and bare statements."""

    name = "OBS001"
    summary = (
        "obs hooks follow the no-op pattern: span() under `with`, "
        "count/gauge/observe as statements, nothing returned"
    )

    #: The obs package itself and the linter are outside the contract.
    exempt_prefixes = ("obs/", "lint/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel.startswith(self.exempt_prefixes):
            return
        obs_names = {
            local for local, canon in ctx.aliases.items() if canon == "repro.obs"
        }
        if not obs_names:
            return

        statement_calls: Set[int] = set()
        with_calls: Set[int] = set()
        for node in ctx.walk():
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                statement_calls.add(id(node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        with_calls.add(id(item.context_expr))

        for node in ctx.walk():
            if isinstance(node, ast.Return) and node.value is not None:
                for inner in ast.walk(node.value):
                    if isinstance(inner, ast.Call) and self._helper(
                        ctx, inner, obs_names
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "obs results must not flow into returned "
                            "values; observability is side-band only",
                        )
                        break
                continue
            if not isinstance(node, ast.Call):
                continue
            helper = self._helper(ctx, node, obs_names)
            if helper in _OBS_STATEMENT_ONLY and id(node) not in statement_calls:
                yield self.finding(
                    ctx,
                    node,
                    f"obs.{helper}() is fire-and-forget; its result must "
                    "not be used",
                )
            elif helper == "span" and id(node) not in with_calls:
                yield self.finding(
                    ctx,
                    node,
                    "obs.span() must be the context expression of a "
                    "`with` block",
                )

    @staticmethod
    def _helper(
        ctx: ModuleContext, call: ast.Call, obs_names: Set[str]
    ) -> Optional[str]:
        """The obs helper name this call invokes, if it is one."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in obs_names
        ):
            return func.attr
        return None


#: Constructors whose empty form is a grow-later container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "Counter", "OrderedDict", "deque"}
)


@register
class NoModuleMutableState(Rule):
    """PROC001: no post-import module state in worker-imported modules."""

    name = "PROC001"
    summary = (
        "no module-level mutable state (empty containers, `global` "
        "rebinding) outside the obs/ side-band"
    )

    #: obs's one active-observer global *is* the side-band design.
    exempt_prefixes = ("obs/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel.startswith(self.exempt_prefixes):
            return
        for stmt in ctx.tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is not None and self._empty_container(value):
                names = ", ".join(
                    t.id for t in targets if isinstance(t, ast.Name)
                )
                yield self.finding(
                    ctx,
                    stmt,
                    f"module-level mutable container {names or '<target>'} "
                    "starts empty and grows after import; worker processes "
                    "each see their own divergent copy",
                )
        for node in ctx.walk():
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"`global {', '.join(node.names)}` rebinds module "
                    "state at runtime; state must live in objects threaded "
                    "through calls (workers never see parent rebinds)",
                )

    @staticmethod
    def _empty_container(value: ast.AST) -> bool:
        if isinstance(value, ast.Dict):
            return not value.keys
        if isinstance(value, (ast.List, ast.Set)):
            return not value.elts
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "defaultdict":
                # Always a grow-later container, whatever its factory.
                return True
            return name in _MUTABLE_CONSTRUCTORS and not (
                value.args or value.keywords
            )
        return False
