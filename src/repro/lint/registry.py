"""Rule base class and the registry behind ``--rule`` / ``--list-rules``.

A rule is a named check with a severity and a ``check(ctx)`` generator
yielding findings for one :class:`~repro.lint.context.ModuleContext`.
Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` imports the rule modules and returns the registry
sorted by name, so adding a rule module is the only step to extend the
linter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple, Type

from .context import ModuleContext
from .findings import Finding, Severity

__all__ = ["Rule", "register", "all_rules", "get_rules"]


class Rule:
    """One named invariant check.

    Subclasses set ``name`` (the ``RULEnnn`` id), ``summary`` (one line,
    shown by ``--list-rules`` and in docs), ``severity``, and implement
    :meth:`check`. ``check`` receives every file the engine walks; rules
    that only apply to some modules scope themselves via ``ctx.rel``.
    """

    name: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node, message: str) -> Finding:
        return ctx.finding(self.name, node, message, severity=self.severity)


# Populated once by the @register decorators as the rule modules import;
# read-only afterwards, so sharing it across processes is safe.
_REGISTRY: Dict[str, Rule] = {}  # lint: disable=PROC001


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by name."""
    # Importing the rule modules triggers their @register decorators.
    from . import rules_determinism, rules_purity  # noqa: F401

    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_rules(names: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
    """The selected rules (all of them when ``names`` is None)."""
    rules = all_rules()
    if names is None:
        return rules
    wanted = {n.upper() for n in names}
    unknown = wanted - {r.name for r in rules}
    if unknown:
        known = ", ".join(r.name for r in rules)
        raise KeyError(f"unknown rule(s) {sorted(unknown)}; known rules: {known}")
    return tuple(r for r in rules if r.name in wanted)
