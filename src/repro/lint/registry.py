"""Rule base class and the registry behind ``--rule`` / ``--list-rules``.

A rule is a named check with a severity and a ``check(ctx)`` generator
yielding findings for one :class:`~repro.lint.context.ModuleContext`.
Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` imports the rule modules and returns the registry
sorted by name, so adding a rule module is the only step to extend the
linter.

Whole-program rules (:class:`ProgramRule`) run after every file is
parsed: instead of ``check(ctx)`` per module they implement
``check_program(program)`` against the linked
:class:`~repro.lint.callgraph.Program`, so they can follow an RNG or a
blocking call across module boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple, Type

from .context import ModuleContext
from .findings import Finding, Severity

__all__ = ["Rule", "ProgramRule", "register", "all_rules", "get_rules"]


class Rule:
    """One named invariant check.

    Subclasses set ``name`` (the ``RULEnnn`` id), ``summary`` (one line,
    shown by ``--list-rules`` and in docs), ``severity``, and implement
    :meth:`check`. ``check`` receives every file the engine walks; rules
    that only apply to some modules scope themselves via ``ctx.rel``.
    """

    name: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node, message: str) -> Finding:
        return ctx.finding(self.name, node, message, severity=self.severity)


class ProgramRule(Rule):
    """A rule that needs the whole program, not one module at a time.

    The engine calls :meth:`check_program` once per run with the linked
    :class:`~repro.lint.callgraph.Program`; :meth:`check` is a no-op so
    program rules slot into the same registry/selection machinery.
    """

    whole_program = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def program_finding(self, fn, line: int, col: int, message: str) -> Finding:
        """Build a finding anchored inside ``fn`` (a FunctionSummary)."""
        return Finding(
            rule=self.name,
            path=fn.path,
            rel=fn.rel,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
        )


# Populated once by the @register decorators as the rule modules import;
# read-only afterwards, so sharing it across processes is safe.
_REGISTRY: Dict[str, Rule] = {}  # lint: disable=PROC001


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by name."""
    # Importing the rule modules triggers their @register decorators.
    from . import (  # noqa: F401
        rules_async,
        rules_determinism,
        rules_effects,
        rules_numeric,
        rules_purity,
        rules_seed,
    )

    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_rules(names: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
    """The selected rules (all of them when ``names`` is None)."""
    rules = all_rules()
    if names is None:
        return rules
    wanted = {n.upper() for n in names}
    unknown = wanted - {r.name for r in rules}
    if unknown:
        known = ", ".join(r.name for r in rules)
        raise KeyError(f"unknown rule(s) {sorted(unknown)}; known rules: {known}")
    return tuple(r for r in rules if r.name in wanted)
