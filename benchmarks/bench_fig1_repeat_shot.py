"""Figure 1: two photos seconds apart on one phone can flip the label.

Paper: a Galaxy S10 photographed a water bottle twice without moving;
one shot classified "bubble", the other "water bottle", with under 5% of
pixels differing by more than 5%.
"""

from repro.lab import repeat_shot_demo
from repro.scenes.objects import ALL_CLASSES

from .conftest import run_once


def test_fig1_repeat_shot_divergence(benchmark, base_model):
    outcome = run_once(
        benchmark, lambda: repeat_shot_demo(model=base_model, seed=0, max_scenes=80, pairs_per_scene=4)
    )
    print("\n=== Figure 1: repeat-shot divergence (Galaxy S10) ===")
    print(f"shot 1: {ALL_CLASSES[outcome.first_label]} (conf {outcome.first_confidence:.2f})")
    print(f"shot 2: {ALL_CLASSES[outcome.second_label]} (conf {outcome.second_confidence:.2f})")
    print(f"true class: {ALL_CLASSES[outcome.true_label]}")
    print(f"labels diverged: {outcome.diverged}")
    print(
        f"pixels differing > 5%: {outcome.diff.divergent_fraction * 100:.2f}% "
        f"(mean abs diff {outcome.diff.mean_abs_diff * 255:.2f}/255)"
    )
    # Paper shape: a divergent pair exists, and the pixel difference that
    # caused it is small.
    assert outcome.diverged
    assert outcome.diff.divergent_fraction < 0.5
