"""Table 4: the same raws developed by two software ISPs.

Paper: ImageMagick conversion 54.75% accurate, Adobe 49.96%; instability
between the two conversions 14.11% — the single largest source axis.
"""

from repro.core import format_percent
from repro.lab import ISPComparisonExperiment

from .conftest import run_once


def test_table4_isp_comparison(benchmark, base_model, raw_bank):
    out = run_once(
        benchmark,
        lambda: ISPComparisonExperiment(model=base_model).run(raw_bank),
    )
    accs = out.accuracy_by_isp()
    inst = out.instability()

    print("\n=== Table 4: software ISPs (paper: adobe 49.96%, imagemagick 54.75%, inst 14.11%) ===")
    for isp, acc in accs.items():
        print(f"  {isp} accuracy: {format_percent(acc)}")
    print(f"  instability: {format_percent(inst)}")

    # Shape: the neutral conversion beats the opinionated one by a few
    # points; the ISP axis contributes double-digit-scale instability.
    assert accs["imagemagick"] > accs["adobe"]
    assert accs["imagemagick"] - accs["adobe"] < 0.15
    assert 0.08 < inst < 0.30
