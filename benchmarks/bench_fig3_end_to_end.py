"""Figure 3: end-to-end accuracy and instability across the five phones.

Paper: accuracy roughly flat per phone (59-64%); cross-phone instability
~15% for most classes with large per-class variance; instability varies
somewhat by angle; within-phone instability is much lower than
cross-phone.
"""

import numpy as np

from repro.core import (
    format_percent,
    instability,
    per_angle_instability,
    per_class_instability,
    per_environment_accuracy,
    within_environment_instability,
)
from repro.lab import EndToEndExperiment

from .conftest import run_once


def test_fig3_end_to_end(benchmark, base_model):
    result = run_once(
        benchmark,
        lambda: EndToEndExperiment(model=base_model, seed=0).run(per_class=8),
    )

    print("\n=== Figure 3(a): accuracy by phone (paper: 59-64%, flat) ===")
    accs = per_environment_accuracy(result)
    for phone, acc in accs.items():
        print(f"  {phone}: {format_percent(acc)}")

    overall = instability(result)
    print(f"\n=== Figure 3(b): instability by class (paper: ~15%) ===")
    print(f"  OVERALL: {format_percent(overall)}")
    per_class = per_class_instability(result)
    for cls, inst in per_class.items():
        print(f"  {cls}: {format_percent(inst)}")

    print("\n=== Figure 3(c): instability by angle ===")
    for angle, inst in per_angle_instability(result).items():
        print(f"  {angle:+.0f} deg: {format_percent(inst)}")

    print("\n=== Figure 3(d): within-phone instability (much lower) ===")
    within = within_environment_instability(result)
    for phone, inst in within.items():
        print(f"  {phone}: {format_percent(inst)}")

    # Shape assertions.
    acc_values = np.array(list(accs.values()))
    assert acc_values.max() - acc_values.min() < 0.12, "accuracy should be flat"
    assert 0.08 < overall < 0.30, "cross-phone instability in the paper's regime"
    assert max(per_class.values()) > 2 * min(per_class.values()) or min(per_class.values()) == 0, (
        "per-class variance should be large"
    )
    assert np.mean(list(within.values())) < overall, (
        "within-phone instability must be lower than cross-phone"
    )
