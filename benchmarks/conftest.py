"""Shared fixtures for the benchmark harness.

Every benchmark reuses one calibrated base model (trained once, cached on
disk under ``.cache/repro/``) and, where possible, shared experiment
artifacts — mirroring the paper, which evaluates a single fixed-weight
MobileNetV2 across all experiments.

Run with ``pytest benchmarks/ --benchmark-only``. Each benchmark times
one full experiment (rounds=1) and prints the reproduced table/figure
rows next to the paper's numbers.
"""

import pytest

from repro.lab import EndToEndExperiment, RawCaptureBank
from repro.nn import load_pretrained


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are minutes-scale)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def base_model():
    """The shared pretrained classifier (trains ~4 min on first ever run)."""
    return load_pretrained()


@pytest.fixture(scope="session")
def end_to_end_result(base_model):
    """One full §4 run shared by the Fig. 3 / Fig. 4 / Fig. 9 benches."""
    experiment = EndToEndExperiment(model=base_model, seed=0)
    return experiment.run(per_class=8)


@pytest.fixture(scope="session")
def raw_bank():
    """Raw captures shared by the Table 2 / 3 / 4 benches (§5-§6)."""
    return RawCaptureBank.collect(per_class=10, seed=0)
