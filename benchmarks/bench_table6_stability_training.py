"""Table 6: stability fine-tuning across noise schemes and losses.

Paper (Samsung/iPhone instability after fine-tuning):

  embedding loss: two-images 3.91%, subsample-10 4.22%, distortion 5.12%,
                  gaussian 5.12%, no-noise 7.22%
  KL loss:        two-images 6.32%, subsample-10 5.72%, distortion 4.52%,
                  gaussian 4.82%, no-noise 6.62%

The headline shape: plain fine-tuning (no noise) reduces instability the
least; every stability scheme beats it, roughly halving instability.
"""

import numpy as np

from repro.core import format_percent, format_table, instability
from repro.lab.rig import DEFAULT_ANGLES
from repro.mitigation import (
    build_stability_corpus,
    evaluate_cross_device_instability,
    run_table6,
)

from .conftest import run_once


def test_table6_stability_training(benchmark, base_model):
    corpus = build_stability_corpus(
        per_class=16, train_fraction=0.5, angles=DEFAULT_ANGLES, seed=0
    )
    base_inst = instability(
        evaluate_cross_device_instability(base_model, corpus)
    )

    rows = run_once(
        benchmark, lambda: run_table6(base_model, corpus, epochs=6, seed=0)
    )

    print("\n=== Table 6: stability fine-tuning (Samsung vs iPhone) ===")
    print(f"base model (no fine-tuning): {format_percent(base_inst)}")
    print(
        format_table(
            ["noise", "loss", "alpha", "instability", "accuracy"],
            [
                [
                    r.noise,
                    r.stability_loss,
                    r.alpha,
                    format_percent(r.instability),
                    format_percent(r.accuracy),
                ]
                for r in rows
            ],
        )
    )

    by_cell = {(r.noise, r.stability_loss): r.instability for r in rows}
    no_noise_worst = max(
        by_cell[("no_noise", "embedding")], by_cell[("no_noise", "kl")]
    )
    scheme_insts = [
        inst for (noise, _loss), inst in by_cell.items() if noise != "no_noise"
    ]

    # Shape: the best stability scheme clearly beats no-noise fine-tuning,
    # and the average scheme is no worse than it.
    assert min(scheme_insts) < no_noise_worst
    assert np.mean(scheme_insts) <= no_noise_worst + 0.01
    reduction = (no_noise_worst - min(scheme_insts)) / max(no_noise_worst, 1e-9)
    print(f"best scheme cuts instability by {format_percent(reduction)} vs no-noise fine-tuning")
