"""Table 2: JPEG quality 100 / 85 / 50 — size, accuracy, instability.

Paper: sizes 3.05 / 0.65 / 0.25 MB; accuracy ~54% and essentially flat
(higher compression even slightly better); instability across qualities
7.6%.
"""

import numpy as np

from repro.core import format_percent, format_table
from repro.lab import CompressionQualityExperiment

from .conftest import run_once


def test_table2_jpeg_quality(benchmark, base_model, raw_bank):
    out = run_once(
        benchmark,
        lambda: CompressionQualityExperiment(model=base_model).run(raw_bank),
    )
    accs = out.accuracy_by_environment()
    inst = out.instability()

    print("\n=== Table 2: JPEG quality (paper: 3.05/0.65/0.25 MB, acc ~54%, inst 7.6%) ===")
    rows = [
        [
            env,
            f"{out.avg_size_bytes[env] / 1024:.1f} KiB",
            f"{out.avg_size_mb_scaled[env]:.2f} MB @12MP",
            format_percent(accs[env]),
        ]
        for env in ("jpeg-q100", "jpeg-q85", "jpeg-q50")
    ]
    print(format_table(["quality", "avg size", "scaled size", "accuracy"], rows))
    print(f"instability across qualities: {format_percent(inst)}")

    # Shape: size strictly decreasing with quality; accuracy roughly flat;
    # instability noticeable despite flat accuracy.
    sizes = [out.avg_size_bytes[e] for e in ("jpeg-q100", "jpeg-q85", "jpeg-q50")]
    assert sizes[0] > sizes[1] > sizes[2]
    acc_values = np.array(list(accs.values()))
    assert acc_values.max() - acc_values.min() < 0.06
    assert 0.02 < inst < 0.20
