"""Figure 8: raw capture + consistent conversion vs. the JPEG pipeline.

Paper: on the two raw-capable phones, converting raw DNGs with one
consistent software ISP reduces instability relative to each phone's own
JPEG pipeline — ~11.5% average relative improvement, consistent across
classes (Fig. 8a/8b) — while accuracy stays essentially unchanged
(Fig. 8c). Raw does not eliminate instability.
"""

from repro.core import format_percent
from repro.lab import RawVsJpegExperiment

from .conftest import run_once


def test_fig8_raw_vs_jpeg(benchmark, base_model):
    out = run_once(
        benchmark,
        lambda: RawVsJpegExperiment(model=base_model, seed=0).run(
            per_class=12, angles=(-15.0, 0.0, 15.0)
        ),
    )

    inst_jpeg = out.instability_jpeg()
    inst_raw = out.instability_raw()

    print("\n=== Figure 8(a): instability, JPEG vs raw-converted ===")
    print(f"  JPEG pipeline: {format_percent(inst_jpeg)}")
    print(f"  raw+consistent ISP: {format_percent(inst_raw)}")
    print(f"  relative improvement: {format_percent(out.relative_improvement())} (paper ~11.5%)")

    print("\n=== Figure 8(b): per class (jpeg / raw) ===")
    for cls, (j, r) in out.per_class().items():
        print(f"  {cls}: {format_percent(j)} / {format_percent(r)}")

    print("\n=== Figure 8(c): accuracy per phone per path ===")
    for key, acc in out.accuracy_table().items():
        print(f"  {key}: {format_percent(acc)}")

    # Shape: raw helps but does not eliminate; accuracy roughly unchanged.
    assert inst_raw <= inst_jpeg
    accs = out.accuracy_table()
    jpeg_accs = [v for k, v in accs.items() if k.endswith("/jpeg")]
    raw_accs = [v for k, v in accs.items() if k.endswith("/raw")]
    assert abs(sum(jpeg_accs) / 2 - sum(raw_accs) / 2) < 0.15
