"""Ablation: per-axis decomposition of end-to-end instability.

Not a paper table, but the design question §8 answers qualitatively:
how much instability does each capture axis contribute? We build fleets
identical to the Galaxy S10 on every axis except one (sensor hardware /
vendor ISP / save codec), plus a fully-identical fleet (the temporal
noise floor), and compare to the real heterogeneous fleet.

Paper takeaways to reproduce: ISP and codec axes each contribute
multi-percent instability; the floor (same phone, fresh shutter) is much
smaller; the full fleet exceeds any single axis.
"""

from dataclasses import replace

from repro.core import format_percent, instability
from repro.devices.profiles import capture_fleet
from repro.lab import EndToEndExperiment

from .conftest import run_once


def _variant_fleet(axis):
    fleet = capture_fleet()
    base = fleet[0]
    out = []
    for p in fleet:
        kwargs = {}
        if axis != "sensor":
            kwargs["sensor"] = base.sensor
        if axis != "isp":
            kwargs["isp"] = base.isp
        if axis != "codec":
            kwargs["save_format"] = base.save_format
            kwargs["save_quality"] = base.save_quality
        out.append(replace(p, **kwargs))
    return out


def test_ablation_instability_by_axis(benchmark, base_model):
    def run_all():
        results = {}
        for axis in ("none", "sensor", "isp", "codec", "all"):
            phones = (
                capture_fleet() if axis == "all" else _variant_fleet(axis)
            )
            result = EndToEndExperiment(
                phones=phones, model=base_model, seed=0
            ).run(per_class=6)
            results[axis] = instability(result)
        return results

    results = run_once(benchmark, run_all)

    print("\n=== Ablation: instability contribution per capture axis ===")
    labels = {
        "none": "identical phones (temporal-noise floor)",
        "sensor": "sensor hardware only",
        "isp": "vendor ISP only",
        "codec": "save codec only",
        "all": "full heterogeneous fleet",
    }
    for axis, inst in results.items():
        print(f"  {labels[axis]:42s}: {format_percent(inst)}")

    # Shape: floor is the smallest; every axis adds on top of it; the
    # full fleet is the largest.
    assert results["none"] <= min(results["sensor"], results["isp"], results["codec"])
    assert results["all"] >= max(results["sensor"], results["isp"], results["codec"]) - 0.02
    assert results["isp"] > results["none"]
    assert results["codec"] > results["none"] - 1e-9
