"""Table 3: JPEG / PNG / WebP / HEIF at default settings.

Paper: sizes 1.54 / 6.49 / 0.29 / 0.57 MB; accuracy flat (53.9-55.2%);
instability across formats 9.66%.
"""

import numpy as np

from repro.core import format_percent, format_table
from repro.lab import CompressionFormatExperiment

from .conftest import run_once


def test_table3_compression_formats(benchmark, base_model, raw_bank):
    out = run_once(
        benchmark,
        lambda: CompressionFormatExperiment(model=base_model).run(raw_bank),
    )
    accs = out.accuracy_by_environment()
    inst = out.instability()

    print("\n=== Table 3: formats (paper: JPEG 1.54 / PNG 6.49 / WebP 0.29 / HEIF 0.57 MB, inst 9.66%) ===")
    rows = [
        [
            fmt,
            f"{out.avg_size_bytes[fmt] / 1024:.1f} KiB",
            f"{out.avg_size_mb_scaled[fmt]:.2f} MB @12MP",
            format_percent(accs[fmt]),
        ]
        for fmt in ("jpeg", "png", "webp", "heif")
    ]
    print(format_table(["format", "avg size", "scaled size", "accuracy"], rows))
    print(f"instability across formats: {format_percent(inst)}")

    # Shape: PNG (lossless) is by far the largest; the lossy formats are
    # several times smaller; accuracy flat; instability exceeds the
    # quality-only axis (Table 2) because artefacts differ in kind.
    assert out.avg_size_bytes["png"] > 3 * out.avg_size_bytes["jpeg"]
    assert out.avg_size_bytes["heif"] < out.avg_size_bytes["jpeg"]
    acc_values = np.array(list(accs.values()))
    assert acc_values.max() - acc_values.min() < 0.06
    assert 0.03 < inst < 0.25
