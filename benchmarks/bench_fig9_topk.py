"""Figure 9: task simplification — scoring the top-3 predictions.

Paper: accepting the correct class anywhere in the top 3 improves both
accuracy and instability by roughly 30%, with no retraining or
recapture.
"""

from repro.core import format_percent
from repro.mitigation import simplify_task

from .conftest import run_once


def test_fig9_topk_simplification(benchmark, end_to_end_result):
    report = run_once(benchmark, lambda: simplify_task(end_to_end_result, k=3))
    report_k2 = simplify_task(end_to_end_result, k=2)

    print("\n=== Figure 9: top-1 vs top-3 (paper: both improve ~30%) ===")
    print(f"  accuracy top-1: {format_percent(report.accuracy_top1)}")
    print(f"  accuracy top-3: {format_percent(report.accuracy_topk)}")
    print(f"  instability top-1: {format_percent(report.instability_top1)}")
    print(f"  instability top-3: {format_percent(report.instability_topk)}")
    print(f"  accuracy improvement: {format_percent(report.accuracy_improvement)}")
    print(f"  instability reduction: {format_percent(report.instability_reduction)}")
    print(
        "  note: with an 8-class head, top-3 saturates; top-2 is the "
        "proportional analogue of the paper's top-3-of-1000:"
    )
    print(f"  accuracy top-2: {format_percent(report_k2.accuracy_topk)}")
    print(f"  instability top-2: {format_percent(report_k2.instability_topk)}")

    # Shape: both metrics improve, meaningfully.
    assert report.accuracy_topk > report.accuracy_top1
    assert report.instability_topk < report.instability_top1
    assert report.instability_reduction > 0.15
