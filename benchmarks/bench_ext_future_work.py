"""Extension: the paper's §11 future-work axes, quantified.

The paper names lighting conditions and camera/lens variation as
instability sources beyond its scope. The simulator measures them:
instability across lighting conditions on one phone, and across
manufacturing units of one phone model.
"""

from repro.core import format_percent, instability
from repro.lab import LensVariationExperiment, LightingVariationExperiment

from .conftest import run_once


def test_ext_lighting_and_lens_variation(benchmark, base_model):
    def run_both():
        lighting = LightingVariationExperiment(model=base_model, seed=0).run(
            per_class=8
        )
        lens = LensVariationExperiment(model=base_model, units=4, seed=0).run(
            per_class=8
        )
        return lighting, lens

    lighting, lens = run_once(benchmark, run_both)

    print("\n=== Extension (§11 future work): other instability sources ===")
    print(
        f"  lighting conditions (dim/nominal/bright, one phone): "
        f"{format_percent(instability(lighting))}"
    )
    print(
        f"  lens manufacturing tolerance (4 units, one model):   "
        f"{format_percent(instability(lens))}"
    )

    # Both axes produce measurable, bounded instability.
    assert 0.0 <= instability(lighting) <= 0.6
    assert 0.0 <= instability(lens) <= 0.4
