"""Substrate micro-benchmarks: codec and pipeline throughput.

Classic pytest-benchmark timings for the building blocks every
experiment leans on. Useful for catching performance regressions in the
vectorized NumPy paths (DCT, Huffman, demosaic, CNN inference).
"""

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.devices import Phone, capture_fleet
from repro.imaging import ImageBuffer
from repro.isp import build_isp
from repro.nn.preprocess import to_model_input
from repro.sensor import BayerSensor, SensorConfig


@pytest.fixture(scope="module")
def test_image():
    from scipy import ndimage

    rng = np.random.default_rng(0)
    img = ndimage.gaussian_filter(rng.random((96, 96, 3)), (3, 3, 0))
    img = (img - img.min()) / (img.max() - img.min())
    return ImageBuffer(img.astype(np.float32))


@pytest.fixture(scope="module")
def test_raw(test_image):
    sensor = BayerSensor(SensorConfig(resolution=(96, 96)))
    return sensor.capture(test_image, np.random.default_rng(0))


@pytest.mark.parametrize("fmt", ["jpeg", "png", "webp", "heif"])
def test_codec_encode_throughput(benchmark, test_image, fmt):
    codec = get_codec(fmt)
    if codec.default_quality is None:
        benchmark(codec.encode, test_image)
    else:
        benchmark(codec.encode, test_image, quality=codec.default_quality)


@pytest.mark.parametrize("fmt", ["jpeg", "png", "webp", "heif"])
def test_codec_decode_throughput(benchmark, test_image, fmt):
    codec = get_codec(fmt)
    if codec.default_quality is None:
        data = codec.encode(test_image)
    else:
        data = codec.encode(test_image, quality=codec.default_quality)
    benchmark(codec.decode, data)


@pytest.mark.parametrize("isp", ["imagemagick", "samsung_s10", "adobe"])
def test_isp_throughput(benchmark, test_raw, isp):
    pipeline = build_isp(isp)
    benchmark(pipeline.process, test_raw)


def test_full_capture_path_throughput(benchmark, test_image):
    phone = Phone(capture_fleet()[0])
    rng = np.random.default_rng(0)
    benchmark(phone.photograph, test_image, rng)


def test_model_inference_throughput(benchmark, base_model, test_image):
    x = to_model_input([test_image] * 32)
    benchmark(base_model.predict_proba, x)
