"""Substrate micro-benchmarks: codec and pipeline throughput.

Classic pytest-benchmark timings for the building blocks every
experiment leans on. Useful for catching performance regressions in the
vectorized NumPy paths (DCT, Huffman, demosaic, CNN inference).
"""

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.devices import Phone, capture_fleet
from repro.imaging import ImageBuffer
from repro.isp import build_isp
from repro.nn.preprocess import to_model_input
from repro.sensor import BayerSensor, SensorConfig


@pytest.fixture(scope="module")
def test_image():
    from scipy import ndimage

    rng = np.random.default_rng(0)
    img = ndimage.gaussian_filter(rng.random((96, 96, 3)), (3, 3, 0))
    img = (img - img.min()) / (img.max() - img.min())
    return ImageBuffer(img.astype(np.float32))


@pytest.fixture(scope="module")
def test_raw(test_image):
    sensor = BayerSensor(SensorConfig(resolution=(96, 96)))
    return sensor.capture(test_image, np.random.default_rng(0))


@pytest.mark.parametrize("fmt", ["jpeg", "png", "webp", "heif"])
def test_codec_encode_throughput(benchmark, test_image, fmt):
    codec = get_codec(fmt)
    if codec.default_quality is None:
        benchmark(codec.encode, test_image)
    else:
        benchmark(codec.encode, test_image, quality=codec.default_quality)


@pytest.mark.parametrize("fmt", ["jpeg", "png", "webp", "heif"])
def test_codec_decode_throughput(benchmark, test_image, fmt):
    codec = get_codec(fmt)
    if codec.default_quality is None:
        data = codec.encode(test_image)
    else:
        data = codec.encode(test_image, quality=codec.default_quality)
    benchmark(codec.decode, data)


@pytest.mark.parametrize("isp", ["imagemagick", "samsung_s10", "adobe"])
def test_isp_throughput(benchmark, test_raw, isp):
    pipeline = build_isp(isp)
    benchmark(pipeline.process, test_raw)


def test_full_capture_path_throughput(benchmark, test_image):
    phone = Phone(capture_fleet()[0])
    rng = np.random.default_rng(0)
    benchmark(phone.photograph, test_image, rng)


def test_model_inference_throughput(benchmark, base_model, test_image):
    x = to_model_input([test_image] * 32)
    benchmark(base_model.predict_proba, x)


# ----------------------------------------------------------------------
# Fleet executor: parallel + cached end-to-end vs. the serial seed path
# ----------------------------------------------------------------------
def _fleet_model():
    from repro.nn.model import micro_mobilenet

    # Untrained but deterministic: executor throughput does not depend on
    # model quality, and this keeps the bench independent of the 4-minute
    # base-model training.
    return micro_mobilenet(num_classes=8, seed=5)


def _fleet_run(model, workers=0, cache=None):
    from repro.lab import EndToEndExperiment

    return EndToEndExperiment(
        model=model, angles=(0.0, 15.0), seed=0, workers=workers, cache=cache
    ).run(per_class=2)


def test_fleet_executor_warm_cache_speedup(tmp_path):
    """Acceptance: >= 2x end-to-end speedup at 4 workers on a warm cache
    vs. the serial seed path, with bit-identical results."""
    import time

    from repro.runner import CaptureCache

    model = _fleet_model()

    start = time.perf_counter()
    serial = _fleet_run(model)
    t_serial = time.perf_counter() - start

    cache = CaptureCache(tmp_path / "fleet-cache")
    parallel_exp_time = time.perf_counter()
    cold = _fleet_run(model, workers=4, cache=cache)
    t_parallel_cold = time.perf_counter() - parallel_exp_time

    start = time.perf_counter()
    warm = _fleet_run(model, workers=4, cache=cache)
    t_warm = time.perf_counter() - start

    assert serial.records == cold.records == warm.records
    speedup = t_serial / t_warm
    print(
        f"\nfleet end-to-end: serial {t_serial:.2f}s, "
        f"4-worker cold {t_parallel_cold:.2f}s, "
        f"4-worker warm-cache {t_warm:.2f}s ({speedup:.1f}x vs serial)"
    )
    assert speedup >= 2.0, f"warm-cache speedup {speedup:.2f}x < 2x"


def test_fleet_executor_parallel_throughput(benchmark):
    """Raw 4-worker fan-out, no cache (scheduling + IPC overhead check)."""
    model = _fleet_model()
    benchmark.pedantic(
        lambda: _fleet_run(model, workers=4), rounds=1, iterations=1, warmup_rounds=0
    )
