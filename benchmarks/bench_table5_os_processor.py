"""§7 / Table 5: the OS-and-processor experiment on the Firebase fleet.

Paper: pushing identical image files to five phones with different SoCs
yields only 0.64% instability on JPEG; the divergence traces to two OS
JPEG-decoder camps (Huawei+Xiaomi vs. the rest — different pixel-buffer
MD5s), and vanishes entirely on PNG.
"""

from repro.core import format_percent
from repro.lab import FirebaseTestLab

from .conftest import run_once


def test_table5_os_processor(benchmark, base_model):
    lab = FirebaseTestLab(model=base_model, seed=0)

    def run_both():
        return (
            lab.run(num_photos=150, image_format="jpeg"),
            lab.run(num_photos=150, image_format="png"),
        )

    jpeg_out, png_out = run_once(benchmark, run_both)

    print("\n=== §7: OS/processor (paper: jpeg 0.64%, png 0.00%) ===")
    print(f"  JPEG instability: {format_percent(jpeg_out.instability())}")
    print(f"  PNG instability:  {format_percent(png_out.instability())}")
    print("  JPEG decode-hash camps:")
    for group, devices in jpeg_out.hash_groups().items():
        print(f"    {group}: {', '.join(devices)}")
    print(f"  PNG decode-hash camps: {len(png_out.hash_groups())}")

    # Shape: tiny-but-nonzero JPEG instability, exactly two JPEG hash
    # camps with Huawei+Xiaomi together, zero PNG instability, one PNG camp.
    assert 0.0 <= jpeg_out.instability() < 0.05
    assert png_out.instability() == 0.0
    camps = sorted(jpeg_out.hash_groups().values(), key=len)
    assert len(camps) == 2
    assert camps[0] == ["huawei_mate_rs", "xiaomi_mi_8_pro"]
    assert len(png_out.hash_groups()) == 1
