"""Figure 4: prediction confidence for stable vs. unstable images.

Paper: on stable images, correct predictions are high-confidence and
incorrect ones lower; on unstable images the correct and incorrect
sides have nearly identical (low) confidence — the flips happen where
the model was unsure anyway.
"""

import numpy as np

from repro.core import confidence_analysis

from .conftest import run_once


def test_fig4_confidence_distributions(benchmark, end_to_end_result):
    split = run_once(benchmark, lambda: confidence_analysis(end_to_end_result))
    summary = split.summary()

    print("\n=== Figure 4: confidence by stability group (mean ± std) ===")
    for group, (mean, std) in summary.items():
        n = len(getattr(split, group))
        print(f"  {group:18s}: {mean:.3f} ± {std:.3f}  (n={n})")

    sc_mean = summary["stable_correct"][0]
    uc_mean = summary["unstable_correct"][0]
    ui_mean = summary["unstable_incorrect"][0]

    # Shape: stable-correct is the most confident group; the two unstable
    # sides sit close together and below stable-correct.
    assert sc_mean > uc_mean
    assert abs(uc_mean - ui_mean) < 0.25
