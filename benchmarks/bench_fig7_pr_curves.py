"""Figure 7: precision-recall curves for the fine-tuning schemes.

Paper: stability training does not trade accuracy for stability — the
PR curves of the stability-trained models sit at or slightly above the
plain fine-tuned baseline, with the two-image schemes highest.
"""

import numpy as np

from repro.core import average_precision, micro_average_pr
from repro.lab.rig import DEFAULT_ANGLES
from repro.mitigation import (
    NoNoise,
    StabilityTrainConfig,
    StabilityTrainer,
    TwoImageNoise,
    DistortionNoise,
    build_stability_corpus,
)

from .conftest import run_once


def test_fig7_precision_recall(benchmark, base_model):
    corpus = build_stability_corpus(
        per_class=12, train_fraction=0.5, angles=DEFAULT_ANGLES, seed=0
    )
    x_eval = np.concatenate([corpus.x_test_primary, corpus.x_test_secondary])
    y_eval = np.concatenate([corpus.y_test, corpus.y_test])

    schemes = {
        "no_noise": (NoNoise(), 0.0, "kl"),
        "two_images_embedding": (TwoImageNoise(corpus.x_train_secondary), 1.0, "embedding"),
        "distortion_kl": (DistortionNoise(), 1.0, "kl"),
    }

    def train_and_score():
        aps = {}
        for name, (noise, alpha, loss) in schemes.items():
            model = base_model.copy()
            trainer = StabilityTrainer(
                model,
                noise,
                StabilityTrainConfig(alpha=alpha, stability_loss=loss, epochs=6, seed=0),
            )
            trainer.fit(corpus.x_train_primary, corpus.y_train)
            proba = model.predict_proba(x_eval)
            curve = micro_average_pr(proba, y_eval)
            aps[name] = average_precision(curve)
        return aps

    aps = run_once(benchmark, train_and_score)

    print("\n=== Figure 7: micro-averaged PR (average precision) ===")
    for name, ap in aps.items():
        print(f"  {name}: AP={ap:.3f}")

    # Shape: stability training costs at most a little AP vs the plain
    # fine-tuned baseline (the paper found it slightly *helps*).
    baseline = aps["no_noise"]
    for name, ap in aps.items():
        assert ap > baseline - 0.08, f"{name} collapsed vs baseline"
