"""Tests for stability training and the mitigation wrappers."""

import numpy as np
import pytest

from repro.core import ExperimentResult, instability
from repro.mitigation.data import StabilityCorpus, build_stability_corpus
from repro.mitigation.noise import GaussianNoise, NoNoise, TwoImageNoise
from repro.mitigation.raw_pipeline import ConsistentRawConverter
from repro.mitigation.stability import (
    StabilityTrainConfig,
    StabilityTrainer,
    evaluate_cross_device_instability,
)
from repro.mitigation.topk import simplify_task
from repro.nn.model import micro_mobilenet
from tests.conftest import make_record


@pytest.fixture(scope="module")
def corpus():
    return build_stability_corpus(per_class=2, angles=(0.0,), seed=0)


class TestConfig:
    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            StabilityTrainConfig(alpha=-1.0)

    def test_rejects_unknown_loss(self):
        with pytest.raises(ValueError):
            StabilityTrainConfig(stability_loss="wasserstein")


class TestCorpus:
    def test_alignment_validated(self, corpus):
        with pytest.raises(ValueError):
            StabilityCorpus(
                x_train_primary=corpus.x_train_primary,
                x_train_secondary=corpus.x_train_secondary[:-1],
                y_train=corpus.y_train,
                x_test_primary=corpus.x_test_primary,
                x_test_secondary=corpus.x_test_secondary,
                y_test=corpus.y_test,
                test_displayed=corpus.test_displayed,
                primary_name="a",
                secondary_name="b",
            )

    def test_default_phones_are_the_raw_pair(self, corpus):
        assert corpus.primary_name == "samsung_galaxy_s10"
        assert corpus.secondary_name == "iphone_xr"

    def test_object_level_split(self, corpus):
        # No object appears in both splits: verified indirectly by
        # disjoint image ids in the displayed provenance.
        train_n = len(corpus.y_train)
        test_n = len(corpus.y_test)
        assert train_n > 0 and test_n > 0
        assert corpus.x_train_primary.shape == (train_n, 3, 32, 32)

    def test_deterministic(self):
        a = build_stability_corpus(per_class=1, angles=(0.0,), seed=5)
        b = build_stability_corpus(per_class=1, angles=(0.0,), seed=5)
        assert np.array_equal(a.x_train_primary, b.x_train_primary)
        assert np.array_equal(a.x_test_secondary, b.x_test_secondary)


class TestTrainer:
    def _tiny(self, extra=False):
        return micro_mobilenet(num_classes=8, seed=11, extra_embedding_layer=extra)

    @pytest.mark.parametrize("loss", ["kl", "embedding"])
    def test_training_reduces_total_loss(self, corpus, loss):
        model = self._tiny()
        trainer = StabilityTrainer(
            model,
            GaussianNoise(0.02),
            StabilityTrainConfig(alpha=0.1, stability_loss=loss, epochs=5, seed=0, lr=2e-3),
        )
        history = trainer.fit(corpus.x_train_primary, corpus.y_train)
        assert history[-1]["total"] < history[0]["total"]
        assert all(h["ls"] >= 0 for h in history)

    def test_two_image_noise_integrates(self, corpus):
        model = self._tiny()
        trainer = StabilityTrainer(
            model,
            TwoImageNoise(corpus.x_train_secondary),
            StabilityTrainConfig(alpha=0.5, stability_loss="kl", epochs=2, seed=0),
        )
        history = trainer.fit(corpus.x_train_primary, corpus.y_train)
        assert len(history) == 2

    def test_alpha_zero_matches_plain_fine_tune_mechanics(self, corpus):
        """With alpha=0 the stability term contributes no gradient."""
        a = self._tiny()
        b = self._tiny()
        for model, noise in ((a, NoNoise()), (b, GaussianNoise(0.5))):
            trainer = StabilityTrainer(
                model, noise, StabilityTrainConfig(alpha=0.0, epochs=2, seed=0)
            )
            trainer.fit(corpus.x_train_primary, corpus.y_train)
        xa = a.predict_proba(corpus.x_test_primary)
        xb = b.predict_proba(corpus.x_test_primary)
        # BN running stats see different noisy batches, so allow slack, but
        # the weights-path should be essentially identical.
        assert np.allclose(xa, xb, atol=0.05)

    def test_length_mismatch(self, corpus):
        trainer = StabilityTrainer(
            self._tiny(), NoNoise(), StabilityTrainConfig(epochs=1)
        )
        with pytest.raises(ValueError):
            trainer.fit(corpus.x_train_primary, corpus.y_train[:-1])

    def test_embedding_loss_with_extra_layer(self, corpus):
        model = self._tiny(extra=True)
        trainer = StabilityTrainer(
            model,
            GaussianNoise(0.02),
            StabilityTrainConfig(alpha=0.1, stability_loss="embedding", epochs=1, seed=0),
        )
        history = trainer.fit(corpus.x_train_primary, corpus.y_train)
        assert len(history) == 1


class TestEvaluation:
    def test_records_cover_both_phones(self, corpus, tiny_model):
        result = evaluate_cross_device_instability(tiny_model, corpus)
        assert set(result.environments()) == {
            corpus.primary_name,
            corpus.secondary_name,
        }
        assert len(result) == 2 * len(corpus.y_test)
        assert 0.0 <= instability(result) <= 1.0


class TestTopKMitigation:
    def test_report_values(self):
        records = [
            # unstable at top-1, stable at top-3
            make_record("a", 0, 1, 1, ranking=(1, 2, 3, 0, 4, 5, 6, 7)),
            make_record("b", 0, 1, 2, ranking=(2, 1, 3, 0, 4, 5, 6, 7)),
        ]
        report = simplify_task(ExperimentResult(records), k=3)
        assert report.instability_top1 == 1.0
        assert report.instability_topk == 0.0
        assert report.instability_reduction == 1.0
        assert report.accuracy_topk >= report.accuracy_top1

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            simplify_task(ExperimentResult([make_record()]), k=1)


class TestRawConverter:
    def test_roundtrip(self):
        from repro.codecs import encode_dng
        from repro.imaging import RawImage

        rng = np.random.default_rng(0)
        raw = RawImage(rng.random((32, 32)).astype(np.float32))
        converter = ConsistentRawConverter(output_size=24)
        img = converter.convert(encode_dng(raw))
        assert img.shape == (24, 24, 3)

    def test_consistency_across_devices(self):
        """The point of §9.2: one converter, identical processing."""
        from repro.codecs import encode_dng
        from repro.devices import Phone, capture_fleet
        from repro.imaging import ImageBuffer

        radiance = ImageBuffer.full(96, 96, 0.5)
        converter = ConsistentRawConverter()
        outs = []
        for profile in (p for p in capture_fleet() if p.supports_raw):
            phone = Phone(profile)
            dng = phone.photograph_raw(radiance, np.random.default_rng(1))
            outs.append(converter.convert(dng))
        # Same scene, same converter; differences are sensor-level only.
        diff = np.abs(outs[0].pixels - outs[1].pixels).mean()
        assert diff < 0.1

    def test_convert_many(self):
        from repro.codecs import encode_dng
        from repro.imaging import RawImage

        raw = RawImage(np.full((16, 16), 0.4, dtype=np.float32))
        converter = ConsistentRawConverter(output_size=16)
        outs = converter.convert_many([encode_dng(raw)] * 3)
        assert len(outs) == 3
        assert np.array_equal(outs[0].pixels, outs[1].pixels)
