"""Tests for the stability-training noise generators."""

import numpy as np
import pytest

from repro.mitigation.noise import (
    DistortionNoise,
    GaussianNoise,
    NoNoise,
    SubsampleNoise,
    TwoImageNoise,
)


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, (6, 3, 32, 32)).astype(np.float32)
    labels = np.array([0, 0, 1, 1, 2, 2])
    indices = np.arange(6)
    return x, labels, indices


class TestNoNoise:
    def test_identity(self, batch):
        x, labels, indices = batch
        out = NoNoise().generate(x, labels, indices, np.random.default_rng(0))
        assert out is x


class TestGaussian:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            GaussianNoise(0.0)

    def test_noise_statistics(self, batch):
        x, labels, indices = batch
        gen = GaussianNoise(sigma2=0.04)
        out = gen.generate(np.zeros((4, 3, 32, 32), dtype=np.float32), labels[:4], indices[:4], np.random.default_rng(0))
        assert out.std() == pytest.approx(0.2, rel=0.05)

    def test_clipped_to_valid_range(self, batch):
        x, labels, indices = batch
        out = GaussianNoise(1.0).generate(x, labels, indices, np.random.default_rng(0))
        assert out.min() >= -1.0 and out.max() <= 1.0


class TestDistortion:
    def test_output_differs_and_in_range(self, batch):
        x, labels, indices = batch
        out = DistortionNoise().generate(x, labels, indices, np.random.default_rng(0))
        assert out.shape == x.shape
        assert not np.array_equal(out, x)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_jpeg_quality_range_respected(self, batch):
        """Degenerate quality range still runs (q=95 fixed)."""
        x, labels, indices = batch
        gen = DistortionNoise(jpeg_quality_range=(95, 95))
        out = gen.generate(x[:2], labels[:2], indices[:2], np.random.default_rng(0))
        assert out.shape == (2, 3, 32, 32)

    def test_reproducible_given_rng(self, batch):
        x, labels, indices = batch
        a = DistortionNoise().generate(x, labels, indices, np.random.default_rng(9))
        b = DistortionNoise().generate(x, labels, indices, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestTwoImage:
    def test_returns_paired_rows(self, batch):
        x, labels, indices = batch
        paired = x[::-1].copy()
        gen = TwoImageNoise(paired)
        out = gen.generate(x[2:4], labels[2:4], indices[2:4], np.random.default_rng(0))
        assert np.array_equal(out, paired[2:4])

    def test_out_of_range_index(self, batch):
        x, labels, indices = batch
        gen = TwoImageNoise(x[:2])
        with pytest.raises(IndexError):
            gen.generate(x, labels, indices, np.random.default_rng(0))


class TestSubsample:
    def test_pool_respects_class(self, batch):
        x, labels, indices = batch
        pool_x = np.stack(
            [np.full((3, 32, 32), float(c), dtype=np.float32) for c in (0, 1, 2)]
        )
        pool_labels = np.array([0, 1, 2])
        gen = SubsampleNoise(pool_x, pool_labels)
        out = gen.generate(x, labels, indices, np.random.default_rng(0))
        for i, cls in enumerate(labels):
            assert np.allclose(out[i], float(cls))

    def test_missing_class_raises(self, batch):
        x, labels, indices = batch
        gen = SubsampleNoise(x[:2], np.array([0, 0]))
        with pytest.raises(KeyError):
            gen.generate(x, labels, indices, np.random.default_rng(0))

    def test_from_corpus_limits_pool(self):
        rng = np.random.default_rng(0)
        paired = rng.normal(size=(30, 3, 4, 4)).astype(np.float32)
        labels = np.repeat(np.arange(3), 10)
        gen = SubsampleNoise.from_corpus(paired, labels, images_per_class=2, rng=rng)
        assert all(len(pool) == 2 for pool in gen._by_class.values())

    def test_from_corpus_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SubsampleNoise.from_corpus(
                np.zeros((2, 3, 4, 4), dtype=np.float32),
                np.array([0, 1]),
                images_per_class=0,
                rng=np.random.default_rng(0),
            )

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            SubsampleNoise(np.zeros((0, 3, 4, 4), dtype=np.float32), np.zeros(0))
