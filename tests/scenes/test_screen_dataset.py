"""Tests for the screen simulation and dataset builder."""

import numpy as np
import pytest

from repro.imaging import ImageBuffer
from repro.scenes.dataset import build_dataset
from repro.scenes.objects import ALL_CLASSES, TARGET_CLASSES
from repro.scenes.screen import Screen, ScreenProfile


class TestScreen:
    def test_display_deterministic(self):
        screen = Screen(seed=1)
        img = ImageBuffer.full(32, 32, 0.5)
        a = screen.display(img)
        b = screen.display(img)
        assert np.array_equal(a.pixels, b.pixels)

    def test_different_panels_differ(self):
        img = ImageBuffer.full(32, 32, 0.5)
        a = Screen(seed=1).display(img)
        b = Screen(seed=2).display(img)
        assert not np.array_equal(a.pixels, b.pixels)

    def test_gamma_darkens_midtones(self):
        profile = ScreenProfile(
            backlight_variation=0.0, pixel_grid_contrast=0.0, glare=0.0
        )
        out = Screen(profile).display(ImageBuffer.full(8, 8, 0.5))
        # 0.5 ^ 2.2 ~ 0.218 in linear light.
        assert out.pixels.mean() == pytest.approx(0.5**2.2, abs=0.01)

    def test_glare_lifts_black(self):
        profile = ScreenProfile(glare=0.02, backlight_variation=0.0, pixel_grid_contrast=0.0)
        out = Screen(profile).display(ImageBuffer.full(8, 8, 0.0))
        assert out.pixels.min() >= 0.019

    def test_pixel_grid_texture(self):
        profile = ScreenProfile(
            backlight_variation=0.0, pixel_grid_contrast=0.05, glare=0.0
        )
        out = Screen(profile).display(ImageBuffer.full(8, 8, 1.0))
        assert out.pixels[0, 0, 0] > out.pixels[1, 0, 0]

    def test_white_point(self):
        profile = ScreenProfile(
            white_point=(0.8, 1.0, 1.0),
            backlight_variation=0.0,
            pixel_grid_contrast=0.0,
            glare=0.0,
        )
        out = Screen(profile).display(ImageBuffer.full(8, 8, 1.0))
        assert out.pixels[..., 0].mean() < out.pixels[..., 1].mean()


class TestBuildDataset:
    def test_default_uses_target_classes(self):
        ds = build_dataset(per_class=2, seed=0)
        assert ds.classes == TARGET_CLASSES
        assert len(ds) == 10

    def test_distractors_included_on_request(self):
        ds = build_dataset(per_class=1, include_distractors=True, seed=0)
        assert ds.classes == ALL_CLASSES
        assert len(ds) == 8

    def test_scenes_per_object(self):
        ds = build_dataset(per_class=2, scenes_per_object=3, seed=0)
        assert len(ds) == 2 * 3 * 5
        # All scenes of one object share its spec.
        by_object = {}
        for item in ds:
            by_object.setdefault(item.object_id, []).append(item)
        assert all(len(v) == 3 for v in by_object.values())

    def test_labels_match_class_indices(self):
        ds = build_dataset(per_class=1, include_distractors=True, seed=0)
        for item in ds:
            assert ALL_CLASSES[item.label] == item.class_name

    def test_deterministic(self):
        a = build_dataset(per_class=2, seed=9)
        b = build_dataset(per_class=2, seed=9)
        assert [i.object_id for i in a] == [i.object_id for i in b]
        assert a[0].scene.render(16, 16) == b[0].scene.render(16, 16)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_dataset(per_class=0)
        with pytest.raises(ValueError):
            build_dataset(per_class=1, scenes_per_object=0)
        with pytest.raises(ValueError):
            build_dataset(per_class=1, classes=["flying_carpet"])

    def test_split_by_object(self):
        ds = build_dataset(per_class=4, scenes_per_object=2, seed=0)
        train, test = ds.split(0.5, seed=1)
        train_objects = {i.object_id for i in train}
        test_objects = {i.object_id for i in test}
        assert not train_objects & test_objects
        assert len(train) + len(test) == len(ds)

    def test_split_rejects_bad_fraction(self):
        ds = build_dataset(per_class=2, seed=0)
        with pytest.raises(ValueError):
            ds.split(1.5)

    def test_per_class_counts(self):
        ds = build_dataset(per_class=3, seed=0)
        counts = ds.per_class_counts()
        assert all(v == 3 for v in counts.values())
