"""Tests for object sampling/rendering and scene composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenes.objects import (
    ALL_CLASSES,
    DISTRACTOR_CLASSES,
    TARGET_CLASSES,
    render_object,
    sample_object,
)
from repro.scenes.primitives import Canvas
from repro.scenes.scene import Scene, sample_scene


class TestClasses:
    def test_paper_classes_present(self):
        assert TARGET_CLASSES == (
            "water_bottle",
            "beer_bottle",
            "wine_bottle",
            "purse",
            "backpack",
        )

    def test_distractors_disjoint(self):
        assert not set(TARGET_CLASSES) & set(DISTRACTOR_CLASSES)

    def test_all_classes_order(self):
        assert ALL_CLASSES[:5] == TARGET_CLASSES


class TestSampling:
    def test_deterministic_given_rng(self):
        a = sample_object("purse", 1, np.random.default_rng(5))
        b = sample_object("purse", 1, np.random.default_rng(5))
        assert a.params == b.params

    def test_distinct_objects_differ(self):
        rng = np.random.default_rng(0)
        a = sample_object("backpack", 0, rng)
        b = sample_object("backpack", 1, rng)
        assert a.params != b.params

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            sample_object("spaceship", 0, np.random.default_rng(0))

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_every_class_renders_visibly(self, cls):
        rng = np.random.default_rng(42)
        spec = sample_object(cls, 0, rng)
        canvas = Canvas(64, 64, background=(1.0, 1.0, 1.0))
        render_object(canvas, spec)
        # The object must darken a meaningful area of the white canvas.
        changed = (canvas.pixels < 0.99).any(axis=-1).mean()
        assert changed > 0.03, f"{cls} rendered almost nothing"

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_random_objects_render_without_error(self, seed):
        rng = np.random.default_rng(seed)
        cls = ALL_CLASSES[seed % len(ALL_CLASSES)]
        spec = sample_object(cls, seed, rng)
        canvas = Canvas(32, 32)
        render_object(canvas, spec)
        assert np.isfinite(canvas.pixels).all()


class TestScene:
    def _spec(self):
        return sample_object("purse", 0, np.random.default_rng(3))

    def test_render_deterministic(self):
        scene = Scene(spec=self._spec())
        a = scene.render(48, 48)
        b = scene.render(48, 48)
        assert np.array_equal(a.pixels, b.pixels)

    def test_render_shape_and_range(self):
        img = Scene(spec=self._spec()).render(40, 56)
        assert img.shape == (40, 56, 3)
        assert img.pixels.min() >= 0.0 and img.pixels.max() <= 1.0

    def test_supersampling_antialiases(self):
        scene = Scene(spec=self._spec())
        rough = scene.render(48, 48, supersample=1)
        smooth = scene.render(48, 48, supersample=3)
        # Supersampling introduces intermediate edge values.
        n_rough = len(np.unique(rough.to_uint8()))
        n_smooth = len(np.unique(smooth.to_uint8()))
        assert n_smooth > n_rough

    def test_rejects_bad_supersample(self):
        with pytest.raises(ValueError):
            Scene(spec=self._spec()).render(32, 32, supersample=0)

    def test_brightness_scales(self):
        bright = Scene(spec=self._spec(), brightness=1.1).render(32, 32)
        dark = Scene(spec=self._spec(), brightness=0.8).render(32, 32)
        assert bright.pixels.mean() > dark.pixels.mean()

    def test_warmth_shifts_channels(self):
        warm = Scene(spec=self._spec(), warmth=0.1).render(32, 32)
        cool = Scene(spec=self._spec(), warmth=-0.1).render(32, 32)
        warm_ratio = warm.pixels[..., 0].mean() / warm.pixels[..., 2].mean()
        cool_ratio = cool.pixels[..., 0].mean() / cool.pixels[..., 2].mean()
        assert warm_ratio > cool_ratio

    def test_offset_moves_object(self):
        centered = Scene(spec=self._spec()).render(48, 48)
        shifted = Scene(spec=self._spec(), x_offset=0.2).render(48, 48)
        assert not np.array_equal(centered.pixels, shifted.pixels)

    def test_sample_scene_varies_staging(self):
        rng = np.random.default_rng(0)
        spec = self._spec()
        a = sample_scene(spec, rng)
        b = sample_scene(spec, rng)
        assert a != b
        assert a.spec is spec and b.spec is spec
