"""Tests for rasterization primitives."""

import numpy as np
import pytest

from repro.scenes.primitives import (
    Canvas,
    fill_annulus_arc,
    fill_ellipse,
    fill_polygon,
    fill_rect,
    fill_rounded_rect,
    vertical_gradient,
)


class TestCanvas:
    def test_background_fill(self):
        c = Canvas(4, 6, background=(0.5, 0.25, 0.75))
        assert c.pixels.shape == (4, 6, 3)
        assert np.allclose(c.pixels[..., 0], 0.5)
        assert np.allclose(c.pixels[..., 2], 0.75)

    def test_coordinate_grids(self):
        c = Canvas(2, 2)
        assert c.xx[0, 0] == pytest.approx(0.25)
        assert c.xx[0, 1] == pytest.approx(0.75)
        assert c.yy[1, 0] == pytest.approx(0.75)

    def test_blend_alpha(self):
        c = Canvas(2, 2, background=(0.0, 0.0, 0.0))
        c.blend(np.ones((2, 2), dtype=bool), (1.0, 1.0, 1.0), alpha=0.5)
        assert np.allclose(c.pixels, 0.5)


class TestRect:
    def test_fills_inside_only(self):
        c = Canvas(10, 10, background=(0, 0, 0))
        fill_rect(c, 0.25, 0.25, 0.75, 0.75, (1, 1, 1))
        assert c.pixels[5, 5, 0] == 1.0
        assert c.pixels[0, 0, 0] == 0.0

    def test_area_fraction(self):
        c = Canvas(100, 100, background=(0, 0, 0))
        fill_rect(c, 0.0, 0.0, 0.5, 1.0, (1, 1, 1))
        assert c.pixels[..., 0].mean() == pytest.approx(0.5, abs=0.02)


class TestEllipse:
    def test_center_filled(self):
        c = Canvas(20, 20, background=(0, 0, 0))
        fill_ellipse(c, 0.5, 0.5, 0.3, 0.2, (1, 0, 0))
        assert c.pixels[10, 10, 0] == 1.0
        assert c.pixels[0, 0, 0] == 0.0

    def test_area_matches_formula(self):
        c = Canvas(200, 200, background=(0, 0, 0))
        fill_ellipse(c, 0.5, 0.5, 0.4, 0.25, (1, 1, 1))
        assert c.pixels[..., 0].mean() == pytest.approx(np.pi * 0.4 * 0.25, abs=0.01)

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            fill_ellipse(Canvas(4, 4), 0.5, 0.5, 0.0, 0.2, (1, 1, 1))


class TestPolygon:
    def test_triangle(self):
        c = Canvas(50, 50, background=(0, 0, 0))
        fill_polygon(c, [(0.5, 0.1), (0.9, 0.9), (0.1, 0.9)], (0, 1, 0))
        assert c.pixels[35, 25, 1] == 1.0  # inside
        assert c.pixels[5, 5, 1] == 0.0  # outside

    def test_square_area(self):
        c = Canvas(100, 100, background=(0, 0, 0))
        fill_polygon(
            c, [(0.2, 0.2), (0.8, 0.2), (0.8, 0.8), (0.2, 0.8)], (1, 1, 1)
        )
        assert c.pixels[..., 0].mean() == pytest.approx(0.36, abs=0.02)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            fill_polygon(Canvas(4, 4), [(0, 0), (1, 1)], (1, 1, 1))


class TestRoundedRect:
    def test_corners_cut(self):
        c = Canvas(100, 100, background=(0, 0, 0))
        fill_rounded_rect(c, 0.1, 0.1, 0.9, 0.9, 0.2, (1, 1, 1))
        assert c.pixels[50, 50, 0] == 1.0
        # The extreme corner of the bounding box is outside the rounding.
        assert c.pixels[11, 11, 0] == 0.0

    def test_radius_clamped(self):
        c = Canvas(50, 50, background=(0, 0, 0))
        fill_rounded_rect(c, 0.4, 0.4, 0.6, 0.6, 10.0, (1, 1, 1))
        assert c.pixels[25, 25, 0] == 1.0


class TestAnnulus:
    def test_ring_shape(self):
        c = Canvas(100, 100, background=(0, 0, 0))
        fill_annulus_arc(c, 0.5, 0.5, 0.4, 0.3, (1, 1, 1), upper_only=False)
        assert c.pixels[50, 50, 0] == 0.0  # hole
        assert c.pixels[50, 15, 0] == 1.0  # ring at left

    def test_upper_only(self):
        c = Canvas(100, 100, background=(0, 0, 0))
        fill_annulus_arc(c, 0.5, 0.5, 0.4, 0.3, (1, 1, 1), upper_only=True)
        assert c.pixels[15, 50, 0] == 1.0  # above center
        assert c.pixels[85, 50, 0] == 0.0  # below center

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            fill_annulus_arc(Canvas(4, 4), 0.5, 0.5, 0.2, 0.3, (1, 1, 1))


def test_vertical_gradient():
    c = Canvas(10, 4)
    vertical_gradient(c, (0, 0, 0), (1, 1, 1))
    col = c.pixels[:, 0, 0]
    assert np.all(np.diff(col) > 0)
    assert col[0] < 0.1 and col[-1] > 0.9
