"""Integration tests for the lab experiments (small configurations).

These use the untrained ``tiny_model`` fixture — the experiments'
mechanics (capture plumbing, record bookkeeping, metric wiring) do not
depend on model quality, and the benchmark harness covers the calibrated
results.
"""

import numpy as np
import pytest

from repro.core import accuracy, instability
from repro.lab import (
    CompressionFormatExperiment,
    CompressionQualityExperiment,
    EndToEndExperiment,
    ISPComparisonExperiment,
    RawCaptureBank,
    RawVsJpegExperiment,
    repeat_shot_demo,
    scaled_mb,
    topk_comparison,
)
from repro.lab.common import SIZE_SCALE_TO_12MP


@pytest.fixture(scope="module")
def small_bank():
    return RawCaptureBank.collect(per_class=1, seed=0)


@pytest.fixture(scope="module")
def end_to_end_result(tiny_model):
    exp = EndToEndExperiment(model=tiny_model, angles=(0.0, 15.0), seed=0)
    return exp.run(per_class=1)


class TestEndToEnd:
    def test_record_counts(self, end_to_end_result):
        # 5 classes x 1 object x 2 angles x 5 phones.
        assert len(end_to_end_result) == 50
        assert len(end_to_end_result.environments()) == 5

    def test_records_carry_probabilities(self, end_to_end_result):
        r = end_to_end_result.records[0]
        assert len(r.metadata["probabilities"]) == 8
        assert r.angle in (0.0, 15.0)

    def test_metrics_computable(self, end_to_end_result):
        assert 0.0 <= accuracy(end_to_end_result) <= 1.0
        assert 0.0 <= instability(end_to_end_result) <= 1.0

    def test_deterministic(self, tiny_model):
        runs = []
        for _ in range(2):
            exp = EndToEndExperiment(model=tiny_model, angles=(0.0,), seed=3)
            result = exp.run(per_class=1)
            runs.append([r.predicted_label for r in result])
        assert runs[0] == runs[1]

    def test_rejects_bad_repeats(self, tiny_model):
        with pytest.raises(ValueError):
            EndToEndExperiment(model=tiny_model, repeats=0)


class TestRawBank:
    def test_bank_covers_both_raw_phones(self, small_bank):
        assert set(small_bank.phone_names) == {"samsung_galaxy_s10", "iphone_xr"}
        assert len(small_bank) == 10  # 5 scenes x 2 phones

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            RawCaptureBank.collect(phones=[])


class TestCompressionExperiments:
    def test_quality_experiment(self, tiny_model, small_bank):
        out = CompressionQualityExperiment(model=tiny_model).run(small_bank)
        assert set(out.avg_size_bytes) == {"jpeg-q100", "jpeg-q85", "jpeg-q50"}
        # Quality monotonicity in size holds regardless of the model.
        assert (
            out.avg_size_bytes["jpeg-q100"]
            > out.avg_size_bytes["jpeg-q85"]
            > out.avg_size_bytes["jpeg-q50"]
        )
        assert 0.0 <= out.instability() <= 1.0
        accs = out.accuracy_by_environment()
        assert len(accs) == 3

    def test_format_experiment(self, tiny_model, small_bank):
        out = CompressionFormatExperiment(model=tiny_model).run(small_bank)
        assert set(out.avg_size_bytes) == {"jpeg", "png", "webp", "heif"}
        # PNG (lossless) is the biggest, as in the paper's Table 3.
        assert out.avg_size_bytes["png"] == max(out.avg_size_bytes.values())

    def test_scaled_sizes(self, tiny_model, small_bank):
        out = CompressionQualityExperiment(model=tiny_model).run(small_bank)
        for env, size in out.avg_size_bytes.items():
            assert out.avg_size_mb_scaled[env] == pytest.approx(
                size * SIZE_SCALE_TO_12MP / 1e6
            )

    def test_scaled_mb_helper(self):
        assert scaled_mb(1_000_000) == pytest.approx(SIZE_SCALE_TO_12MP)


class TestISPComparison:
    def test_runs_both_isps(self, tiny_model, small_bank):
        out = ISPComparisonExperiment(model=tiny_model).run(small_bank)
        assert set(out.result.environments()) == {"imagemagick", "adobe"}
        assert 0.0 <= out.instability() <= 1.0

    def test_requires_two_isps(self, tiny_model):
        with pytest.raises(ValueError):
            ISPComparisonExperiment(model=tiny_model, isps=("imagemagick",))


class TestRawVsJpeg:
    def test_two_arms_populated(self, tiny_model):
        out = RawVsJpegExperiment(model=tiny_model, seed=0).run(per_class=1)
        assert len(out.jpeg_result) == 10  # 5 scenes x 2 phones
        assert len(out.raw_result) == 10
        assert set(out.jpeg_result.environments()) == {
            "samsung_galaxy_s10",
            "iphone_xr",
        }
        table = out.accuracy_table()
        assert len(table) == 4


class TestTopK:
    def test_topk_never_worse(self, end_to_end_result):
        out = topk_comparison(end_to_end_result, k=3)
        assert out["accuracy_top3"] >= out["accuracy_top1"]
        assert out["instability_top3"] <= 1.0

    def test_rejects_k1(self, end_to_end_result):
        with pytest.raises(ValueError):
            topk_comparison(end_to_end_result, k=1)


class TestRepeatShot:
    def test_demo_returns_outcome(self, tiny_model):
        out = repeat_shot_demo(model=tiny_model, seed=0, max_scenes=5)
        assert 0.0 <= out.diff.divergent_fraction <= 1.0
        assert out.diff.threshold == 0.05
        assert isinstance(out.diverged, bool)
