"""generate_fleet() populations drop into the lab experiments.

ROADMAP follow-up to the fleet package: the synthetic populations sample
real ``DeviceProfile`` objects, so ``fleet_size=`` on an experiment must
behave exactly like passing ``phones=generate_fleet(fleet_size, seed)``.
"""

import pytest

from repro.fleet.population import generate_fleet
from repro.lab import EndToEndExperiment
from repro.lab.experiments import RawCaptureBank, RawVsJpegExperiment


class TestFleetSizeWiring:
    def test_fleet_size_equals_explicit_population(self, tiny_model):
        by_size = EndToEndExperiment(
            fleet_size=5, model=tiny_model, angles=(0.0,), seed=3
        )
        explicit = EndToEndExperiment(
            phones=generate_fleet(5, seed=3), model=tiny_model, angles=(0.0,), seed=3
        )
        assert [p.name for p in by_size.profiles] == [
            p.name for p in explicit.profiles
        ]
        a = by_size.run(per_class=1)
        b = explicit.run(per_class=1)
        assert list(a.records) == list(b.records)

    def test_default_is_paper_fleet(self, tiny_model):
        from repro.devices import capture_fleet

        experiment = EndToEndExperiment(model=tiny_model)
        assert [p.name for p in experiment.profiles] == [
            p.name for p in capture_fleet()
        ]

    def test_phones_and_fleet_size_are_exclusive(self, tiny_model):
        with pytest.raises(ValueError):
            EndToEndExperiment(
                phones=generate_fleet(2), fleet_size=2, model=tiny_model
            )

    def test_raw_bank_filters_population_to_raw_capable(self):
        population = generate_fleet(12, seed=1)
        raw_capable = [p for p in population if p.supports_raw]
        if not raw_capable:
            with pytest.raises(ValueError):
                RawCaptureBank.collect(per_class=1, seed=1, fleet_size=12)
            return
        bank = RawCaptureBank.collect(per_class=1, seed=1, fleet_size=12)
        assert set(bank.phone_names) == {p.name for p in raw_capable}

    def test_raw_vs_jpeg_accepts_population(self, tiny_model):
        population = generate_fleet(12, seed=1)
        raw_capable = [p for p in population if p.supports_raw]
        if not raw_capable:
            with pytest.raises(ValueError):
                RawVsJpegExperiment(model=tiny_model, seed=1, fleet_size=12)
            return
        experiment = RawVsJpegExperiment(model=tiny_model, seed=1, fleet_size=12)
        assert [p.name for p in experiment.profiles] == [
            p.name for p in raw_capable
        ]
