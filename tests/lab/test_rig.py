"""Tests for the capture rig."""

import numpy as np
import pytest

from repro.lab.rig import DEFAULT_ANGLES, CaptureRig
from repro.scenes import Screen, build_dataset


@pytest.fixture(scope="module")
def small_dataset():
    return build_dataset(per_class=1, seed=0)


class TestCaptureRig:
    def test_default_angles_are_the_papers_five(self):
        assert len(DEFAULT_ANGLES) == 5
        assert DEFAULT_ANGLES[2] == 0.0
        assert DEFAULT_ANGLES[0] == -DEFAULT_ANGLES[-1]

    def test_rejects_empty_angles(self):
        with pytest.raises(ValueError):
            CaptureRig(angles=())

    def test_present_enumerates_scene_angle_grid(self, small_dataset):
        rig = CaptureRig(screen=Screen(seed=0), angles=(0.0, 10.0))
        displayed = rig.present(list(small_dataset))
        assert len(displayed) == len(small_dataset) * 2
        # image_ids are unique and dense.
        ids = [d.image_id for d in displayed]
        assert ids == list(range(len(displayed)))

    def test_presentation_is_deterministic(self, small_dataset):
        rig = CaptureRig(screen=Screen(seed=0), angles=(0.0, 20.0))
        a = rig.present(list(small_dataset))
        b = rig.present(list(small_dataset))
        for da, db in zip(a, b):
            assert np.array_equal(da.radiance.pixels, db.radiance.pixels)

    def test_angles_change_radiance(self, small_dataset):
        rig = CaptureRig(screen=Screen(seed=0), angles=(0.0, 25.0))
        displayed = rig.present(list(small_dataset)[:1])
        assert not np.array_equal(
            displayed[0].radiance.pixels, displayed[1].radiance.pixels
        )

    def test_items_carry_provenance(self, small_dataset):
        rig = CaptureRig(screen=Screen(seed=0), angles=(0.0,))
        displayed = rig.present(list(small_dataset))
        for shown, item in zip(displayed, small_dataset):
            assert shown.item is item
            assert shown.angle == 0.0
