"""Tests for the Firebase (OS/processor) experiment simulation."""

import pytest

from repro.lab.firebase import FirebaseTestLab


@pytest.fixture(scope="module")
def lab(tiny_model):
    return FirebaseTestLab(model=tiny_model, seed=0)


class TestPhotoSet:
    def test_fixed_photo_set_is_deterministic(self, lab):
        a = lab.build_photo_set(num_photos=5)
        b = lab.build_photo_set(num_photos=5)
        assert [p["bytes"] for p in a] == [p["bytes"] for p in b]

    def test_photo_set_size(self, lab):
        photos = lab.build_photo_set(num_photos=10)
        assert len(photos) == 10

    def test_photo_formats(self, lab):
        from repro.codecs import sniff_format

        jpegs = lab.build_photo_set(num_photos=5, image_format="jpeg")
        pngs = lab.build_photo_set(num_photos=5, image_format="png")
        assert all(sniff_format(p["bytes"]) == "jpeg" for p in jpegs)
        assert all(sniff_format(p["bytes"]) == "png" for p in pngs)


class TestRun:
    def test_jpeg_produces_two_hash_camps(self, lab):
        """The paper's §7 diagnostic: Huawei+Xiaomi hash apart from the rest."""
        out = lab.run(num_photos=8, image_format="jpeg")
        groups = out.hash_groups()
        assert len(groups) == 2
        camps = sorted(groups.values(), key=len)
        assert camps[0] == ["huawei_mate_rs", "xiaomi_mi_8_pro"]
        assert camps[1] == ["pixel_2", "samsung_galaxy_note8", "sony_xz3"]

    def test_png_single_hash_camp_zero_instability(self, lab):
        """PNG decodes bit-identically everywhere -> no instability at all."""
        out = lab.run(num_photos=8, image_format="png")
        assert len(out.hash_groups()) == 1
        assert out.instability() == 0.0

    def test_jpeg_instability_bounded_by_decoder_difference(self, lab):
        out = lab.run(num_photos=8, image_format="jpeg")
        # Decoder deltas are tiny; instability must be far below the
        # cross-phone end-to-end level.
        assert out.instability() <= 0.25

    def test_records_cover_all_devices(self, lab):
        out = lab.run(num_photos=4)
        assert len(out.result) == 4 * 5
        assert len(out.result.environments()) == 5
