"""Tests for the future-work extension experiments."""

import pytest

from repro.core import instability
from repro.lab import LensVariationExperiment, LightingVariationExperiment


class TestLightingVariation:
    def test_environments_are_conditions(self, tiny_model):
        result = LightingVariationExperiment(model=tiny_model, seed=0).run(per_class=1)
        assert result.environments() == ["dim_warm", "nominal", "bright_cool"]
        assert len(result) == 15  # 5 scenes x 3 conditions

    def test_instability_defined(self, tiny_model):
        result = LightingVariationExperiment(model=tiny_model, seed=0).run(per_class=1)
        assert 0.0 <= instability(result) <= 1.0

    def test_deterministic(self, tiny_model):
        a = LightingVariationExperiment(model=tiny_model, seed=1).run(per_class=1)
        b = LightingVariationExperiment(model=tiny_model, seed=1).run(per_class=1)
        assert [r.predicted_label for r in a] == [r.predicted_label for r in b]


class TestLensVariation:
    def test_units_distinct(self, tiny_model):
        exp = LensVariationExperiment(model=tiny_model, units=3, seed=0)
        profiles = exp._unit_profiles()
        assert len(profiles) == 3
        blurs = {p.sensor.lens.blur_sigma for p in profiles}
        assert len(blurs) == 3  # tolerances actually vary

    def test_rejects_single_unit(self, tiny_model):
        with pytest.raises(ValueError):
            LensVariationExperiment(model=tiny_model, units=1)

    def test_run_produces_cross_unit_records(self, tiny_model):
        result = LensVariationExperiment(model=tiny_model, units=2, seed=0).run(per_class=1)
        assert len(result.environments()) == 2
        assert 0.0 <= instability(result) <= 1.0
