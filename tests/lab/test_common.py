"""Tests for the lab's shared plumbing."""

import numpy as np
import pytest

from repro.devices.runtime import Prediction
from repro.imaging import ImageBuffer
from repro.lab.common import SIZE_SCALE_TO_12MP, make_record, scaled_mb
from repro.lab.rig import DisplayedImage
from repro.scenes.dataset import LabeledScene
from repro.scenes.objects import sample_object
from repro.scenes.scene import Scene


def _displayed(image_id=5, angle=15.0, label=2, class_name="wine_bottle"):
    spec = sample_object(class_name, object_id=9, rng=np.random.default_rng(0))
    item = LabeledScene(
        scene=Scene(spec=spec), class_name=class_name, label=label, object_id=9
    )
    return DisplayedImage(
        image_id=image_id,
        radiance=ImageBuffer.full(8, 8, 0.5),
        item=item,
        angle=angle,
    )


def _prediction(top=3):
    probs = [0.05] * 8
    probs[top] = 1.0 - 0.05 * 7
    ranking = tuple(
        sorted(range(8), key=lambda c: -probs[c])
    )
    return Prediction(ranking=ranking, probabilities=tuple(probs))


class TestMakeRecord:
    def test_fields_copied_from_displayed(self):
        record = make_record(_prediction(), _displayed(), environment="phone_x")
        assert record.environment == "phone_x"
        assert record.image_id == 5
        assert record.angle == 15.0
        assert record.true_label == 2
        assert record.class_name == "wine_bottle"
        assert record.predicted_label == 3
        assert record.metadata["object_key"] == 9
        assert record.metadata["predicted_class"] == "purse"

    def test_image_id_override(self):
        record = make_record(
            _prediction(), _displayed(), environment="e", image_id=42
        )
        assert record.image_id == 42

    def test_probabilities_preserved(self):
        pred = _prediction()
        record = make_record(pred, _displayed(), environment="e")
        assert record.metadata["probabilities"] == pred.probabilities
        assert record.confidence == pytest.approx(pred.confidence)


class TestScaledSizes:
    def test_scale_factor_documented_value(self):
        assert SIZE_SCALE_TO_12MP == pytest.approx(12_000_000 / 9216)

    def test_scaled_mb(self):
        assert scaled_mb(9216) == pytest.approx(12_000_000 / 1e6 * 9216 / 9216 / 1000 * 1000, rel=1e-6)
        # A 9216-byte file (1 byte/pixel at 96x96) scales to 12 MB at 12 MP.
        assert scaled_mb(9216) == pytest.approx(12.0)
