"""Observability neutrality: instrumented runs are bit-identical to bare runs.

The obs layer's core contract is that hooks never touch an RNG and never
alter a payload, so enabling tracing/metrics — serially or across a
worker pool — cannot change a single output bit. This suite locks that
in at the experiment level, plus end-to-end smoke for the export and
report path.
"""

import numpy as np

from repro import obs
from repro.lab import EndToEndExperiment
from repro.obs.report import render_report
from repro.runner import CaptureCache, CaptureUnit, execute_unit, unit_entropy
from repro.runner.units import execute_unit_observed


def _records(result):
    return list(result.records)


class TestBitIdentical:
    def test_serial_observed_equals_bare(self, tiny_model):
        bare = EndToEndExperiment(model=tiny_model, angles=(0.0,), seed=5).run(
            per_class=1
        )
        with obs.observed():
            traced = EndToEndExperiment(
                model=tiny_model, angles=(0.0,), seed=5
            ).run(per_class=1)
        assert _records(bare) == _records(traced)

    def test_parallel_observed_equals_bare_serial(self, tiny_model, tmp_path):
        bare = EndToEndExperiment(model=tiny_model, angles=(0.0,), seed=5).run(
            per_class=1
        )
        with obs.observed() as ob:
            traced = EndToEndExperiment(
                model=tiny_model,
                angles=(0.0,),
                seed=5,
                workers=2,
                cache=CaptureCache(tmp_path / "fleet"),
            ).run(per_class=1)
        assert _records(bare) == _records(traced)
        # The worker spans made it back across the pool boundary. The
        # batched executor runs photograph units through the fused group
        # path, so the per-unit spans appear under their group names.
        names = {span.name for span in ob.tracer.finished()}
        assert "fleet.run" in names
        assert "unit.execute_group" in names
        assert "isp.process_batch" in names
        counters = ob.metrics.snapshot()["counters"]
        assert counters["fleet.units_executed"] == counters["fleet.units_submitted"]

    def test_unit_payload_identical_under_observation(self, small_radiance):
        from repro.devices import capture_fleet

        profile = capture_fleet()[0]
        unit = CaptureUnit(
            kind="photograph",
            profile=profile,
            radiance=small_radiance,
            entropy=unit_entropy(0, profile.name, 0, 0),
        )
        bare = execute_unit(unit)
        observed_payload, span_dicts, metrics_snapshot = execute_unit_observed(unit)
        for key in bare:
            assert np.array_equal(bare[key], observed_payload[key]), key
        assert bare.keys() == observed_payload.keys()
        assert any(d["name"] == "unit.execute" for d in span_dicts)
        assert metrics_snapshot["counters"]["fleet.units_executed"] == 1

    def test_observation_does_not_leak_after_block(self, small_radiance):
        from repro.devices import capture_fleet

        profile = capture_fleet()[0]
        unit = CaptureUnit(
            kind="photograph",
            profile=profile,
            radiance=small_radiance,
            entropy=unit_entropy(0, profile.name, 0, 0),
        )
        with obs.observed():
            execute_unit(unit)
        assert obs.active() is None
        after = execute_unit(unit)  # no observer: must still work and match
        bare = execute_unit(unit)
        assert np.array_equal(after["pixels"], bare["pixels"])


class TestCodecIdentityPreserved:
    def test_instrumentation_keeps_registry_identity(self):
        """register/get round-trips the same object; keys stay stable."""
        from repro.codecs.registry import get_codec

        codec = get_codec("jpeg")
        assert getattr(codec.encode, "_obs_instrumented", False)
        # Re-instrumenting is a no-op, so fingerprints of the callables
        # (module + qualname via functools.wraps) are stable.
        from repro.codecs.registry import _instrumented

        assert _instrumented(codec) is codec


class TestExportAndReport:
    def test_trace_export_and_report_round_trip(self, tiny_model, tmp_path):
        with obs.observed() as ob:
            EndToEndExperiment(
                model=tiny_model, angles=(0.0,), seed=5, workers=2
            ).run(per_class=1)
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        n = ob.tracer.export_jsonl(trace_path)
        assert n == len(ob.tracer.finished())
        obs.write_metrics_json(ob.metrics.snapshot(), metrics_path)

        report = render_report(trace_path=trace_path, metrics_path=metrics_path)
        assert "per-stage timing" in report
        assert "per-phone timing" in report
        assert "unit.execute" in report
        assert "fleet.units_executed" in report
        # Phones from the fleet appear as attribution rows.
        from repro.devices import capture_fleet

        assert any(p.name in report for p in capture_fleet())

    def test_report_metrics_only(self, tmp_path):
        reg = obs.MetricsRegistry()
        reg.count("capture_cache.hit", 3)
        reg.count("capture_cache.miss", 1)
        reg.count("capture_cache.store", 1)
        path = tmp_path / "m.json"
        obs.write_metrics_json(reg.snapshot(), path)
        report = render_report(metrics_path=path)
        assert "cache efficiency" in report
        assert "capture_cache" in report
        assert "75.0%" in report


class TestDisabledPathIsCheap:
    def test_disabled_span_is_a_shared_singleton(self):
        """The no-op path allocates nothing: same object every call."""
        assert obs.active() is None
        assert obs.span("a") is obs.span("b", device="x")

    def test_cli_flags_wire_up(self):
        """`report` and the --trace-out/--metrics-out flags parse."""
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "end-to-end",
                "--per-class",
                "1",
                "--trace-out",
                "t.jsonl",
                "--metrics-out",
                "m.json",
            ]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.json"
        args = parser.parse_args(["report", "--trace", "t.jsonl"])
        assert args.trace == "t.jsonl"
