"""Metrics registry: counter/gauge/histogram semantics and worker merge."""

import json

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounters:
    def test_count_declares_and_increments(self):
        reg = MetricsRegistry()
        reg.count("cache.hit")
        reg.count("cache.hit", 4)
        assert reg.counter_value("cache.hit") == 5
        assert reg.counter_value("never.touched") == 0
        assert reg.counter_value("never.touched", default=-1) == -1

    def test_snapshot_contains_counters(self):
        reg = MetricsRegistry()
        reg.count("a", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestGauges:
    def test_gauge_is_last_write_locally(self):
        reg = MetricsRegistry()
        reg.gauge("workers", 4)
        reg.gauge("workers", 2)
        assert reg.snapshot()["gauges"]["workers"] == 2.0

    def test_gauge_merge_keeps_maximum(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("workers", 2)
        b.gauge("workers", 4)
        a.merge(b.snapshot())
        assert a.snapshot()["gauges"]["workers"] == 4.0


class TestHistogram:
    def test_records_exact_count_sum_min_max(self):
        hist = Histogram()
        for value in (1.0, 4.0, 16.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.total == 21.0
        assert hist.min == 1.0
        assert hist.max == 16.0
        assert hist.mean == 7.0

    def test_power_of_two_buckets(self):
        hist = Histogram()
        hist.record(3.0)  # ceil(log2(3)) == 2
        hist.record(4.0)  # ceil(log2(4)) == 2
        hist.record(5.0)  # ceil(log2(5)) == 3
        assert hist.buckets == {2: 2, 3: 1}

    def test_nonpositive_values_share_the_floor_bucket(self):
        hist = Histogram()
        hist.record(0.0)
        hist.record(-1.0)
        assert list(hist.buckets.values()) == [2]

    def test_dict_round_trip(self):
        hist = Histogram()
        for value in (0.5, 2.0, 1000.0):
            hist.record(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_empty_round_trip(self):
        clone = Histogram.from_dict(Histogram().to_dict())
        assert clone.count == 0
        assert clone.min is None and clone.max is None

    def test_merge_combines_everything(self):
        a, b = Histogram(), Histogram()
        a.record(1.0)
        a.record(8.0)
        b.record(0.25)
        b.record(8.0)
        a.merge(b)
        assert a.count == 4
        assert a.total == 17.25
        assert a.min == 0.25
        assert a.max == 8.0
        assert a.buckets == {0: 1, 3: 2, -2: 1}


class TestMergeAcrossWorkers:
    """Simulate the executor folding worker snapshots into the parent."""

    @staticmethod
    def _worker_snapshot(hits, misses, encoded_sizes, workers):
        reg = MetricsRegistry()
        reg.count("capture_cache.hit", hits)
        reg.count("capture_cache.miss", misses)
        reg.gauge("fleet.workers", workers)
        for size in encoded_sizes:
            reg.observe("codec.encoded_size", size)
        return reg.snapshot()

    def test_counters_add_gauges_max_histograms_combine(self):
        parent = MetricsRegistry()
        parent.count("fleet.units_submitted", 6)
        parent.merge(self._worker_snapshot(3, 1, [100.0, 200.0], 2))
        parent.merge(self._worker_snapshot(1, 1, [400.0], 4))
        snap = parent.snapshot()
        assert snap["counters"]["capture_cache.hit"] == 4
        assert snap["counters"]["capture_cache.miss"] == 2
        assert snap["counters"]["fleet.units_submitted"] == 6
        assert snap["gauges"]["fleet.workers"] == 4.0
        hist = snap["histograms"]["codec.encoded_size"]
        assert hist["count"] == 3
        assert hist["sum"] == 700.0
        assert hist["min"] == 100.0
        assert hist["max"] == 400.0

    def test_merge_is_order_independent(self):
        snaps = [
            self._worker_snapshot(2, 0, [64.0], 1),
            self._worker_snapshot(0, 3, [128.0, 256.0], 3),
            self._worker_snapshot(1, 1, [], 2),
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_is_associative(self):
        a = self._worker_snapshot(1, 0, [2.0], 1)
        b = self._worker_snapshot(0, 1, [4.0], 2)
        c = self._worker_snapshot(2, 2, [8.0], 3)
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        ab = MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        right = MetricsRegistry()
        right.merge(ab.snapshot())
        right.merge(c)
        assert left.snapshot() == right.snapshot()

    def test_merge_empty_snapshot_is_identity(self):
        reg = MetricsRegistry()
        reg.count("a")
        before = reg.snapshot()
        reg.merge(MetricsRegistry().snapshot())
        reg.merge({})  # tolerates missing sections too
        assert reg.snapshot() == before


class TestSnapshotSerialization:
    def test_snapshot_survives_json(self):
        reg = MetricsRegistry()
        reg.count("codec.bytes_encoded", 1234)
        reg.gauge("fleet.workers", 4)
        reg.observe("codec.encoded_size", 617.0)
        reg.observe("codec.encoded_size", 617.0)
        snap = reg.snapshot()
        revived = json.loads(json.dumps(snap))
        other = MetricsRegistry()
        other.merge(revived)
        assert other.snapshot() == snap

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.count("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 999
        assert reg.counter_value("a") == 1
