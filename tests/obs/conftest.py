"""Fixtures for the observability test suite."""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def small_radiance():
    """A small, smooth, deterministic (H, W, 3) radiance field."""
    from scipy import ndimage

    rng = np.random.default_rng(42)
    field = ndimage.gaussian_filter(rng.random((64, 64, 3)), (3, 3, 0))
    field = (field - field.min()) / (field.max() - field.min())
    return field.astype(np.float32)
