"""Span tracer: nesting, timing monotonicity, JSONL round-trip, absorb."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import Span, Tracer, read_jsonl


class TestNesting:
    def test_parent_links_follow_with_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        inner, middle, outer = tracer.finished()
        assert (inner.name, middle.name, outer.name) == ("inner", "middle", "outer")
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.finished()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_sequential_roots_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished()
        assert first.parent_id is None
        assert second.parent_id is None

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(10):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.finished()]
        assert len(set(ids)) == len(ids)

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", device="phone-a") as span:
            span.set(frames=3)
        (finished,) = tracer.finished()
        assert finished.attrs == {"device": "phone-a", "frames": 3}

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        failing, outer = tracer.finished()
        # Both spans closed despite the exception, each marked as it unwound.
        assert failing.attrs["error"] == "RuntimeError"
        assert outer.attrs["error"] == "RuntimeError"
        # The stack unwound cleanly: a new root span has no parent.
        with tracer.span("after"):
            pass
        assert tracer.finished()[-1].parent_id is None


class TestTiming:
    def test_durations_nonnegative_and_children_fit_in_parents(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(1000))
        child, parent = tracer.finished()
        assert child.duration >= 0
        assert parent.duration >= child.duration
        assert parent.start <= child.start
        assert child.start + child.duration <= parent.start + parent.duration + 1e-9

    def test_starts_monotonic_for_sequential_spans(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        starts = [s.start for s in tracer.finished()]
        assert starts == sorted(starts)
        assert all(s >= 0 for s in starts)


class TestJsonlRoundTrip:
    def test_export_then_read_is_identity(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", device="p"):
            with tracer.span("inner", stage="demosaic"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        loaded = read_jsonl(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in tracer.finished()
        ]

    def test_export_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("s"):
                pass
            tracer.export_jsonl(path)
        assert len(read_jsonl(path)) == 2

    def test_lines_are_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", codec="jpeg"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        for line in path.read_text().splitlines():
            span = Span.from_dict(json.loads(line))
            assert span.name == "s"

    def test_creates_parent_directory(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        tracer.export_jsonl(path)
        assert path.is_file()


class TestAbsorb:
    def test_worker_spans_remap_ids_and_reparent(self):
        worker = Tracer()
        with worker.span("unit.execute", device="w"):
            with worker.span("isp.process"):
                pass
        parent = Tracer()
        with parent.span("fleet.run") as _:
            parent.absorb(worker.to_dicts(), unit_index=3)
        spans = {s.name: s for s in parent.finished()}
        fleet = spans["fleet.run"]
        unit = spans["unit.execute"]
        isp = spans["isp.process"]
        assert unit.parent_id == fleet.span_id  # root re-parented
        assert unit.attrs["unit_index"] == 3  # stamped on roots only
        assert isp.parent_id == unit.span_id  # internal link preserved
        assert "unit_index" not in isp.attrs
        ids = [s.span_id for s in parent.finished()]
        assert len(set(ids)) == len(ids)

    def test_absorb_outside_any_span_keeps_roots_rootless(self):
        worker = Tracer()
        with worker.span("unit.execute"):
            pass
        parent = Tracer()
        parent.absorb(worker.to_dicts())
        (span,) = parent.finished()
        assert span.parent_id is None


class TestThreadSafety:
    def test_concurrent_threads_nest_independently(self):
        tracer = Tracer()
        errors = []

        def work(label):
            try:
                for _ in range(50):
                    with tracer.span(f"outer.{label}"):
                        with tracer.span(f"inner.{label}"):
                            pass
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.finished()
        assert len(spans) == 4 * 50 * 2
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name.startswith("inner."):
                label = span.name.split(".", 1)[1]
                parent = by_id[span.parent_id]
                # Never parented across threads.
                assert parent.name == f"outer.{label}"


class TestNullPath:
    def test_helpers_are_noops_without_observer(self):
        assert not obs.is_enabled()
        with obs.span("anything", x=1) as s:
            s.set(y=2)
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)  # nothing raised, nothing recorded

    def test_observed_restores_previous_state(self):
        assert obs.active() is None
        with obs.observed() as outer:
            assert obs.active() is outer
            with obs.observed() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None
