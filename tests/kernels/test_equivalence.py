"""Cross-backend equivalence: ``fast`` must match ``reference`` bit-for-bit.

Property-style seeded trials (same idiom as tests/codecs) drive both
backends over random coefficient matrices, adversarial sparsity patterns
(ZRL chains, all-zero blocks, a nonzero in the final slot), random
Huffman tables, and every public kernel entry point. Any divergence —
one byte, one coefficient — is a bug in the fast backend by definition.
"""

import numpy as np
import pytest

from repro import kernels
from repro.codecs.bitio import BitReader
from repro.codecs.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    HuffmanTable,
)

TRIALS = 20


def _random_blocks(rng, n_blocks, density=0.2, amplitude=1023):
    """Random zig-zag coefficient matrices with JPEG-legal magnitudes.

    AC values stay within +/-1023 (size <= 10) and the implied DC diffs
    within +/-2047 (size <= 11), so the standard tables always apply.
    """
    blocks = np.zeros((n_blocks, 64), dtype=np.int64)
    mask = rng.random((n_blocks, 64)) < density
    values = rng.integers(-amplitude, amplitude + 1, size=(n_blocks, 64))
    blocks[mask] = values[mask]
    blocks[:, 0] = rng.integers(-1023, 1024, size=n_blocks)
    return blocks


def _roundtrip_both(blocks_per_comp, comp, block, dc_tables, ac_tables):
    """Encode+decode under both backends; assert byte/array identity."""
    encoded = {}
    decoded = {}
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            encoded[name] = kernels.encode_jpeg_scan(
                blocks_per_comp, comp, block, dc_tables, ac_tables
            )
            reader = BitReader(encoded[name], unstuff_ff=True)
            decoded[name] = kernels.decode_jpeg_scan(
                reader,
                comp,
                block,
                dc_tables,
                ac_tables,
                [b.shape[0] for b in blocks_per_comp],
            )
    assert encoded["fast"] == encoded["reference"]
    for got_fast, got_ref, original in zip(
        decoded["fast"], decoded["reference"], blocks_per_comp
    ):
        np.testing.assert_array_equal(got_fast, got_ref)
        np.testing.assert_array_equal(got_fast, original)
    return encoded["reference"]


@pytest.mark.parametrize("density", [0.0, 0.05, 0.3, 0.9])
def test_single_component_random_scans(density):
    rng = np.random.default_rng(int(density * 100))
    for trial in range(TRIALS):
        n = int(rng.integers(1, 24))
        blocks = _random_blocks(rng, n, density=density)
        comp, block = kernels.scan_layout(n, 1, ((1, 1),))
        _roundtrip_both([blocks], comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,))


def test_interleaved_420_scan():
    rng = np.random.default_rng(7)
    for trial in range(TRIALS):
        mcu_rows, mcu_cols = int(rng.integers(1, 5)), int(rng.integers(1, 5))
        n_mcus = mcu_rows * mcu_cols
        luma = _random_blocks(rng, 4 * n_mcus)
        cb = _random_blocks(rng, n_mcus)
        cr = _random_blocks(rng, n_mcus)
        comp, block = kernels.scan_layout(
            mcu_rows, mcu_cols, ((2, 2), (1, 1), (1, 1))
        )
        _roundtrip_both(
            [luma, cb, cr],
            comp,
            block,
            (STD_DC_LUMA, STD_DC_CHROMA, STD_DC_CHROMA),
            (STD_AC_LUMA, STD_AC_CHROMA, STD_AC_CHROMA),
        )


@pytest.mark.parametrize(
    "positions",
    [
        (),  # all-zero AC: pure EOB stream
        (63,),  # final slot occupied: no EOB after the last nonzero
        (17,),  # 16-zero run: exactly one ZRL
        (48,),  # 47-zero run: two ZRLs then run 15
        (17, 48, 63),  # chained ZRL segments, EOB suppressed
        (1, 2, 3, 63),
        tuple(range(1, 64)),  # fully dense
    ],
)
def test_sparsity_edge_patterns(positions):
    blocks = np.zeros((3, 64), dtype=np.int64)
    blocks[:, 0] = (-512, 0, 511)
    for pos in positions:
        blocks[:, pos] = (1, -1, 7)
    comp, block = kernels.scan_layout(3, 1, ((1, 1),))
    _roundtrip_both([blocks], comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,))


def test_dc_prediction_chain_crosses_sign():
    # DC diffs exercise the full +/-2047 envelope, including diff == 0.
    blocks = np.zeros((5, 64), dtype=np.int64)
    blocks[:, 0] = (1023, -1024, 1023, 1023, 0)
    comp, block = kernels.scan_layout(5, 1, ((1, 1),))
    _roundtrip_both([blocks], comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,))


def test_random_huffman_tables():
    """Backends agree under arbitrary canonical tables, not just Annex K."""
    rng = np.random.default_rng(11)
    dc_freqs = {s: int(rng.integers(1, 100)) for s in range(12)}
    ac_symbols = {0x00, 0xF0} | {
        (run << 4) | size for run in range(16) for size in range(1, 11)
    }
    ac_freqs = {s: int(rng.integers(1, 100)) for s in sorted(ac_symbols)}
    dc_table = HuffmanTable.from_frequencies(dc_freqs)
    ac_table = HuffmanTable.from_frequencies(ac_freqs)
    for trial in range(5):
        blocks = _random_blocks(rng, 8, density=0.4)
        comp, block = kernels.scan_layout(8, 1, ((1, 1),))
        _roundtrip_both([blocks], comp, block, (dc_table,), (ac_table,))


def test_missing_symbol_raises_keyerror_on_both_backends():
    # A DC-only table cannot encode AC symbols; both backends must refuse
    # with the same exception class.
    tiny = HuffmanTable.from_frequencies({0: 1, 1: 1})
    blocks = np.zeros((1, 64), dtype=np.int64)
    blocks[0, 1] = 5  # needs AC symbol 0x01
    comp, block = kernels.scan_layout(1, 1, ((1, 1),))
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            with pytest.raises(KeyError):
                kernels.encode_jpeg_scan(
                    [blocks], comp, block, (STD_DC_LUMA,), (tiny,)
                )


def test_truncated_stream_raises_on_both_backends():
    blocks = _random_blocks(np.random.default_rng(3), 6, density=0.5)
    comp, block = kernels.scan_layout(6, 1, ((1, 1),))
    data = _roundtrip_both([blocks], comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,))
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            reader = BitReader(data[: len(data) // 2], unstuff_ff=True)
            with pytest.raises((EOFError, ValueError)):
                kernels.decode_jpeg_scan(
                    reader, comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,), [6]
                )


def test_png_filter_equivalence():
    rng = np.random.default_rng(5)
    for shape in ((1, 3), (7, 21), (32, 96), (64, 192)):
        raw = rng.integers(0, 256, size=shape, dtype=np.uint8)
        with kernels.use_backend("reference"):
            ref = kernels.png_filter_scanlines(raw)
        with kernels.use_backend("fast"):
            fast = kernels.png_filter_scanlines(raw)
        assert ref == fast


def test_png_filter_gradient_prefers_nontrivial_filters():
    # Smooth ramps make Sub/Paeth win; both backends must pick the same
    # filter id per row (it is part of the byte stream).
    ramp = np.add.outer(np.arange(16), np.arange(48)).astype(np.uint8)
    with kernels.use_backend("reference"):
        ref = kernels.png_filter_scanlines(ramp)
    with kernels.use_backend("fast"):
        fast = kernels.png_filter_scanlines(ramp)
    assert ref == fast
    assert any(line[0] != 0 for line in np.frombuffer(ref, np.uint8).reshape(16, -1))


def test_coefficient_pack_roundtrip():
    rng = np.random.default_rng(9)
    values = rng.integers(-(2**15), 2**15, size=257, dtype=np.int64)
    for name in kernels.available_backends():
        data = kernels.pack_coefficients(values, backend=name)
        out = kernels.unpack_coefficients(data, backend=name)
        np.testing.assert_array_equal(out, values)


def test_deflate_roundtrip_identical_across_backends():
    payload = bytes(range(256)) * 17
    outs = {
        name: kernels.entropy_deflate(payload, 6, backend=name)
        for name in kernels.available_backends()
    }
    assert outs["fast"] == outs["reference"]
    assert kernels.entropy_inflate(outs["fast"]) == payload
