"""Smoke tests for the ``python -m repro bench --e2e`` macro benchmark."""

import json

from repro.bench import write_report
from repro.bench.e2e import format_e2e_report, run_e2e_bench


def test_quick_e2e_report_shape(tmp_path):
    report = run_e2e_bench(quick=True, repeats=1, seed=0)
    assert report["quick"] is True
    assert report["identity_ok"] is True
    assert report["units"] == report["phones"] * report["scenes"] * (
        report["repeats_per_scene"]
    )
    for arm in ("per_capture", "fused"):
        assert report[arm]["seconds"] > 0
        assert report[arm]["captures_per_s"] > 0
    assert report["speedup_fused_vs_per_capture"] > 0
    assert report["backend"] in ("fast", "reference")

    text = format_e2e_report(report)
    assert "fused" in text and "per_capture" in text
    assert "byte-identical payloads" in text

    out = tmp_path / "e2e.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["identity_ok"] is True


def test_cli_flag_parses():
    from repro.__main__ import build_parser

    args = build_parser().parse_args(["bench", "--e2e", "--quick"])
    assert args.e2e is True and args.quick is True
